//! Deterministic chaos harness: seeded fault injection for the checkers.
//!
//! The resilience layer claims that no fault — a panicking subject, a
//! deadline, a kill-and-resume — can corrupt a verdict. Claims like that
//! are only worth as much as the adversary they were tested against, so
//! this module provides a *reproducible* adversary: a [`FaultPlan`] seeded
//! with a single `u64` derives every injection point (which input panics,
//! how much fuel a stepper run gets, where a sweep is cancelled or killed)
//! through [`splitmix64`], and wrapper subjects ([`PanicOn`],
//! [`PanicOnProgram`]) realize the plan. The same seed always produces the
//! same faults, so a failing chaos proptest case is a one-number repro.
//!
//! Panics injected here carry [`CHAOS_MARKER`] in their payload;
//! [`silence_chaos_panics`] installs a process-wide panic hook that keeps
//! the default reporting for every *other* panic but drops the noise from
//! intentional ones, so chaos test output stays readable.

use crate::domain::InputDomain;
use crate::mechanism::{MechOutput, Mechanism};
use crate::program::Program;
use crate::value::V;
use std::fmt::Debug;

/// Marker substring carried by every intentionally injected panic payload.
pub const CHAOS_MARKER: &str = "enf-chaos-injected-fault";

/// One step of the splitmix64 generator: updates `state` and returns the
/// next 64-bit output. Small, seedable, and statistically adequate for
/// picking injection points — and entirely deterministic across platforms.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seeded plan for where faults strike.
///
/// Every derivation is a pure function of `(seed, salt, bound)`, so two
/// plans with the same seed agree on every injection point regardless of
/// the order the points are queried in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
}

impl FaultPlan {
    /// A plan derived from `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed }
    }

    /// The plan's seed, for error messages and repro lines.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives a value in `0..bound` for the given salt (`bound` must be
    /// non-zero). Distinct salts give independent streams, so one plan can
    /// place a panic, a cancellation point, and a fuel budget without the
    /// choices correlating.
    pub fn pick(&self, salt: u64, bound: usize) -> usize {
        assert!(bound > 0, "FaultPlan::pick needs a non-empty range");
        let mut state = self.seed ^ salt.wrapping_mul(0xa076_1d64_78bd_642f);
        // Multiply-shift range reduction; bias is irrelevant here.
        let r = splitmix64(&mut state);
        ((u128::from(r) * bound as u128) >> 64) as usize
    }

    /// The input index (in `0..total`) whose evaluation panics.
    pub fn panic_index(&self, total: usize) -> usize {
        self.pick(0x70616e, total)
    }

    /// The index at which a sweep is cancelled or killed (in `0..=total`,
    /// so "never" — the full sweep — is a possible draw).
    pub fn cut_index(&self, total: usize) -> usize {
        self.pick(0x637574, total + 1)
    }

    /// A fuel budget in `0..bound` for stepper fuel-exhaustion faults.
    pub fn fuel_budget(&self, bound: usize) -> usize {
        self.pick(0x6675_656c, bound)
    }

    /// The transport fault (if any) a fault-injecting proxy applies to the
    /// `frame`-th frame of the `conn`-th proxied connection. Roughly one
    /// frame in four misbehaves; the rest deliver unmolested — enough
    /// pressure to exercise every retry path without starving throughput.
    pub fn frame_fault(&self, conn: u64, frame: u64) -> FrameFault {
        let salt = 0x6672_616d_u64 // "fram"
            .wrapping_mul(0x9e37_79b9)
            .wrapping_add(conn.wrapping_mul(0x1_0001))
            .wrapping_add(frame);
        match self.pick(salt, 16) {
            0 => FrameFault::Drop,
            1 => {
                // Cut the frame somewhere strictly inside its length
                // prefix + payload; the receiver sees a truncated stream.
                FrameFault::Truncate(self.pick(salt ^ 0x7472, 64) + 1)
            }
            2 | 3 => FrameFault::Delay(self.pick(salt ^ 0x646c, 20) as u64 + 1),
            _ => FrameFault::Deliver,
        }
    }

    /// Whether the worker executing the `job`-th accepted job is killed
    /// mid-run (roughly one job in eight). The server must quarantine and
    /// replace the worker; the client sees a structured panic frame.
    pub fn worker_kill(&self, job: u64) -> bool {
        self.pick(0x6b69_6c6c ^ job.wrapping_mul(0x9e37_79b9), 8) == 0
    }

    /// The checkpoint block index after which the server process is killed
    /// during a long `check` job, or `None` for a run allowed to finish.
    /// `blocks` is the number of checkpoint blocks the job will write.
    pub fn server_kill_block(&self, blocks: u64) -> Option<u64> {
        let draw = self.pick(0x7372_7665, (blocks as usize) * 2 + 1);
        // Half the probability mass is "never"; the rest picks a block.
        if draw <= blocks as usize {
            None
        } else {
            Some((draw - blocks as usize - 1) as u64)
        }
    }
}

/// What a fault-injecting proxy does to one client→server frame. Derived
/// deterministically per `(connection, frame)` by [`FaultPlan::frame_fault`],
/// so a chaos run is a one-number repro.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameFault {
    /// Forward the frame unchanged.
    Deliver,
    /// Swallow the frame entirely (the request never reaches the server;
    /// the client must time out and retry).
    Drop,
    /// Forward only the first `n` bytes, then sever the connection.
    Truncate(usize),
    /// Forward intact after `ms` milliseconds of added latency.
    Delay(u64),
}

/// A mechanism that panics on one designated input tuple and otherwise
/// behaves exactly like the wrapped mechanism.
///
/// The trigger is an input *tuple*, not an index: tuples are intrinsic to
/// the domain, so the same wrapper misbehaves at the same enumeration
/// index under every thread count and partitioning.
#[derive(Clone, Debug)]
pub struct PanicOn<M> {
    inner: M,
    trigger: Option<Vec<V>>,
}

impl<M: Mechanism> PanicOn<M> {
    /// Panics on the tuple at enumeration index `idx` of `domain`; pass
    /// `None` for a fault-free control wrapper.
    pub fn at_index(inner: M, domain: &dyn InputDomain, idx: Option<usize>) -> Self {
        let trigger = idx.map(|i| {
            let mut tuple = vec![0; domain.arity()];
            domain.nth_input(i, &mut tuple);
            tuple
        });
        PanicOn { inner, trigger }
    }

    /// Panics on exactly `tuple`.
    pub fn on_tuple(inner: M, tuple: Vec<V>) -> Self {
        PanicOn {
            inner,
            trigger: Some(tuple),
        }
    }
}

impl<M: Mechanism> Mechanism for PanicOn<M> {
    type Out = M::Out;

    fn arity(&self) -> usize {
        self.inner.arity()
    }

    fn run(&self, input: &[V]) -> MechOutput<M::Out> {
        if self.trigger.as_deref() == Some(input) {
            panic!("{CHAOS_MARKER}: mechanism fault on {input:?}");
        }
        self.inner.run(input)
    }
}

/// A program that panics on one designated input tuple — the
/// program-under-test counterpart of [`PanicOn`], for sweeps that evaluate
/// `Q` directly ([`crate::maximal::MaximalMechanism`], soundness checks).
#[derive(Clone, Debug)]
pub struct PanicOnProgram<P> {
    inner: P,
    trigger: Option<Vec<V>>,
}

impl<P: Program> PanicOnProgram<P> {
    /// Panics on the tuple at enumeration index `idx` of `domain`; pass
    /// `None` for a fault-free control wrapper.
    pub fn at_index(inner: P, domain: &dyn InputDomain, idx: Option<usize>) -> Self {
        let trigger = idx.map(|i| {
            let mut tuple = vec![0; domain.arity()];
            domain.nth_input(i, &mut tuple);
            tuple
        });
        PanicOnProgram { inner, trigger }
    }
}

impl<P: Program> Program for PanicOnProgram<P> {
    type Out = P::Out;

    fn arity(&self) -> usize {
        self.inner.arity()
    }

    fn eval(&self, input: &[V]) -> P::Out {
        if self.trigger.as_deref() == Some(input) {
            panic!("{CHAOS_MARKER}: program fault on {input:?}");
        }
        self.inner.eval(input)
    }
}

/// Installs (once, process-wide) a panic hook that suppresses the default
/// "thread panicked" report for payloads carrying [`CHAOS_MARKER`] and
/// delegates everything else to the previous hook. Call at the top of any
/// test that injects panics on purpose.
pub fn silence_chaos_panics() {
    use std::sync::Once;
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let text = payload
                .downcast_ref::<&str>()
                .copied()
                .or_else(|| payload.downcast_ref::<String>().map(String::as_str));
            if text.is_some_and(|t| t.contains(CHAOS_MARKER)) {
                return;
            }
            previous(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Grid;
    use crate::mechanism::FnMechanism;
    use crate::program::FnProgram;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = 42;
        let mut b = 42;
        let xs: Vec<u64> = (0..8).map(|_| splitmix64(&mut a)).collect();
        let ys: Vec<u64> = (0..8).map(|_| splitmix64(&mut b)).collect();
        assert_eq!(xs, ys);
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn plan_derivations_are_order_independent() {
        let plan = FaultPlan::new(7);
        let p1 = plan.panic_index(1000);
        let c1 = plan.cut_index(1000);
        let plan2 = FaultPlan::new(7);
        let c2 = plan2.cut_index(1000);
        let p2 = plan2.panic_index(1000);
        assert_eq!((p1, c1), (p2, c2));
        assert!(p1 < 1000);
        assert!(c1 <= 1000);
    }

    #[test]
    fn proxy_derivations_are_deterministic_and_in_range() {
        let plan = FaultPlan::new(0xC0FFEE);
        for conn in 0..4u64 {
            for frame in 0..64u64 {
                let a = plan.frame_fault(conn, frame);
                let b = FaultPlan::new(0xC0FFEE).frame_fault(conn, frame);
                assert_eq!(a, b);
                if let FrameFault::Truncate(n) = a {
                    assert!((1..=64).contains(&n));
                }
                if let FrameFault::Delay(ms) = a {
                    assert!((1..=20).contains(&ms));
                }
            }
        }
        // The mix must actually contain faults *and* deliveries.
        let faults: Vec<FrameFault> = (0..256).map(|f| plan.frame_fault(0, f)).collect();
        assert!(faults.contains(&FrameFault::Deliver));
        assert!(faults.iter().any(|f| *f != FrameFault::Deliver));
        assert!((0..64).any(|j| plan.worker_kill(j)));
        assert!((0..64).any(|j| !plan.worker_kill(j)));
        let kill = plan.server_kill_block(10);
        assert_eq!(kill, FaultPlan::new(0xC0FFEE).server_kill_block(10));
        if let Some(b) = kill {
            assert!(b < 10);
        }
    }

    #[test]
    fn panic_on_fires_only_on_trigger() {
        silence_chaos_panics();
        let g = Grid::hypercube(2, 0..=3);
        let m = PanicOn::at_index(
            FnMechanism::new(2, |a: &[V]| MechOutput::Value(a[0] + a[1])),
            &g,
            Some(5),
        );
        let mut tuple = vec![0; 2];
        g.nth_input(4, &mut tuple);
        assert_eq!(m.run(&tuple), MechOutput::Value(tuple[0] + tuple[1]));
        g.nth_input(5, &mut tuple);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| m.run(&tuple)))
            .expect_err("trigger tuple must panic");
        let payload = err.downcast_ref::<String>().expect("string payload");
        assert!(payload.contains(CHAOS_MARKER));
    }

    #[test]
    fn panic_on_program_fires_only_on_trigger() {
        silence_chaos_panics();
        let g = Grid::hypercube(1, 0..=9);
        let q = PanicOnProgram::at_index(FnProgram::new(1, |a: &[V]| a[0] * 2), &g, Some(3));
        assert_eq!(q.eval(&[2]), 4);
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| q.eval(&[3]))).is_err());
        let control = PanicOnProgram::at_index(FnProgram::new(1, |a: &[V]| a[0]), &g, None);
        assert_eq!(control.eval(&[3]), 3);
    }
}
