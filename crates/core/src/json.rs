//! Minimal JSON reading and writing for checkpoint files.
//!
//! The workspace is offline and dependency-free, so checkpoint
//! serialization cannot lean on `serde`. This module implements exactly
//! the JSON subset the [`crate::checkpoint`] format needs — objects,
//! arrays, strings, integers, booleans, null — with a recursive-descent
//! parser and a deterministic writer (object keys are emitted in insertion
//! order, integers only, no floats), so a checkpoint written twice from
//! the same state is byte-identical.

use std::fmt::Write as _;

/// A parsed JSON value.
///
/// Numbers are restricted to `i128` — every quantity a checkpoint stores
/// (indices, fingerprints, [`crate::value::V`] values) is an integer, and
/// avoiding floats keeps serialization deterministic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (JSON number without fraction or exponent).
    Int(i128),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, keys in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `i128`, if it is an integer.
    pub fn as_int(&self) -> Option<i128> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `usize`, if it is a non-negative integer in range.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_int().and_then(|n| usize::try_from(n).ok())
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes the value to a compact, deterministic string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Writes `s` as a JSON string literal with the mandatory escapes.
fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document. Returns a description of the first error.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing input at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", char::from(b), self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(format!(
                "unexpected character '{}' at byte {}",
                char::from(c),
                self.pos
            )),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(format!(
                "non-integer number at byte {start} (checkpoints use integers only)"
            ));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid utf-8 in number at byte {start}"))?;
        text.parse::<i128>()
            .map(Json::Int)
            .map_err(|_| format!("number out of range at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            // Surrogate pairs are not needed for checkpoint
                            // payloads; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| format!("invalid utf-8 at byte {}", self.pos))?;
                    if let Some(c) = text.chars().next() {
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let v = Json::Obj(vec![
            ("total".to_string(), Json::Int(1000)),
            ("done".to_string(), Json::Bool(false)),
            (
                "classes".to_string(),
                Json::Arr(vec![
                    Json::Arr(vec![Json::Int(-3), Json::Int(7)]),
                    Json::Null,
                ]),
            ),
            (
                "note".to_string(),
                Json::Str("a \"quoted\"\nline".to_string()),
            ),
        ]);
        let text = v.render();
        assert_eq!(parse(&text).as_ref(), Ok(&v));
        // Deterministic: render is a pure function of the value.
        assert_eq!(parse(&text).map(|p| p.render()), Ok(text));
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"a": 3, "b": "x", "c": [1, 2]}"#).expect("parses");
        assert_eq!(v.get("a").and_then(Json::as_usize), Some(3));
        assert_eq!(v.get("b").and_then(Json::as_str), Some("x"));
        assert_eq!(
            v.get("c").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "1.5",
            "1e3",
            "\"unterminated",
            "nul",
            "{} trailing",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn escapes_control_characters() {
        let v = Json::Str("\u{1}tab\there".to_string());
        let text = v.render();
        assert_eq!(text, "\"\\u0001tab\\there\"");
        assert_eq!(parse(&text), Ok(v));
    }
}
