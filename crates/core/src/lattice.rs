//! The lattice of sound protection mechanisms.
//!
//! The paper remarks (after Theorem 1) that under the single-violation-
//! notice assumption "the sound protection mechanisms form a lattice". Over
//! a finite domain this lattice is concrete: a sound protection mechanism
//! is determined by the *set of `I`-equivalence classes on which it
//! accepts*, and a class can be accepted at all only if `Q` is constant on
//! it. The lattice is therefore the powerset of the `Q`-constant classes,
//! ordered by inclusion, with join = union (Theorem 1's `∨`), meet =
//! intersection, top = the maximal mechanism (Theorem 2) and bottom = the
//! plug.
//!
//! [`SoundLattice`] materializes this structure and can mint the mechanism
//! corresponding to any element.

use crate::domain::InputDomain;
use crate::mechanism::{MechOutput, Mechanism};
use crate::notice::Notice;
use crate::policy::Policy;
use crate::program::Program;
use crate::value::{SharedFn, V};
use std::collections::{HashMap, HashSet};
use std::fmt::Debug;
use std::hash::Hash;
use std::sync::Arc;

/// The lattice of sound mechanisms for a program and policy over a finite
/// domain.
pub struct SoundLattice<W, O> {
    arity: usize,
    /// View → Q's constant value on that class (absent when Q varies).
    constant_classes: Arc<HashMap<W, O>>,
    filter: SharedFn<W>,
}

/// An element of the sound-mechanism lattice: the subset of constant
/// classes on which it accepts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Element<W: Eq + Hash> {
    accepting: HashSet<W>,
}

impl<W: Clone + Eq + Hash> Element<W> {
    /// The set of views on which the element accepts.
    pub fn accepting(&self) -> &HashSet<W> {
        &self.accepting
    }

    /// Lattice join: accept where either accepts.
    #[must_use]
    pub fn join(&self, other: &Element<W>) -> Element<W> {
        Element {
            accepting: self.accepting.union(&other.accepting).cloned().collect(),
        }
    }

    /// Lattice meet: accept where both accept.
    #[must_use]
    pub fn meet(&self, other: &Element<W>) -> Element<W> {
        Element {
            accepting: self
                .accepting
                .intersection(&other.accepting)
                .cloned()
                .collect(),
        }
    }

    /// Lattice order: `self ≤ other` iff `self` accepts on a subset of
    /// `other`'s classes.
    pub fn le(&self, other: &Element<W>) -> bool {
        self.accepting.is_subset(&other.accepting)
    }
}

impl<W, O> SoundLattice<W, O>
where
    W: Clone + Eq + Hash + Debug + 'static,
    O: Clone + PartialEq + Debug + 'static,
{
    /// Builds the lattice skeleton: discovers the `Q`-constant classes.
    pub fn build<Q, P>(program: &Q, policy: &P, domain: &dyn InputDomain) -> Self
    where
        Q: Program<Out = O>,
        P: Policy<View = W> + Clone + Send + Sync + 'static,
    {
        assert_eq!(
            program.arity(),
            policy.arity(),
            "program/policy arity mismatch"
        );
        assert_eq!(
            domain.arity(),
            policy.arity(),
            "domain/policy arity mismatch"
        );
        let mut values: HashMap<W, Option<O>> = HashMap::new();
        for a in domain.iter_inputs() {
            let view = policy.filter(&a);
            let out = program.eval(&a);
            match values.entry(view) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(Some(out));
                }
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    if matches!(e.get(), Some(prev) if *prev != out) {
                        e.insert(None);
                    }
                }
            }
        }
        let constant_classes: HashMap<W, O> = values
            .into_iter()
            .filter_map(|(w, v)| v.map(|v| (w, v)))
            .collect();
        let p = policy.clone();
        SoundLattice {
            arity: program.arity(),
            constant_classes: Arc::new(constant_classes),
            filter: Arc::new(move |a| p.filter(a)),
        }
    }

    /// The top element: accept on every constant class (the maximal
    /// mechanism).
    pub fn top(&self) -> Element<W> {
        Element {
            accepting: self.constant_classes.keys().cloned().collect(),
        }
    }

    /// The bottom element: accept nowhere (the plug).
    pub fn bottom(&self) -> Element<W> {
        Element {
            accepting: HashSet::new(),
        }
    }

    /// Creates the element accepting on the given views.
    ///
    /// Views on which `Q` is not constant are dropped: no sound protection
    /// mechanism can accept there.
    pub fn element(&self, views: impl IntoIterator<Item = W>) -> Element<W> {
        Element {
            accepting: views
                .into_iter()
                .filter(|w| self.constant_classes.contains_key(w))
                .collect(),
        }
    }

    /// Number of constant classes, i.e. `log2` of the lattice size.
    pub fn constant_class_count(&self) -> usize {
        self.constant_classes.len()
    }

    /// Mints the concrete mechanism realizing a lattice element.
    pub fn mechanism(&self, element: &Element<W>) -> LatticeMechanism<W, O> {
        LatticeMechanism {
            arity: self.arity,
            accepting: element.accepting.clone(),
            constant_classes: Arc::clone(&self.constant_classes),
            filter: Arc::clone(&self.filter),
        }
    }
}

/// The concrete mechanism corresponding to a [`SoundLattice`] element.
pub struct LatticeMechanism<W: Eq + Hash, O> {
    arity: usize,
    accepting: HashSet<W>,
    constant_classes: Arc<HashMap<W, O>>,
    filter: SharedFn<W>,
}

impl<W, O> Mechanism for LatticeMechanism<W, O>
where
    W: Clone + Eq + Hash + Debug,
    O: Clone + PartialEq + Debug,
{
    type Out = O;

    fn arity(&self) -> usize {
        self.arity
    }

    fn run(&self, input: &[V]) -> MechOutput<O> {
        let view = (self.filter)(input);
        if self.accepting.contains(&view) {
            match self.constant_classes.get(&view) {
                Some(v) => MechOutput::Value(v.clone()),
                None => MechOutput::Violation(Notice::lambda()),
            }
        } else {
            MechOutput::Violation(Notice::lambda())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::completeness::{compare, MechOrdering};
    use crate::domain::Grid;
    use crate::policy::Allow;
    use crate::program::FnProgram;
    use crate::soundness::{check_protection, check_soundness};

    fn setup() -> (FnProgram<V>, Allow, Grid) {
        // Q(x1, x2) = if x2 == 0 { x1 } else { x2 }, allow(2): the class
        // x2 = 0 varies with x1; all others are constant.
        let q = FnProgram::new(2, |a: &[V]| if a[1] == 0 { a[0] } else { a[1] });
        (q, Allow::new(2, [2]), Grid::hypercube(2, 0..=3))
    }

    #[test]
    fn every_element_is_sound_and_protective() {
        let (q, p, g) = setup();
        let lat = SoundLattice::build(&q, &p, &g);
        assert_eq!(lat.constant_class_count(), 3);
        // Check a few elements including top and bottom.
        for elem in [
            lat.bottom(),
            lat.top(),
            lat.element([vec![1]]),
            lat.element([vec![1], vec![2]]),
        ] {
            let m = lat.mechanism(&elem);
            assert!(check_soundness(&m, &p, &g, false).is_sound());
            assert!(check_protection(&m, &q, &g).is_ok());
        }
    }

    #[test]
    fn element_drops_nonconstant_views() {
        let (q, p, g) = setup();
        let lat = SoundLattice::build(&q, &p, &g);
        // View [0] (x2 = 0) is not constant; requesting it is ignored.
        let e = lat.element([vec![0], vec![1]]);
        assert_eq!(e.accepting().len(), 1);
    }

    #[test]
    fn join_is_least_upper_bound() {
        let (q, p, g) = setup();
        let lat = SoundLattice::build(&q, &p, &g);
        let a = lat.element([vec![1]]);
        let b = lat.element([vec![2]]);
        let j = a.join(&b);
        assert!(a.le(&j) && b.le(&j));
        // Any upper bound contains the join.
        let ub = lat.element([vec![1], vec![2], vec![3]]);
        assert!(a.le(&ub) && b.le(&ub));
        assert!(j.le(&ub));
    }

    #[test]
    fn meet_is_greatest_lower_bound() {
        let (q, p, g) = setup();
        let lat = SoundLattice::build(&q, &p, &g);
        let a = lat.element([vec![1], vec![2]]);
        let b = lat.element([vec![2], vec![3]]);
        let m = a.meet(&b);
        assert!(m.le(&a) && m.le(&b));
        assert_eq!(m.accepting().len(), 1);
    }

    #[test]
    fn top_mechanism_matches_maximal() {
        let (q, p, g) = setup();
        let lat = SoundLattice::build(&q, &p, &g);
        let top = lat.mechanism(&lat.top());
        let maximal = crate::maximal::MaximalMechanism::build(&q, &p, &g);
        assert_eq!(compare(&top, &maximal, &g).ordering, MechOrdering::Equal);
    }

    #[test]
    fn bottom_mechanism_matches_plug() {
        let (q, p, g) = setup();
        let lat = SoundLattice::build(&q, &p, &g);
        let bot = lat.mechanism(&lat.bottom());
        for a in g.iter_inputs() {
            assert!(bot.run(&a).is_violation());
        }
    }

    #[test]
    fn lattice_laws_absorption_and_idempotence() {
        let (q, p, g) = setup();
        let lat = SoundLattice::build(&q, &p, &g);
        let a = lat.element([vec![1], vec![2]]);
        let b = lat.element([vec![3]]);
        assert_eq!(a.join(&a), a);
        assert_eq!(a.meet(&a), a);
        assert_eq!(a.join(&a.meet(&b)), a);
        assert_eq!(a.meet(&a.join(&b)), a);
        assert_eq!(a.join(&b), b.join(&a));
        assert_eq!(a.meet(&b), b.meet(&a));
    }

    #[test]
    fn mechanism_join_agrees_with_element_join() {
        let (q, p, g) = setup();
        let lat = SoundLattice::build(&q, &p, &g);
        let a = lat.element([vec![1]]);
        let b = lat.element([vec![2]]);
        let joined_elem = lat.mechanism(&a.join(&b));
        let joined_mech = crate::join::Join::new(lat.mechanism(&a), lat.mechanism(&b));
        assert_eq!(
            compare(&joined_elem, &joined_mech, &g).ordering,
            MechOrdering::Equal
        );
    }
}
