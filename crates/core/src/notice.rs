//! Violation notices — the set `F` a mechanism may answer from.
//!
//! The paper's protection mechanism returns either `Q(a)` or a member of a
//! set `F` of *violation notices*: "It looks as if you (the user) have
//! attempted to view information that is to be denied to you."
//!
//! The paper is careful about two pitfalls that this module makes
//! expressible:
//!
//! * **Distinct notices.** Realistic mechanisms may differ in notice values;
//!   the completeness ordering deliberately ignores which notice was given,
//!   but soundness does not — a mechanism whose *choice of notice* depends
//!   on denied information is unsound (Example 4, Denning's and Rotenberg's
//!   leaky notices).
//! * **Fenton-style overlap.** Fenton lets `F` overlap `E` (partial results
//!   double as notices), which makes outcomes ambiguous. Our notices are a
//!   separate type, so `E ∩ F = ∅` by construction; the ambiguity is modeled
//!   explicitly in `enf-minsky` where we reproduce his machine.

use std::borrow::Cow;
use std::fmt;

/// A violation notice — an element of the mechanism's notice set `F`.
///
/// Notices carry a machine-readable `code` and a human-readable message.
/// Two notices are equal iff their codes and messages are equal; the
/// completeness machinery collapses all notices, the soundness machinery
/// does not (see module docs).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Notice {
    code: u32,
    message: Cow<'static, str>,
}

impl Notice {
    /// Code used by [`Notice::lambda`].
    pub const LAMBDA_CODE: u32 = 0;

    /// The paper's anonymous notice `Λ` — the single canonical violation
    /// value used when notices need not be distinguished.
    pub fn lambda() -> Self {
        Notice {
            code: Self::LAMBDA_CODE,
            message: Cow::Borrowed("Λ"),
        }
    }

    /// Creates a notice with a code and message.
    pub fn new(code: u32, message: impl Into<Cow<'static, str>>) -> Self {
        Notice {
            code,
            message: message.into(),
        }
    }

    /// The machine-readable code.
    pub fn code(&self) -> u32 {
        self.code
    }

    /// The human-readable message.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// Whether this is the canonical `Λ` notice.
    pub fn is_lambda(&self) -> bool {
        self.code == Self::LAMBDA_CODE && self.message == "Λ"
    }
}

impl Default for Notice {
    fn default() -> Self {
        Notice::lambda()
    }
}

impl fmt::Debug for Notice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Notice({}, {:?})", self.code, self.message)
    }
}

impl fmt::Display for Notice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lambda_is_lambda() {
        assert!(Notice::lambda().is_lambda());
        assert!(Notice::default().is_lambda());
        assert_eq!(Notice::lambda(), Notice::lambda());
    }

    #[test]
    fn custom_notice_is_not_lambda() {
        let n = Notice::new(7, "Illegal access attempted, run aborted.");
        assert!(!n.is_lambda());
        assert_eq!(n.code(), 7);
        assert_eq!(n.message(), "Illegal access attempted, run aborted.");
    }

    #[test]
    fn notices_with_same_code_but_different_text_differ() {
        // This matters for soundness: a notice whose *text* varies with
        // denied data is a leak.
        let a = Notice::new(1, "x was 0");
        let b = Notice::new(1, "x was 1");
        assert_ne!(a, b);
    }

    #[test]
    fn display_shows_message() {
        assert_eq!(Notice::lambda().to_string(), "Λ");
        assert_eq!(Notice::new(2, "denied").to_string(), "denied");
    }
}
