//! Structured errors and partial verdicts for fault-tolerant sweeps.
//!
//! The paper's mechanism `M` must *always* answer — either `Q(a)` or a
//! violation notice. The exhaustive checkers inherit that obligation: a
//! sweep over a million inputs must not vanish in a panic two hours in,
//! and a sweep cut short by a deadline must still say what it learned.
//! This module holds the vocabulary for both:
//!
//! * [`EnfError`] — why a sweep could not produce a verdict at all. A
//!   panicking subject (program, mechanism, or monitor under test) is
//!   *quarantined*: the engine stops cleanly and reports the offending
//!   input index instead of unwinding through the caller.
//! * [`Coverage`] — a sweep's answer *with its evidence budget attached*:
//!   how many inputs were actually checked, out of how many, and whether
//!   the property was [`Verdict::Confirmed`] (full coverage, no
//!   counterexample), [`Verdict::Refuted`] (a genuine counterexample was
//!   found — valid under any coverage), or [`Verdict::Unknown`]
//!   (cancelled or deadline-expired before an answer).
//!
//! The design is fail-closed: no fault — panic, cancellation, deadline —
//! can ever turn into a `Confirmed` verdict. Confirmation requires the
//! whole domain, checked to completion, with nothing quarantined.

use std::fmt;

/// Why a fault-tolerant sweep could not reach a verdict.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EnfError {
    /// The subject under test (program, mechanism, or monitor) panicked
    /// while evaluating the input at `input_index` (enumeration order).
    ///
    /// The engine quarantines the input instead of unwinding: workers stop
    /// cooperatively and the least offending index is reported, so the
    /// error is deterministic for every thread count.
    SubjectPanicked {
        /// Enumeration index of the offending input tuple.
        input_index: usize,
        /// The panic payload, rendered as a string.
        payload: String,
    },
    /// A checkpoint file could not be read, written, or understood, or a
    /// resume was attempted against a checkpoint from a different sweep.
    Checkpoint {
        /// Human-readable description of the failure.
        reason: String,
    },
}

impl fmt::Display for EnfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnfError::SubjectPanicked {
                input_index,
                payload,
            } => write!(
                f,
                "subject panicked on input #{input_index} (quarantined): {payload}"
            ),
            EnfError::Checkpoint { reason } => write!(f, "checkpoint error: {reason}"),
        }
    }
}

impl std::error::Error for EnfError {}

/// What a (possibly partial) sweep established.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Every input was checked and none refuted the property.
    Confirmed,
    /// A genuine counterexample was found. A counterexample is valid
    /// evidence regardless of coverage, so `Refuted` can be reported from
    /// a partial sweep.
    Refuted,
    /// The sweep was cut short (deadline, cancellation) before finding a
    /// counterexample; nothing is claimed about the unchecked inputs.
    Unknown,
}

impl Verdict {
    /// Machine-readable lowercase tag, stable across releases — audit
    /// records and JSON reports key on it.
    pub fn tag(self) -> &'static str {
        match self {
            Verdict::Confirmed => "confirmed",
            Verdict::Refuted => "refuted",
            Verdict::Unknown => "unknown",
        }
    }
}

/// A sweep result carrying its coverage: how much of the domain was
/// checked, the verdict, and the underlying report when one exists.
///
/// `report` is `None` on [`Verdict::Unknown`] and `Some` on
/// [`Verdict::Refuted`] (the refuting witness/report). On
/// [`Verdict::Confirmed`] it carries the checker's full report when the
/// checker builds one; witness-style scans confirm with `None` — the
/// absence of a witness *is* the report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Coverage<R> {
    /// Number of inputs known to have been evaluated (for partial sweeps,
    /// the contiguous prefix `0..checked` of the enumeration order).
    pub checked: usize,
    /// Total number of inputs in the domain.
    pub total: usize,
    /// What the sweep established.
    pub verdict: Verdict,
    /// The checker's report, when the verdict is decisive.
    pub report: Option<R>,
}

impl<R> Coverage<R> {
    /// A full-coverage confirmation with its report.
    pub fn confirmed(total: usize, report: R) -> Self {
        Coverage {
            checked: total,
            total,
            verdict: Verdict::Confirmed,
            report: Some(report),
        }
    }

    /// A refutation found after checking `checked` of `total` inputs.
    pub fn refuted(checked: usize, total: usize, report: R) -> Self {
        Coverage {
            checked,
            total,
            verdict: Verdict::Refuted,
            report: Some(report),
        }
    }

    /// An inconclusive partial sweep.
    pub fn unknown(checked: usize, total: usize) -> Self {
        Coverage {
            checked,
            total,
            verdict: Verdict::Unknown,
            report: None,
        }
    }

    /// Whether the sweep covered the whole domain.
    pub fn is_complete(&self) -> bool {
        self.checked == self.total
    }

    /// Maps the report type.
    pub fn map<T>(self, f: impl FnOnce(R) -> T) -> Coverage<T> {
        Coverage {
            checked: self.checked,
            total: self.total,
            verdict: self.verdict,
            report: self.report.map(f),
        }
    }
}

impl<R> fmt::Display for Coverage<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let v = match self.verdict {
            Verdict::Confirmed => "confirmed",
            Verdict::Refuted => "refuted",
            Verdict::Unknown => "unknown",
        };
        write!(f, "{v} ({} of {} inputs checked)", self.checked, self.total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = EnfError::SubjectPanicked {
            input_index: 42,
            payload: "boom".into(),
        };
        let s = e.to_string();
        assert!(s.contains("#42") && s.contains("boom") && s.contains("quarantined"));
        let e = EnfError::Checkpoint {
            reason: "bad json".into(),
        };
        assert!(e.to_string().contains("bad json"));
    }

    #[test]
    fn coverage_constructors() {
        let c: Coverage<u32> = Coverage::confirmed(10, 7);
        assert!(c.is_complete());
        assert_eq!(c.verdict, Verdict::Confirmed);
        assert_eq!(c.report, Some(7));
        let c: Coverage<u32> = Coverage::unknown(3, 10);
        assert!(!c.is_complete());
        assert_eq!(c.report, None);
        assert_eq!(c.to_string(), "unknown (3 of 10 inputs checked)");
        let c: Coverage<u32> = Coverage::refuted(4, 10, 9);
        assert_eq!(c.verdict, Verdict::Refuted);
        assert_eq!(c.map(|r| r + 1).report, Some(10));
    }
}
