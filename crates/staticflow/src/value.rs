//! Constant-propagation / interval value analysis over the flowchart CFG.
//!
//! The taint analyses in [`crate::dataflow`] are *value-blind*: they treat
//! every branch as two-way even when the program can only ever take one
//! arm. This module supplies the missing value reasoning as another
//! [`crate::framework`] instance: each variable is tracked as an interval
//! `[lo, hi]` (constants are singletons, the full range is ⊤), decision
//! predicates are evaluated three-valuedly, and the facts flowing along a
//! branch edge are *refined* by the branch condition — an edge whose
//! condition is abstractly false carries no fact at all.
//!
//! The analysis is sound for the concrete interpreter's total semantics:
//! any arithmetic that could wrap degrades to ⊤, division/modulo by a
//! possibly-zero divisor degrades to ⊤ (the interpreter yields 0, which ⊤
//! covers), and joins take the interval hull. Soundness here means the
//! concrete value of every variable at every visit of a node lies in the
//! node's interval — which is what lets [`mod@crate::certify`]'s
//! `Analysis::ValueRefined` discard dead arms without ever certifying a
//! program the dynamic mechanism would abort.
//!
//! Termination: interval bounds are clamped to the finite menu
//! `{V::MIN} ∪ [-CLAMP, CLAMP] ∪ {V::MAX}` after every transfer, so the
//! per-variable lattice has finite height and the framework argument
//! applies.

use crate::framework::{solve, DataflowProblem, Solution};
use enf_core::V;
use enf_flowchart::ast::{CmpOp, Expr, Pred, Var};
use enf_flowchart::graph::{Flowchart, Node, NodeId, Succ};

/// Bounds with magnitude above this widen to `V::MIN` / `V::MAX`,
/// keeping the interval lattice finite (the termination requirement of
/// the framework).
pub const CLAMP: V = 4096;

/// An interval abstract value `[lo, hi]`. `lo > hi` never occurs in stored
/// facts (empty intervals become edge infeasibility instead).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AbsVal {
    /// Least value the variable may hold.
    pub lo: V,
    /// Greatest value the variable may hold.
    pub hi: V,
}

impl AbsVal {
    /// The full range ⊤.
    pub const TOP: AbsVal = AbsVal {
        lo: V::MIN,
        hi: V::MAX,
    };

    /// The singleton `[c, c]`.
    pub fn constant(c: V) -> AbsVal {
        AbsVal { lo: c, hi: c }
    }

    /// The interval `[lo, hi]`; panics if `lo > hi`.
    pub fn range(lo: V, hi: V) -> AbsVal {
        assert!(lo <= hi, "empty interval");
        AbsVal { lo, hi }
    }

    /// The constant this value is pinned to, if any.
    pub fn as_const(&self) -> Option<V> {
        (self.lo == self.hi).then_some(self.lo)
    }

    /// Whether this is the full range.
    pub fn is_top(&self) -> bool {
        *self == Self::TOP
    }

    /// Whether `v` lies in the interval.
    pub fn contains(&self, v: V) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Interval hull (the join). Bounds coming in are already clamped, and
    /// the hull only picks existing bounds, so no re-clamp is needed.
    pub fn join(&self, other: &AbsVal) -> AbsVal {
        AbsVal {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Intersection; `None` when empty.
    pub fn meet(&self, other: &AbsVal) -> Option<AbsVal> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then_some(AbsVal { lo, hi })
    }

    /// Widens out-of-menu bounds so the lattice stays finite.
    fn clamp(self) -> AbsVal {
        let lo = if self.lo < -CLAMP { V::MIN } else { self.lo };
        let hi = if self.hi > CLAMP { V::MAX } else { self.hi };
        AbsVal { lo, hi }
    }

    fn from_checked(lo: Option<V>, hi: Option<V>) -> AbsVal {
        match (lo, hi) {
            (Some(lo), Some(hi)) => AbsVal { lo, hi }.clamp(),
            _ => AbsVal::TOP,
        }
    }

    fn add(&self, o: &AbsVal) -> AbsVal {
        Self::from_checked(self.lo.checked_add(o.lo), self.hi.checked_add(o.hi))
    }

    fn sub(&self, o: &AbsVal) -> AbsVal {
        Self::from_checked(self.lo.checked_sub(o.hi), self.hi.checked_sub(o.lo))
    }

    fn mul(&self, o: &AbsVal) -> AbsVal {
        let corners = [
            self.lo.checked_mul(o.lo),
            self.lo.checked_mul(o.hi),
            self.hi.checked_mul(o.lo),
            self.hi.checked_mul(o.hi),
        ];
        if corners.iter().any(Option::is_none) {
            return AbsVal::TOP;
        }
        let vals: Vec<V> = corners.into_iter().flatten().collect();
        AbsVal {
            lo: *vals.iter().min().unwrap(),
            hi: *vals.iter().max().unwrap(),
        }
        .clamp()
    }

    fn neg(&self) -> AbsVal {
        Self::from_checked(self.hi.checked_neg(), self.lo.checked_neg())
    }

    /// `self / o` under the total semantics (x/0 = 0). Truncating division
    /// is monotone in the dividend for a fixed nonzero divisor, so the
    /// endpoints bound the result.
    fn div(&self, o: &AbsVal) -> AbsVal {
        match o.as_const() {
            Some(0) => AbsVal::constant(0),
            Some(c) => {
                let a = self.lo.checked_div(c);
                let b = self.hi.checked_div(c);
                match (a, b) {
                    (Some(a), Some(b)) => AbsVal {
                        lo: a.min(b),
                        hi: a.max(b),
                    }
                    .clamp(),
                    _ => AbsVal::TOP,
                }
            }
            None => AbsVal::TOP,
        }
    }

    /// `self % o` under the total semantics (x % 0 = 0).
    fn rem(&self, o: &AbsVal) -> AbsVal {
        match o.as_const() {
            Some(0) => AbsVal::constant(0),
            Some(c) => {
                if let Some(a) = self.as_const() {
                    return match a.checked_rem(c) {
                        Some(r) => AbsVal::constant(r),
                        None => AbsVal::constant(0), // V::MIN % -1 wraps to 0
                    };
                }
                let m = c.unsigned_abs().min(V::MAX as u64 + 1).saturating_sub(1) as V;
                if self.lo >= 0 {
                    AbsVal::range(0, m)
                } else {
                    AbsVal::range(-m, m)
                }
                .clamp()
            }
            None => AbsVal::TOP,
        }
    }
}

/// Three-valued truth of an abstract predicate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AbsBool {
    /// Holds on every concrete valuation in the abstract state.
    True,
    /// Fails on every concrete valuation in the abstract state.
    False,
    /// The abstraction cannot decide.
    Maybe,
}

impl AbsBool {
    fn not(self) -> AbsBool {
        match self {
            AbsBool::True => AbsBool::False,
            AbsBool::False => AbsBool::True,
            AbsBool::Maybe => AbsBool::Maybe,
        }
    }

    fn and(self, o: AbsBool) -> AbsBool {
        match (self, o) {
            (AbsBool::False, _) | (_, AbsBool::False) => AbsBool::False,
            (AbsBool::True, AbsBool::True) => AbsBool::True,
            _ => AbsBool::Maybe,
        }
    }

    fn or(self, o: AbsBool) -> AbsBool {
        match (self, o) {
            (AbsBool::True, _) | (_, AbsBool::True) => AbsBool::True,
            (AbsBool::False, AbsBool::False) => AbsBool::False,
            _ => AbsBool::Maybe,
        }
    }
}

/// Abstract variable valuation at one program point.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ValueEnv {
    inputs: Vec<AbsVal>,
    regs: Vec<AbsVal>,
    out: AbsVal,
}

impl ValueEnv {
    /// The entry environment: inputs unknown, registers and `y` zero (the
    /// interpreter's `Store::init` guarantee).
    pub fn init(arity: usize, regs: usize) -> Self {
        ValueEnv {
            inputs: vec![AbsVal::TOP; arity],
            regs: vec![AbsVal::constant(0); regs],
            out: AbsVal::constant(0),
        }
    }

    /// The abstract value of a variable.
    pub fn get(&self, var: Var) -> AbsVal {
        match var {
            Var::Input(i) => self.inputs[i - 1],
            Var::Reg(j) => self.regs.get(j - 1).copied().unwrap_or(AbsVal::TOP),
            Var::Out => self.out,
        }
    }

    fn set(&mut self, var: Var, v: AbsVal) {
        match var {
            Var::Input(i) => self.inputs[i - 1] = v,
            Var::Reg(j) => {
                if j > self.regs.len() {
                    self.regs.resize(j, AbsVal::TOP);
                }
                self.regs[j - 1] = v;
            }
            Var::Out => self.out = v,
        }
    }

    fn join_from(&mut self, other: &ValueEnv) -> bool {
        let mut changed = false;
        let mut up = |a: &mut AbsVal, b: &AbsVal| {
            let j = a.join(b);
            if j != *a {
                *a = j;
                changed = true;
            }
        };
        for (a, b) in self.inputs.iter_mut().zip(&other.inputs) {
            up(a, b);
        }
        for (a, b) in self.regs.iter_mut().zip(&other.regs) {
            up(a, b);
        }
        up(&mut self.out, &other.out);
        changed
    }

    /// Abstractly evaluates an expression.
    pub fn eval(&self, e: &Expr) -> AbsVal {
        match e {
            Expr::Const(c) => AbsVal::constant(*c),
            Expr::Var(v) => self.get(*v),
            Expr::Neg(a) => self.eval(a).neg(),
            Expr::Add(a, b) => self.eval(a).add(&self.eval(b)),
            Expr::Sub(a, b) => self.eval(a).sub(&self.eval(b)),
            Expr::Mul(a, b) => self.eval(a).mul(&self.eval(b)),
            Expr::Div(a, b) => self.eval(a).div(&self.eval(b)),
            Expr::Mod(a, b) => self.eval(a).rem(&self.eval(b)),
            Expr::BOr(a, b) => match (self.eval(a).as_const(), self.eval(b).as_const()) {
                (Some(x), Some(y)) => AbsVal::constant(x | y),
                _ => AbsVal::TOP,
            },
            Expr::BAnd(a, b) => match (self.eval(a).as_const(), self.eval(b).as_const()) {
                (Some(x), Some(y)) => AbsVal::constant(x & y),
                _ => AbsVal::TOP,
            },
            Expr::Ite(p, t, e) => match self.eval_pred(p) {
                AbsBool::True => self.eval(t),
                AbsBool::False => self.eval(e),
                AbsBool::Maybe => self.eval(t).join(&self.eval(e)),
            },
        }
    }

    /// Abstractly evaluates a predicate.
    pub fn eval_pred(&self, p: &Pred) -> AbsBool {
        match p {
            Pred::True => AbsBool::True,
            Pred::False => AbsBool::False,
            Pred::Cmp(op, a, b) => cmp_abs(*op, &self.eval(a), &self.eval(b)),
            Pred::Not(p) => self.eval_pred(p).not(),
            Pred::And(a, b) => self.eval_pred(a).and(self.eval_pred(b)),
            Pred::Or(a, b) => self.eval_pred(a).or(self.eval_pred(b)),
        }
    }

    /// Refines the environment under the assumption that `p` evaluates to
    /// `expected`; `None` when the assumption is unsatisfiable.
    fn refine(&self, p: &Pred, expected: bool) -> Option<ValueEnv> {
        match (p, expected) {
            (Pred::True, true) | (Pred::False, false) => Some(self.clone()),
            (Pred::True, false) | (Pred::False, true) => None,
            (Pred::Not(inner), _) => self.refine(inner, !expected),
            (Pred::And(a, b), true) => self.refine(a, true)?.refine(b, true),
            (Pred::Or(a, b), false) => self.refine(a, false)?.refine(b, false),
            // One of the operands is at fault but we cannot tell which;
            // keeping the unrefined environment is sound.
            (Pred::And(..), false) | (Pred::Or(..), true) => Some(self.clone()),
            (Pred::Cmp(op, a, b), _) => {
                let op = if expected { *op } else { op.negate() };
                let mut env = self.clone();
                let av = env.eval(a);
                let bv = env.eval(b);
                if cmp_abs(op, &av, &bv) == AbsBool::False {
                    return None;
                }
                if let Expr::Var(v) = a.as_ref() {
                    env.set(*v, refine_var(av, op, &bv)?);
                }
                if let Expr::Var(v) = b.as_ref() {
                    // b OP-mirrored a: refine the right operand too.
                    let mirrored = mirror(op);
                    let bv = env.eval(b);
                    let av = env.eval(a);
                    env.set(*v, refine_var(bv, mirrored, &av)?);
                }
                Some(env)
            }
        }
    }
}

/// Three-valued comparison of two intervals.
fn cmp_abs(op: CmpOp, a: &AbsVal, b: &AbsVal) -> AbsBool {
    match op {
        CmpOp::Eq => {
            if a.meet(b).is_none() {
                AbsBool::False
            } else if a.as_const().is_some() && a == b {
                AbsBool::True
            } else {
                AbsBool::Maybe
            }
        }
        CmpOp::Ne => cmp_abs(CmpOp::Eq, a, b).not(),
        CmpOp::Lt => {
            if a.hi < b.lo {
                AbsBool::True
            } else if a.lo >= b.hi {
                AbsBool::False
            } else {
                AbsBool::Maybe
            }
        }
        CmpOp::Le => {
            if a.hi <= b.lo {
                AbsBool::True
            } else if a.lo > b.hi {
                AbsBool::False
            } else {
                AbsBool::Maybe
            }
        }
        CmpOp::Gt => cmp_abs(CmpOp::Le, a, b).not(),
        CmpOp::Ge => cmp_abs(CmpOp::Lt, a, b).not(),
    }
}

/// Swaps operand order: `a op b` ⟺ `b mirror(op) a`.
fn mirror(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Eq => CmpOp::Eq,
        CmpOp::Ne => CmpOp::Ne,
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
    }
}

/// Narrows `v` under `v op b`; `None` when no value survives.
fn refine_var(v: AbsVal, op: CmpOp, b: &AbsVal) -> Option<AbsVal> {
    match op {
        CmpOp::Eq => v.meet(b),
        CmpOp::Ne => {
            if let (Some(x), Some(y)) = (v.as_const(), b.as_const()) {
                if x == y {
                    return None;
                }
            }
            if let Some(c) = b.as_const() {
                // Trim a constant that sits exactly on a bound.
                if v.as_const() == Some(c) {
                    return None;
                }
                if v.lo == c {
                    return Some(AbsVal::range(c.checked_add(1)?, v.hi));
                }
                if v.hi == c {
                    return Some(AbsVal::range(v.lo, c.checked_sub(1)?));
                }
            }
            Some(v)
        }
        CmpOp::Lt => {
            let hi = v.hi.min(b.hi.checked_sub(1)?);
            (v.lo <= hi).then(|| AbsVal::range(v.lo, hi))
        }
        CmpOp::Le => {
            let hi = v.hi.min(b.hi);
            (v.lo <= hi).then(|| AbsVal::range(v.lo, hi))
        }
        CmpOp::Gt => {
            let lo = v.lo.max(b.lo.checked_add(1)?);
            (lo <= v.hi).then(|| AbsVal::range(lo, v.hi))
        }
        CmpOp::Ge => {
            let lo = v.lo.max(b.lo);
            (lo <= v.hi).then(|| AbsVal::range(lo, v.hi))
        }
    }
}

/// The value analysis as a framework problem. Facts are `Option<ValueEnv>`,
/// with `None` as ⊥ meaning "no execution reaches this node".
struct ValueProblem;

impl DataflowProblem for ValueProblem {
    type Fact = Option<ValueEnv>;

    fn bottom(&self, _fc: &Flowchart) -> Self::Fact {
        None
    }

    fn boundary(&self, fc: &Flowchart, n: NodeId) -> Option<Self::Fact> {
        (n == fc.start()).then(|| Some(ValueEnv::init(fc.arity(), fc.max_reg())))
    }

    fn join(&self, into: &mut Self::Fact, from: &Self::Fact) -> bool {
        match (into.as_mut(), from) {
            (_, None) => false,
            (None, Some(f)) => {
                *into = Some(f.clone());
                true
            }
            (Some(i), Some(f)) => i.join_from(f),
        }
    }

    fn flow(
        &self,
        fc: &Flowchart,
        n: NodeId,
        edge: usize,
        _to: NodeId,
        fact: &Self::Fact,
    ) -> Option<Self::Fact> {
        let env = fact.as_ref()?;
        match fc.node(n) {
            Node::Start | Node::Halt => Some(Some(env.clone())),
            Node::Assign { var, expr } => {
                let mut env = env.clone();
                let v = env.eval(expr);
                env.set(*var, v);
                Some(Some(env))
            }
            Node::Decision { pred } => {
                // Edge 0 is the true branch, edge 1 the false branch
                // (succ_list order for `Succ::Cond`).
                let expected = edge == 0;
                env.refine(pred, expected).map(Some)
            }
            // Policy boxes don't touch the store.
            Node::SetPolicy { .. } | Node::Declassify { .. } => Some(Some(env.clone())),
        }
    }
}

/// The fixed point of the value analysis.
#[derive(Clone, Debug)]
pub struct ValueFacts {
    /// Entry environment per node; `None` = provably unreachable.
    pub env_at: Vec<Option<ValueEnv>>,
    /// Solver work, for the benches.
    pub iterations: usize,
}

impl ValueFacts {
    /// Whether any execution may reach the node.
    pub fn reachable(&self, n: NodeId) -> bool {
        self.env_at[n.0].is_some()
    }

    /// Three-valued outcome of a decision node (`None` for non-decisions
    /// and unreachable nodes).
    pub fn decision_outcome(&self, fc: &Flowchart, n: NodeId) -> Option<AbsBool> {
        let env = self.env_at[n.0].as_ref()?;
        match fc.node(n) {
            Node::Decision { pred } => Some(env.eval_pred(pred)),
            _ => None,
        }
    }

    /// Whether the `edge`-th outgoing edge of `n` (0 = true branch) may be
    /// taken by some execution.
    pub fn edge_feasible(&self, fc: &Flowchart, n: NodeId, edge: usize) -> bool {
        let Some(env) = self.env_at[n.0].as_ref() else {
            return false;
        };
        match (fc.node(n), fc.succ(n)) {
            (Node::Decision { pred }, Succ::Cond { .. }) => env.refine(pred, edge == 0).is_some(),
            _ => true,
        }
    }
}

/// Runs the value analysis to its fixed point.
pub fn analyze_values(fc: &Flowchart) -> ValueFacts {
    let sol: Solution<Option<ValueEnv>> = solve(fc, &ValueProblem);
    ValueFacts {
        env_at: sol.facts,
        iterations: sol.iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enf_flowchart::parse;

    fn facts(src: &str) -> (Flowchart, ValueFacts) {
        let fc = parse(src).unwrap();
        let vf = analyze_values(&fc);
        (fc, vf)
    }

    fn decision(fc: &Flowchart) -> NodeId {
        fc.iter()
            .find(|(_, n, _)| matches!(n, Node::Decision { .. }))
            .map(|(id, _, _)| id)
            .unwrap()
    }

    #[test]
    fn constants_propagate_through_assignments() {
        let (fc, vf) = facts("program(1) { r1 := 2; r2 := r1 * 3; y := r2 + 1; }");
        let halt = fc.halts()[0];
        let env = vf.env_at[halt.0].as_ref().unwrap();
        assert_eq!(env.get(Var::Out).as_const(), Some(7));
    }

    #[test]
    fn constant_guard_kills_the_dead_arm() {
        let (fc, vf) = facts("program(2) { r1 := 0; if r1 == 0 { y := x2; } else { y := x1; } }");
        let d = decision(&fc);
        assert_eq!(vf.decision_outcome(&fc, d), Some(AbsBool::True));
        assert!(vf.edge_feasible(&fc, d, 0));
        assert!(!vf.edge_feasible(&fc, d, 1));
        // The else arm (`y := x1`) is unreachable.
        let dead = fc
            .iter()
            .find(|(_, n, _)| matches!(n, Node::Assign { expr, .. } if *expr == Expr::x(1)))
            .map(|(id, _, _)| id)
            .unwrap();
        assert!(!vf.reachable(dead));
    }

    #[test]
    fn input_branches_stay_two_way() {
        let (fc, vf) = facts("program(1) { if x1 == 0 { y := 1; } else { y := 2; } }");
        let d = decision(&fc);
        assert_eq!(vf.decision_outcome(&fc, d), Some(AbsBool::Maybe));
        assert!(vf.edge_feasible(&fc, d, 0));
        assert!(vf.edge_feasible(&fc, d, 1));
        let halt = fc.halts()[0];
        let env = vf.env_at[halt.0].as_ref().unwrap();
        assert_eq!(env.get(Var::Out), AbsVal::range(1, 2));
    }

    #[test]
    fn branch_refinement_narrows_the_tested_variable() {
        let (fc, vf) = facts("program(1) { if x1 > 3 { y := 1; } else { y := 2; } }");
        let d = decision(&fc);
        let Succ::Cond { then_, else_ } = fc.succ(d) else {
            panic!()
        };
        let t_env = vf.env_at[then_.0].as_ref().unwrap();
        assert_eq!(t_env.get(Var::Input(1)).lo, 4);
        let e_env = vf.env_at[else_.0].as_ref().unwrap();
        assert_eq!(e_env.get(Var::Input(1)).hi, 3);
    }

    #[test]
    fn counted_loop_converges_with_widened_counter() {
        // The loop body runs a bounded number of times, but the analysis
        // only needs to converge, not count: r1 ∈ [0, 3] at the guard.
        let (fc, vf) = facts("program(1) { r1 := 3; while r1 > 0 { r1 := r1 - 1; } y := 9; }");
        let halt = fc.halts()[0];
        let env = vf.env_at[halt.0].as_ref().unwrap();
        assert_eq!(env.get(Var::Out).as_const(), Some(9));
        // After the loop exits, the guard refinement pins r1 ≤ 0.
        assert!(env.get(Var::Reg(1)).hi <= 0);
    }

    #[test]
    fn widening_keeps_unbounded_growth_finite() {
        // r1 grows without a static bound; the clamp must push it to TOP
        // rather than iterating forever.
        let (fc, vf) =
            facts("program(1) { r2 := x1; while r2 > 0 { r1 := r1 + 7; r2 := r2 - 1; } y := r1; }");
        let halt = fc.halts()[0];
        assert!(vf.reachable(halt));
        let env = vf.env_at[halt.0].as_ref().unwrap();
        assert_eq!(env.get(Var::Out).hi, V::MAX);
    }

    #[test]
    fn division_by_possible_zero_is_top_but_sound() {
        let (fc, vf) = facts("program(1) { y := 10 / x1; }");
        let halt = fc.halts()[0];
        let env = vf.env_at[halt.0].as_ref().unwrap();
        assert!(env.get(Var::Out).is_top());
    }

    #[test]
    fn ite_on_decided_predicate_selects_one_arm() {
        let (fc, vf) = facts("program(1) { r1 := 1; y := ite(r1 == 1, 5, 6); }");
        let halt = fc.halts()[0];
        let env = vf.env_at[halt.0].as_ref().unwrap();
        assert_eq!(env.get(Var::Out).as_const(), Some(5));
    }

    #[test]
    fn abstract_values_cover_concrete_runs() {
        // Soundness probe: on random programs, every concrete halt value
        // lies in the abstract interval at the halt.
        use enf_core::{Grid, InputDomain};
        use enf_flowchart::generate::{random_flowchart, GenConfig};
        use enf_flowchart::interp::{run, ExecConfig, Outcome};
        let cfg = GenConfig::default();
        for seed in 900..960u64 {
            let fc = random_flowchart(seed, &cfg);
            let vf = analyze_values(&fc);
            for a in Grid::hypercube(2, -2..=2).iter_inputs() {
                if let Outcome::Halted(h) = run(&fc, &a, &ExecConfig::default()) {
                    let env = vf.env_at[h.halt.0]
                        .as_ref()
                        .unwrap_or_else(|| panic!("seed {seed}: reached 'unreachable' halt"));
                    assert!(
                        env.get(Var::Out).contains(h.y),
                        "seed {seed}: y = {} outside {:?} at {:?}",
                        h.y,
                        env.get(Var::Out),
                        a
                    );
                }
            }
        }
    }

    #[test]
    fn abs_arithmetic_corners() {
        let top = AbsVal::TOP;
        assert!(top.add(&top).is_top());
        assert_eq!(
            AbsVal::constant(3).mul(&AbsVal::range(-2, 4)),
            AbsVal::range(-6, 12)
        );
        assert_eq!(AbsVal::range(-7, 7).neg(), AbsVal::range(-7, 7));
        assert_eq!(
            AbsVal::range(1, 9).div(&AbsVal::constant(0)),
            AbsVal::constant(0)
        );
        assert_eq!(
            AbsVal::range(-9, 9).div(&AbsVal::constant(3)),
            AbsVal::range(-3, 3)
        );
        assert_eq!(
            AbsVal::range(0, 100).rem(&AbsVal::constant(5)),
            AbsVal::range(0, 4)
        );
        assert_eq!(
            AbsVal::constant(-7).rem(&AbsVal::constant(3)),
            AbsVal::constant(-1)
        );
    }
}
