//! Empirical functional equivalence of flowcharts.
//!
//! Deciding functional equivalence is of course undecidable in general
//! (it subsumes Theorem 4's constancy question); this module checks it
//! *on a finite domain*, which is exactly what validating a transform on a
//! test grid needs. Divergence (fuel exhaustion) counts as an observable
//! outcome and must match too.

use enf_core::par::{find_first, try_find_first, CancelToken};
use enf_core::{Coverage, EnfError, EvalConfig, InputDomain, V};
use enf_flowchart::graph::Flowchart;
use enf_flowchart::interp::{run, ExecConfig, Outcome};

/// Checks that two flowcharts compute the same function on a domain.
///
/// Returns the first differing input on failure.
pub fn equivalent_on(
    a: &Flowchart,
    b: &Flowchart,
    domain: &dyn InputDomain,
    fuel: u64,
) -> Result<(), Vec<V>> {
    equivalent_on_with(a, b, domain, fuel, &EvalConfig::default())
}

/// Like [`equivalent_on`] but with an explicit evaluation configuration.
///
/// The scan runs on the parallel engine (`enf_core::par`); the reported
/// witness is still the first differing input in enumeration order, for
/// every thread count.
pub fn equivalent_on_with(
    a: &Flowchart,
    b: &Flowchart,
    domain: &dyn InputDomain,
    fuel: u64,
    config: &EvalConfig,
) -> Result<(), Vec<V>> {
    assert_eq!(a.arity(), b.arity(), "arity mismatch");
    let cfg = ExecConfig::with_fuel(fuel);
    match find_first(domain, config, |_, input| {
        let oa = run(a, input, &cfg);
        let ob = run(b, input, &cfg);
        let same = match (&oa, &ob) {
            (Outcome::Halted(ha), Outcome::Halted(hb)) => ha.y == hb.y,
            (Outcome::OutOfFuel, Outcome::OutOfFuel) => true,
            _ => false,
        };
        (!same).then(|| input.to_vec())
    }) {
        Some((_, witness)) => Err(witness),
        None => Ok(()),
    }
}

/// Fault-tolerant [`equivalent_on`]: a panicking interpreter (e.g. a
/// malformed chart slipping past the parser) is quarantined instead of
/// unwinding, and the scan honors the cancellation token. The verdict is
/// `Refuted` with the first differing input, `Confirmed` on a clean full
/// scan, or `Unknown` when cancelled first.
pub fn try_equivalent_on_with(
    a: &Flowchart,
    b: &Flowchart,
    domain: &dyn InputDomain,
    fuel: u64,
    config: &EvalConfig,
    ctl: &CancelToken,
) -> Result<Coverage<Vec<V>>, EnfError> {
    assert_eq!(a.arity(), b.arity(), "arity mismatch");
    let cfg = ExecConfig::with_fuel(fuel);
    let coverage = try_find_first(domain, config, ctl, |_, input| {
        let oa = run(a, input, &cfg);
        let ob = run(b, input, &cfg);
        let same = match (&oa, &ob) {
            (Outcome::Halted(ha), Outcome::Halted(hb)) => ha.y == hb.y,
            (Outcome::OutOfFuel, Outcome::OutOfFuel) => true,
            _ => false,
        };
        (!same).then(|| input.to_vec())
    })?;
    Ok(coverage.map(|(_, witness)| witness))
}

#[cfg(test)]
mod tests {
    use super::*;
    use enf_core::Grid;
    use enf_flowchart::parse;

    #[test]
    fn identical_programs_are_equivalent() {
        let a = parse("program(1) { y := x1 * 2; }").unwrap();
        let b = parse("program(1) { y := x1 + x1; }").unwrap();
        let g = Grid::hypercube(1, -10..=10);
        assert!(equivalent_on(&a, &b, &g, 1000).is_ok());
    }

    #[test]
    fn differing_programs_report_witness() {
        let a = parse("program(1) { y := x1; }").unwrap();
        let b = parse("program(1) { y := x1 * x1; }").unwrap();
        let g = Grid::hypercube(1, -3..=3);
        let w = equivalent_on(&a, &b, &g, 1000).unwrap_err();
        // The first lexicographic differing input is -3 (-3 ≠ 9).
        assert_eq!(w, vec![-3]);
    }

    #[test]
    fn divergence_must_match() {
        let a = parse("program(1) { while x1 != 0 { skip; } y := 0; }").unwrap();
        let b = parse("program(1) { y := 0; }").unwrap();
        let g = Grid::hypercube(1, 0..=2);
        // a diverges on x1 ≠ 0 within small fuel; b never does.
        let w = equivalent_on(&a, &b, &g, 100).unwrap_err();
        assert_eq!(w, vec![1]);
        // Restricted to x1 = 0 they agree.
        let g0 = Grid::hypercube(1, 0..=0);
        assert!(equivalent_on(&a, &b, &g0, 100).is_ok());
    }
}
