//! Bounded leak refutation: a deterministic search for a *witness pair*.
//!
//! Certification ([`mod@crate::certify`]) can only answer "certified" or
//! "don't know" — a rejection names a suspicious taint, not a proof that
//! the program actually leaks. This module decides the third case on a
//! finite domain: it enumerates **pairs** of inputs that agree exactly on
//! `J` and looks for one whose two runs release different values (or show
//! different divergence behaviour). A hit is a constructive refutation of
//! soundness — precisely a [`Witness`](enf_core::soundness) in the sense
//! of `check_soundness`, but found by the static layer and replayable on
//! demand.
//!
//! The search is driven through [`enf_core::par::find_first`] over a
//! [`PairDomain`], so the reported witness is the least-index pair in
//! enumeration order — bit-identical for any thread count, the same
//! determinism contract the rest of the workspace's parallel sweeps keep.
//!
//! [`verify`] combines both layers into the three-valued verdict
//! [`RelationalVerdict`]: `Certified` (relational analysis proves
//! noninterference), `Leak` (replay-validated witness pair), or `Unknown`
//! (rejected but no counterexample on the searched domain — on an
//! exhaustively enumerated grid this means the program *is* sound there,
//! which is what makes the verdict differentially honest against
//! `check_soundness`).

use crate::certify::{certify, Analysis, Certification};
use enf_core::par::find_first;
use enf_core::{EvalConfig, IndexSet, InputDomain, V};
use enf_flowchart::graph::Flowchart;
use enf_flowchart::interp::{run, ExecConfig, ExecValue, Outcome};

/// The product domain `D × D`: pair index `i·|D| + j` decodes to the
/// concatenation of tuples `i` and `j` of the base domain.
///
/// This is the self-composition view at the domain level: one enumeration
/// index per *pair of runs*, so the parallel engine's first-match contract
/// applies to pairs directly.
pub struct PairDomain<'a> {
    base: &'a dyn InputDomain,
}

impl<'a> PairDomain<'a> {
    /// Wraps a base domain.
    pub fn new(base: &'a dyn InputDomain) -> Self {
        PairDomain { base }
    }
}

impl InputDomain for PairDomain<'_> {
    fn arity(&self) -> usize {
        self.base.arity() * 2
    }

    fn len(&self) -> usize {
        self.len_checked()
            .expect("pair domain size overflows usize")
    }

    fn len_checked(&self) -> Option<usize> {
        let n = self.base.len_checked()?;
        n.checked_mul(n)
    }

    fn iter_inputs(&self) -> Box<dyn Iterator<Item = Vec<V>> + '_> {
        Box::new(self.base.iter_inputs().flat_map(move |a| {
            self.base.iter_inputs().map(move |b| {
                let mut t = a.clone();
                t.extend_from_slice(&b);
                t
            })
        }))
    }

    fn nth_input(&self, idx: usize, buf: &mut Vec<V>) {
        let n = self.base.len();
        let (i, j) = (idx / n, idx % n);
        self.base.nth_input(i, buf);
        let mut second = Vec::with_capacity(self.base.arity());
        self.base.nth_input(j, &mut second);
        buf.extend_from_slice(&second);
    }

    fn visit_range(
        &self,
        range: std::ops::Range<usize>,
        visit: &mut dyn FnMut(usize, &[V]) -> bool,
    ) {
        let mut buf = Vec::new();
        for idx in range {
            self.nth_input(idx, &mut buf);
            if !visit(idx, &buf) {
                return;
            }
        }
    }
}

/// A replay-validated counterexample to soundness under `allow(J)`: two
/// inputs agreeing on `J` with observably different outcomes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LeakWitness {
    /// First run's inputs.
    pub a: Vec<V>,
    /// Second run's inputs (equal to `a` on every index in `J`).
    pub b: Vec<V>,
    /// First run's released outcome (`Diverged` = out of fuel).
    pub out_a: ExecValue,
    /// Second run's released outcome.
    pub out_b: ExecValue,
}

impl LeakWitness {
    /// Re-runs both executions and checks every part of the claim: the
    /// inputs agree on `J`, differ somewhere, and the recorded outcomes
    /// are reproduced and distinct.
    pub fn replays(&self, fc: &Flowchart, allowed: IndexSet, fuel: u64) -> bool {
        let agree = allowed
            .iter()
            .all(|i| self.a.get(i - 1) == self.b.get(i - 1));
        let cfg = ExecConfig::with_fuel(fuel);
        let out_a = released(&run(fc, &self.a, &cfg));
        let out_b = released(&run(fc, &self.b, &cfg));
        agree && self.a != self.b && out_a == self.out_a && out_b == self.out_b && out_a != out_b
    }
}

/// The observable of one run under the totalized semantics: the released
/// value, or `Diverged` when the fuel budget runs out.
fn released(outcome: &Outcome) -> ExecValue {
    match outcome {
        Outcome::Halted(h) => ExecValue::Value(h.y),
        Outcome::OutOfFuel => ExecValue::Diverged,
    }
}

/// Searches `domain × domain` for the least-index pair of `J`-agreeing
/// inputs with different released outcomes.
///
/// Runs with budget `fuel` that do not halt count as the distinct
/// observable `Diverged`, so divergence leaks (one run halts, the other
/// does not) are found too. Returns `None` when no pair on the domain
/// leaks — on an exhaustive grid that is a soundness proof for the grid.
pub fn refute(
    fc: &Flowchart,
    allowed: IndexSet,
    domain: &dyn InputDomain,
    fuel: u64,
    config: &EvalConfig,
) -> Option<LeakWitness> {
    let k = fc.arity();
    let pairs = PairDomain::new(domain);
    let cfg = ExecConfig::with_fuel(fuel);
    find_first(&pairs, config, |_, pair| {
        let (a, b) = pair.split_at(k);
        if a == b || !allowed.iter().all(|i| a.get(i - 1) == b.get(i - 1)) {
            return None;
        }
        let out_a = released(&run(fc, a, &cfg));
        let out_b = released(&run(fc, b, &cfg));
        (out_a != out_b).then(|| LeakWitness {
            a: a.to_vec(),
            b: b.to_vec(),
            out_a,
            out_b,
        })
    })
    .map(|(_, w)| w)
}

/// The three-valued outcome of relational verification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RelationalVerdict {
    /// The relational analysis proves noninterference w.r.t. `J` — for
    /// *all* inputs, not just the searched domain.
    Certified,
    /// A concrete, replay-validated counterexample: the program leaks.
    Leak {
        /// The witness pair.
        witness: LeakWitness,
    },
    /// Certification failed but no counterexample exists on the searched
    /// domain (at the given fuel): sound there, undecided beyond it.
    Unknown {
        /// The static disagreement the certifier could not discharge.
        taint: IndexSet,
    },
}

impl RelationalVerdict {
    /// One-word tag (`certified` / `leak` / `unknown`), the stable CLI
    /// vocabulary.
    pub fn tag(&self) -> &'static str {
        match self {
            RelationalVerdict::Certified => "certified",
            RelationalVerdict::Leak { .. } => "leak",
            RelationalVerdict::Unknown { .. } => "unknown",
        }
    }
}

/// Certify-then-refute: the complete three-valued verifier.
///
/// A `Leak` verdict is always replay-validated before being returned; a
/// witness that fails replay (impossible unless the interpreter is
/// nondeterministic) degrades to `Unknown` rather than report a false
/// proof.
pub fn verify(
    fc: &Flowchart,
    allowed: IndexSet,
    domain: &dyn InputDomain,
    fuel: u64,
    config: &EvalConfig,
) -> RelationalVerdict {
    match certify(fc, allowed, Analysis::Relational) {
        Certification::Certified => RelationalVerdict::Certified,
        Certification::Rejected { taint } => match refute(fc, allowed, domain, fuel, config) {
            Some(witness) if witness.replays(fc, allowed, fuel) => {
                RelationalVerdict::Leak { witness }
            }
            _ => RelationalVerdict::Unknown { taint },
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enf_core::Grid;
    use enf_flowchart::parse;

    const FUEL: u64 = 10_000;

    fn grid(k: usize) -> Grid {
        Grid::hypercube(k, -2..=2)
    }

    fn verdict(src: &str, allowed: IndexSet) -> RelationalVerdict {
        let fc = parse(src).unwrap();
        let g = grid(fc.arity());
        verify(&fc, allowed, &g, FUEL, &EvalConfig::default())
    }

    #[test]
    fn pair_domain_enumerates_the_square() {
        let g = Grid::hypercube(1, 0..=2);
        let p = PairDomain::new(&g);
        assert_eq!(p.arity(), 2);
        assert_eq!(p.len(), 9);
        let all: Vec<_> = p.iter_inputs().collect();
        assert_eq!(all[0], vec![0, 0]);
        assert_eq!(all[1], vec![0, 1]);
        assert_eq!(all[3], vec![1, 0]);
        // nth_input agrees with the iterator at every index.
        let mut buf = Vec::new();
        for (idx, tuple) in all.iter().enumerate() {
            p.nth_input(idx, &mut buf);
            assert_eq!(&buf, tuple, "index {idx}");
        }
    }

    #[test]
    fn cancelling_is_certified() {
        assert_eq!(
            verdict("program(1) { y := x1 - x1; }", IndexSet::empty()),
            RelationalVerdict::Certified
        );
    }

    #[test]
    fn two_path_leak_yields_least_witness() {
        let v = verdict(
            "program(2) { if x1 > 0 { y := 1; } else { y := 2; } }",
            IndexSet::single(2),
        );
        match v {
            RelationalVerdict::Leak { witness } => {
                // Least index on the -2..=2 square: a = [-2, -2] (index 0)
                // paired with the first J-agreeing b whose outcome differs,
                // b = [1, -2].
                assert_eq!(witness.a, vec![-2, -2]);
                assert_eq!(witness.b, vec![1, -2]);
                assert_eq!(witness.out_a, ExecValue::Value(2));
                assert_eq!(witness.out_b, ExecValue::Value(1));
            }
            other => panic!("expected leak, got {other:?}"),
        }
    }

    #[test]
    fn divergence_difference_is_a_leak() {
        // Halts iff x1 <= 0: a divergence channel, observable as
        // Value vs Diverged.
        let v = verdict(
            "program(1) { while x1 > 0 { r1 := r1 + 1; } y := 0; }",
            IndexSet::empty(),
        );
        match v {
            RelationalVerdict::Leak { witness } => {
                assert!(
                    matches!(witness.out_a, ExecValue::Value(_))
                        != matches!(witness.out_b, ExecValue::Value(_)),
                    "expected one halting and one diverging run: {witness:?}"
                );
            }
            other => panic!("expected divergence leak, got {other:?}"),
        }
    }

    #[test]
    fn unknown_when_grid_too_small_to_leak() {
        // y := x1 / 3 leaks in general but is constant 0 on [-2, 2]:
        // rejected statically, no witness on the grid.
        let v = verdict("program(1) { y := x1 / 3; }", IndexSet::empty());
        match v {
            RelationalVerdict::Unknown { taint } => assert_eq!(taint, IndexSet::single(1)),
            other => panic!("expected unknown, got {other:?}"),
        }
    }

    #[test]
    fn witness_is_identical_for_every_thread_count() {
        let fc = parse("program(2) { y := x1 * x2; }").unwrap();
        let g = grid(2);
        let baseline = refute(&fc, IndexSet::single(2), &g, FUEL, &EvalConfig::default());
        assert!(baseline.is_some());
        for t in 1..=8 {
            let cfg = EvalConfig::with_threads(t).seq_threshold(0);
            assert_eq!(
                refute(&fc, IndexSet::single(2), &g, FUEL, &cfg),
                baseline,
                "threads = {t}"
            );
        }
    }

    #[test]
    fn leak_witnesses_replay() {
        for (src, j) in [
            ("program(2) { if x1 > 0 { y := 1; } else { y := 2; } }", 2),
            ("program(2) { y := x1 + x2; }", 2),
        ] {
            let fc = parse(src).unwrap();
            let allowed = IndexSet::single(j);
            let g = grid(2);
            let w = refute(&fc, allowed, &g, FUEL, &EvalConfig::default()).expect("leak");
            assert!(w.replays(&fc, allowed, FUEL), "{src}: {w:?}");
            assert!(!w.replays(&fc, allowed.union(&IndexSet::single(1)), FUEL));
        }
    }
}
