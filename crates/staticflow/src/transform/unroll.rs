//! The while transform: one-step loop unrolling.
//!
//! Section 4 sketches a while-loop analogue of the if-then-else transform
//! ("transforms can be created for all single-entry and single-exit
//! structures"). The always-valid identity is
//!
//! ```text
//! while B { S }   ≡   if B { S; while B { S } }
//! ```
//!
//! which peels one iteration. Peeling exposes the first iteration's
//! assignments to the other transforms (sinking, ite-conversion, folding) —
//! that composition is what the search pipeline exploits.

use super::Transform;
use enf_flowchart::structured::{Stmt, StructuredProgram};

/// Peels one iteration off every loop (outermost loops only per
/// application, to keep growth linear).
pub struct UnrollOnce;

fn rewrite_block(stmts: &[Stmt], changed: &mut bool) -> Vec<Stmt> {
    stmts
        .iter()
        .map(|s| match s {
            Stmt::While(p, b) => {
                *changed = true;
                let mut once = b.clone();
                once.push(Stmt::While(p.clone(), b.clone()));
                Stmt::If(p.clone(), once, Vec::new())
            }
            Stmt::If(p, t, e) => Stmt::If(
                p.clone(),
                rewrite_block(t, changed),
                rewrite_block(e, changed),
            ),
            other => other.clone(),
        })
        .collect()
}

impl Transform for UnrollOnce {
    fn name(&self) -> &'static str {
        "unroll-once"
    }

    fn apply(&self, p: &StructuredProgram) -> Option<StructuredProgram> {
        let mut changed = false;
        let body = rewrite_block(&p.body, &mut changed);
        changed.then(|| StructuredProgram::new(p.arity, body))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::testutil::assert_equiv;
    use enf_flowchart::parser::parse_structured;

    #[test]
    fn peels_one_iteration() {
        let p =
            parse_structured("program(1) { r1 := x1; while r1 > 0 { y := y + 2; r1 := r1 - 1; } }")
                .unwrap();
        let q = UnrollOnce.apply(&p).expect("should match");
        assert!(matches!(q.body[1], Stmt::If(..)));
        assert_equiv(&p, &q, 4);
    }

    #[test]
    fn no_loop_no_rewrite() {
        let p = parse_structured("program(1) { y := x1; }").unwrap();
        assert!(UnrollOnce.apply(&p).is_none());
    }

    #[test]
    fn divergent_loops_stay_divergent() {
        let p = parse_structured("program(1) { while x1 != 0 { skip; } y := 1; }").unwrap();
        let q = UnrollOnce.apply(&p).expect("should match");
        // Equivalence includes matching divergence under bounded fuel.
        assert_equiv(&p, &q, 2);
    }

    #[test]
    fn repeated_unrolling_stays_equivalent() {
        let p =
            parse_structured("program(1) { r1 := 3; while r1 > 0 { y := y + x1; r1 := r1 - 1; } }")
                .unwrap();
        let mut q = p.clone();
        for _ in 0..3 {
            q = UnrollOnce.apply(&q).expect("still has a loop");
        }
        assert_equiv(&p, &q, 3);
    }

    #[test]
    fn unrolls_inside_branches() {
        let p = parse_structured(
            "program(1) {
                if x1 > 0 { r1 := 2; while r1 > 0 { y := y + 1; r1 := r1 - 1; } }
            }",
        )
        .unwrap();
        let q = UnrollOnce.apply(&p).expect("should match");
        assert_equiv(&p, &q, 3);
    }
}
