//! Forward constant propagation.
//!
//! Tracks which variables hold known constants through straight-line
//! code, substitutes them into expressions and predicates, and merges
//! conservatively at control joins (a variable survives a join only if
//! both arms agree on its value; loops kill everything their body
//! assigns). Composed with [`super::unroll`] and [`super::fold`] this
//! linearizes constant-bounded loops completely:
//!
//! ```text
//! r := 2; while r > 0 { S; r := r - 1 }
//!   --unroll-->  r := 2; if r > 0 { S; r := r - 1; while r > 0 { … } }
//!   --prop--->   r := 2; if 2 > 0 { S; r := 1; while 1 > 0 { … } }   (…)
//!   --fold--->   straight-line S; S
//! ```
//!
//! Straight-line code never taints the program counter, so this composed
//! pipeline is the strongest completeness lever the search has — the
//! "while transform" the paper sketches for single-entry/single-exit
//! structures, realized as ordinary compiler technology.

use super::Transform;
use enf_flowchart::ast::{Expr, Pred, Var};
use enf_flowchart::structured::{Stmt, StructuredProgram};
use std::collections::HashMap;

/// Forward constant propagation over the structured AST.
pub struct ConstProp;

type Env = HashMap<Var, i64>;

fn subst_expr(e: &Expr, env: &Env, changed: &mut bool) -> Expr {
    match e {
        Expr::Const(_) => e.clone(),
        Expr::Var(v) => match env.get(v) {
            Some(c) => {
                *changed = true;
                Expr::Const(*c)
            }
            None => e.clone(),
        },
        Expr::Neg(a) => Expr::Neg(Box::new(subst_expr(a, env, changed))),
        Expr::Add(a, b) => bin(e, subst_expr(a, env, changed), subst_expr(b, env, changed)),
        Expr::Sub(a, b) => bin(e, subst_expr(a, env, changed), subst_expr(b, env, changed)),
        Expr::Mul(a, b) => bin(e, subst_expr(a, env, changed), subst_expr(b, env, changed)),
        Expr::Div(a, b) => bin(e, subst_expr(a, env, changed), subst_expr(b, env, changed)),
        Expr::Mod(a, b) => bin(e, subst_expr(a, env, changed), subst_expr(b, env, changed)),
        Expr::BOr(a, b) => bin(e, subst_expr(a, env, changed), subst_expr(b, env, changed)),
        Expr::BAnd(a, b) => bin(e, subst_expr(a, env, changed), subst_expr(b, env, changed)),
        Expr::Ite(p, t, f) => Expr::Ite(
            Box::new(subst_pred(p, env, changed)),
            Box::new(subst_expr(t, env, changed)),
            Box::new(subst_expr(f, env, changed)),
        ),
    }
}

fn bin(orig: &Expr, a: Expr, b: Expr) -> Expr {
    match orig {
        Expr::Add(..) => Expr::Add(Box::new(a), Box::new(b)),
        Expr::Sub(..) => Expr::Sub(Box::new(a), Box::new(b)),
        Expr::Mul(..) => Expr::Mul(Box::new(a), Box::new(b)),
        Expr::Div(..) => Expr::Div(Box::new(a), Box::new(b)),
        Expr::Mod(..) => Expr::Mod(Box::new(a), Box::new(b)),
        Expr::BOr(..) => Expr::BOr(Box::new(a), Box::new(b)),
        Expr::BAnd(..) => Expr::BAnd(Box::new(a), Box::new(b)),
        _ => unreachable!("bin rebuilds binary expressions only"),
    }
}

fn subst_pred(p: &Pred, env: &Env, changed: &mut bool) -> Pred {
    match p {
        Pred::True | Pred::False => p.clone(),
        Pred::Cmp(op, a, b) => Pred::Cmp(
            *op,
            Box::new(subst_expr(a, env, changed)),
            Box::new(subst_expr(b, env, changed)),
        ),
        Pred::Not(q) => Pred::Not(Box::new(subst_pred(q, env, changed))),
        Pred::And(a, b) => Pred::And(
            Box::new(subst_pred(a, env, changed)),
            Box::new(subst_pred(b, env, changed)),
        ),
        Pred::Or(a, b) => Pred::Or(
            Box::new(subst_pred(a, env, changed)),
            Box::new(subst_pred(b, env, changed)),
        ),
    }
}

/// Variables assigned anywhere in a block (transitively).
fn assigned(stmts: &[Stmt], out: &mut Vec<Var>) {
    for s in stmts {
        match s {
            Stmt::Assign(v, _) => out.push(*v),
            Stmt::If(_, t, e) => {
                assigned(t, out);
                assigned(e, out);
            }
            Stmt::While(_, b) => assigned(b, out),
            _ => {}
        }
    }
}

/// Propagates through a block, mutating `env`; returns the rewritten
/// block. `env = None` means "unreachable fall-through" (after halt).
fn prop_block(stmts: &[Stmt], env: &mut Option<Env>, changed: &mut bool) -> Vec<Stmt> {
    let mut out = Vec::with_capacity(stmts.len());
    for s in stmts {
        let Some(live) = env.as_mut() else {
            // Dead code after a halt: keep it untouched.
            out.push(s.clone());
            continue;
        };
        match s {
            Stmt::Skip => out.push(Stmt::Skip),
            Stmt::Halt => {
                out.push(Stmt::Halt);
                *env = None;
            }
            // Policy boxes don't touch the store: keep them, keep the facts.
            Stmt::SetPolicy(_) | Stmt::Declassify(..) => out.push(s.clone()),
            Stmt::Assign(v, e) => {
                let e2 = subst_expr(e, live, changed);
                match e2 {
                    Expr::Const(c) => {
                        live.insert(*v, c);
                    }
                    _ => {
                        live.remove(v);
                    }
                }
                out.push(Stmt::Assign(*v, e2));
            }
            Stmt::If(p, t, e) => {
                let p2 = subst_pred(p, live, changed);
                let mut env_t = Some(live.clone());
                let mut env_e = Some(live.clone());
                let t2 = prop_block(t, &mut env_t, changed);
                let e2 = prop_block(e, &mut env_e, changed);
                // Merge: keep facts both live arms agree on; an arm that
                // halted imposes no constraint.
                *live = match (env_t, env_e) {
                    (Some(a), Some(b)) => {
                        a.into_iter().filter(|(v, c)| b.get(v) == Some(c)).collect()
                    }
                    (Some(a), None) | (None, Some(a)) => a,
                    (None, None) => {
                        out.push(Stmt::If(p2, t2, e2));
                        *env = None;
                        continue;
                    }
                };
                out.push(Stmt::If(p2, t2, e2));
            }
            Stmt::While(p, b) => {
                // Loop bodies may run zero or more times: kill every fact
                // about variables the body assigns, both for the guard and
                // for the continuation.
                let mut killed = Vec::new();
                assigned(b, &mut killed);
                for v in &killed {
                    live.remove(v);
                }
                let p2 = subst_pred(p, live, changed);
                let mut env_b = Some(live.clone());
                let b2 = prop_block(b, &mut env_b, changed);
                out.push(Stmt::While(p2, b2));
                // After the loop the killed facts stay dead (already
                // removed above); facts about untouched variables survive.
            }
        }
    }
    out
}

impl Transform for ConstProp {
    fn name(&self) -> &'static str {
        "const-prop"
    }

    fn apply(&self, p: &StructuredProgram) -> Option<StructuredProgram> {
        let mut changed = false;
        let mut env = Some(Env::new());
        let body = prop_block(&p.body, &mut env, &mut changed);
        changed.then(|| StructuredProgram::new(p.arity, body))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::fold::ConstFold;
    use crate::transform::testutil::assert_equiv;
    use crate::transform::unroll::UnrollOnce;
    use enf_flowchart::parser::parse_structured;
    use enf_flowchart::pretty::structured_to_string;

    fn prop(src: &str) -> StructuredProgram {
        ConstProp
            .apply(&parse_structured(src).unwrap())
            .expect("should propagate")
    }

    #[test]
    fn straight_line_propagation() {
        let q = prop("program(0) { r1 := 3; y := r1 + r1; }");
        assert_eq!(
            q.body[1],
            Stmt::Assign(
                Var::Out,
                Expr::Add(Box::new(Expr::Const(3)), Box::new(Expr::Const(3)))
            )
        );
    }

    #[test]
    fn reassignment_updates_the_fact() {
        let q = prop("program(0) { r1 := 3; r1 := 5; y := r1; }");
        assert_eq!(q.body[2], Stmt::Assign(Var::Out, Expr::Const(5)));
    }

    #[test]
    fn nonconstant_assignment_kills_the_fact() {
        let p = parse_structured("program(1) { r1 := 3; r1 := x1; y := r1; }").unwrap();
        let q = ConstProp.apply(&p);
        // r1 := 3 is substituted nowhere (killed before use), so nothing
        // changes at all.
        assert!(q.is_none());
    }

    #[test]
    fn join_keeps_agreeing_facts_only() {
        let q = prop(
            "program(1) {
                r1 := 7; r2 := 1;
                if x1 == 0 { r2 := 2; } else { r2 := 3; }
                y := r1 + r2;
            }",
        );
        match &q.body[3] {
            Stmt::Assign(Var::Out, Expr::Add(a, b)) => {
                assert_eq!(**a, Expr::Const(7), "r1 survives the join");
                assert_eq!(**b, Expr::Var(Var::Reg(2)), "r2 does not");
            }
            other => panic!("unexpected {other:?}"),
        }
        let p = parse_structured(
            "program(1) {
                r1 := 7; r2 := 1;
                if x1 == 0 { r2 := 2; } else { r2 := 3; }
                y := r1 + r2;
            }",
        )
        .unwrap();
        assert_equiv(&p, &q, 3);
    }

    #[test]
    fn agreeing_branches_keep_the_fact() {
        let q = prop(
            "program(1) {
                if x1 == 0 { r1 := 4; } else { r1 := 4; }
                y := r1;
            }",
        );
        assert_eq!(q.body[1], Stmt::Assign(Var::Out, Expr::Const(4)));
    }

    #[test]
    fn halted_arm_imposes_no_constraint() {
        let q = prop(
            "program(1) {
                if x1 == 0 { y := 0; halt; } else { r1 := 9; }
                y := r1;
            }",
        );
        assert_eq!(
            *q.body.last().unwrap(),
            Stmt::Assign(Var::Out, Expr::Const(9))
        );
        let p = parse_structured(
            "program(1) {
                if x1 == 0 { y := 0; halt; } else { r1 := 9; }
                y := r1;
            }",
        )
        .unwrap();
        assert_equiv(&p, &q, 3);
    }

    #[test]
    fn loops_kill_assigned_facts() {
        let p = parse_structured(
            "program(1) {
                r1 := 3;
                while x1 > 0 { r1 := r1 + 1; x1 := x1 - 1; }
                y := r1;
            }",
        )
        .unwrap();
        // r1 must NOT be propagated into the guard, body or continuation.
        let q = ConstProp.apply(&p);
        if let Some(q) = q {
            assert_equiv(&p, &q, 3);
            assert_eq!(*q.body.last().unwrap(), Stmt::Assign(Var::Out, Expr::r(1)));
        }
    }

    #[test]
    fn facts_about_untouched_vars_survive_loops() {
        let q = prop(
            "program(1) {
                r2 := 6;
                while x1 > 0 { x1 := x1 - 1; }
                y := r2;
            }",
        );
        assert_eq!(
            *q.body.last().unwrap(),
            Stmt::Assign(Var::Out, Expr::Const(6))
        );
    }

    #[test]
    fn unroll_prop_fold_linearizes_constant_loops() {
        // The composition the module docs promise.
        let p =
            parse_structured("program(1) { r1 := 2; while r1 > 0 { y := y + x1; r1 := r1 - 1; } }")
                .unwrap();
        let mut q = p.clone();
        for _ in 0..6 {
            if let Some(u) = UnrollOnce.apply(&q) {
                q = u;
            }
            if let Some(c) = ConstProp.apply(&q) {
                q = c;
            }
            if let Some(f) = ConstFold.apply(&q) {
                q = f;
            }
        }
        assert_equiv(&p, &q, 3);
        let printed = structured_to_string(&q);
        assert!(
            !printed.contains("while"),
            "loop should be fully linearized:\n{printed}"
        );
    }

    #[test]
    fn semantics_preserved_on_random_programs() {
        use enf_flowchart::generate::{random_structured, GenConfig};
        for seed in 700..760u64 {
            let p = random_structured(seed, &GenConfig::default());
            if let Some(q) = ConstProp.apply(&p) {
                assert_equiv(&p, &q, 1);
            }
        }
    }
}
