//! The duplication (sinking) transform of Example 9.
//!
//! "The program can be transformed to a functionally equivalent program by
//! duplicating the assignment to y." A statement immediately following a
//! two-armed conditional is copied to the end of both arms:
//!
//! ```text
//! if B { S1 } else { S2 }      if B { S1; T } else { S2; T }
//! T                       ⟶
//! ```
//!
//! Duplication is always semantics-preserving (an arm that halts simply
//! drops its copy as dead code). Its value is *path-splitting*: after
//! sinking, a per-path static analysis — or the dynamic surveillance
//! mechanism — can treat the two copies of `T` independently.

use super::Transform;
use enf_flowchart::structured::{Stmt, StructuredProgram};

/// Sinks post-conditional assignments into both branches.
pub struct SinkIntoBranches;

fn rewrite_block(stmts: &[Stmt], changed: &mut bool) -> Vec<Stmt> {
    let mut out: Vec<Stmt> = Vec::with_capacity(stmts.len());
    let mut i = 0;
    while i < stmts.len() {
        let s = rewrite_stmt(&stmts[i], changed);
        // Sink a following assignment into a just-emitted conditional.
        if let Stmt::If(p, t, e) = s {
            if let Some(Stmt::Assign(v, expr)) = stmts.get(i + 1) {
                let mut t2 = t;
                let mut e2 = e;
                t2.push(Stmt::Assign(*v, expr.clone()));
                e2.push(Stmt::Assign(*v, expr.clone()));
                out.push(Stmt::If(p, t2, e2));
                *changed = true;
                i += 2;
                continue;
            }
            out.push(Stmt::If(p, t, e));
        } else {
            out.push(s);
        }
        i += 1;
    }
    out
}

fn rewrite_stmt(s: &Stmt, changed: &mut bool) -> Stmt {
    match s {
        Stmt::If(p, t, e) => Stmt::If(
            p.clone(),
            rewrite_block(t, changed),
            rewrite_block(e, changed),
        ),
        Stmt::While(p, b) => Stmt::While(p.clone(), rewrite_block(b, changed)),
        other => other.clone(),
    }
}

impl Transform for SinkIntoBranches {
    fn name(&self) -> &'static str {
        "sink-into-branches"
    }

    fn apply(&self, p: &StructuredProgram) -> Option<StructuredProgram> {
        let mut changed = false;
        let body = rewrite_block(&p.body, &mut changed);
        changed.then(|| StructuredProgram::new(p.arity, body))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::testutil::assert_equiv;
    use enf_flowchart::parser::parse_structured;

    #[test]
    fn example9_duplicates_the_trailing_assignment() {
        let p =
            parse_structured("program(2) { if x1 == 0 { r1 := 1; } else { r1 := x2; } y := r1; }")
                .unwrap();
        let q = SinkIntoBranches.apply(&p).expect("should match");
        assert_eq!(q.body.len(), 1);
        match &q.body[0] {
            Stmt::If(_, t, e) => {
                assert_eq!(t.len(), 2);
                assert_eq!(e.len(), 2);
                assert!(matches!(t[1], Stmt::Assign(..)));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_equiv(&p, &q, 3);
    }

    #[test]
    fn no_following_assignment_no_rewrite() {
        let p = parse_structured("program(1) { if x1 == 0 { y := 1; } else { y := 2; } }").unwrap();
        assert!(SinkIntoBranches.apply(&p).is_none());
    }

    #[test]
    fn sinking_past_halting_branch_is_safe() {
        let p = parse_structured(
            "program(1) { if x1 == 0 { y := 1; halt; } else { r1 := 2; } y := 5; }",
        )
        .unwrap();
        let q = SinkIntoBranches.apply(&p).expect("should match");
        assert_equiv(&p, &q, 3);
    }

    #[test]
    fn sinks_inside_nested_structures() {
        let p = parse_structured(
            "program(2) {
                r2 := 2;
                while r2 > 0 {
                    if x1 == 0 { r1 := 1; } else { r1 := 2; }
                    y := r1;
                    r2 := r2 - 1;
                }
            }",
        )
        .unwrap();
        let q = SinkIntoBranches.apply(&p).expect("should match");
        assert_equiv(&p, &q, 3);
    }

    #[test]
    fn repeated_application_sinks_chains() {
        // Two trailing assignments sink one per application.
        let p = parse_structured(
            "program(1) { if x1 == 0 { r1 := 1; } else { r1 := 2; } y := r1; r2 := y; }",
        )
        .unwrap();
        let q1 = SinkIntoBranches.apply(&p).expect("first sink");
        let q2 = SinkIntoBranches.apply(&q1).expect("second sink");
        assert_equiv(&p, &q2, 3);
        assert!(SinkIntoBranches.apply(&q2).is_none());
    }
}
