//! Functionally-equivalent program transformations.
//!
//! "Given a program Q, transform it to Q′ where Q and Q′ are functionally
//! equivalent. Then apply the surveillance protection mechanism to Q′ to
//! yield a sound protection mechanism for Q." (Section 4.)
//!
//! Each [`Transform`] rewrites a structured program into a functionally
//! equivalent one; the equivalence is property-checked by
//! [`crate::equiv`]. Whether a transform helps or hurts the derived
//! mechanism's completeness is program-dependent (Examples 7 vs 8), and by
//! Theorem 4 no algorithm decides it optimally — see [`crate::search`].

pub mod constprop;
pub mod dup;
pub mod fold;
pub mod ifelse;
pub mod unroll;

use enf_flowchart::structured::StructuredProgram;

/// A semantics-preserving rewrite of structured programs.
pub trait Transform {
    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// Applies the rewrite everywhere it matches; `None` when nothing
    /// matched.
    fn apply(&self, p: &StructuredProgram) -> Option<StructuredProgram>;
}

/// All built-in transforms, in a stable order.
pub fn all_transforms() -> Vec<Box<dyn Transform>> {
    vec![
        Box::new(ifelse::IfToIte),
        Box::new(dup::SinkIntoBranches),
        Box::new(unroll::UnrollOnce),
        Box::new(constprop::ConstProp),
        Box::new(fold::ConstFold),
    ]
}

#[cfg(test)]
pub(crate) mod testutil {
    use enf_core::Grid;
    use enf_flowchart::structured::{lower, StructuredProgram};

    /// Asserts two structured programs agree on a grid (including
    /// divergence behaviour under the given fuel).
    pub fn assert_equiv(a: &StructuredProgram, b: &StructuredProgram, span: i64) {
        let fa = lower(a).unwrap();
        let fb = lower(b).unwrap();
        let g = Grid::hypercube(a.arity, -span..=span);
        crate::equiv::equivalent_on(&fa, &fb, &g, 100_000)
            .unwrap_or_else(|w| panic!("programs differ at {w:?}"));
    }
}
