//! The if-then-else transform (Section 4, Examples 7 and 8).
//!
//! `if B { v := E1 } else { v := E2 }` rewrites to the data-flow selection
//! `v := ite(B, E1, E2)` — "functionally equivalent to r := f(x1)". The
//! branch disappears, so the test no longer taints the program counter;
//! instead its taint joins the assigned value's. That trade is profitable
//! exactly when the PC taint would have outlived the value (Example 7) and
//! harmful when only one arm carried the denied data (Example 8).

use super::Transform;
use enf_flowchart::ast::Expr;
use enf_flowchart::structured::{Stmt, StructuredProgram};

/// Rewrites two-armed single-assignment conditionals into `ite`.
pub struct IfToIte;

fn rewrite_block(stmts: &[Stmt], changed: &mut bool) -> Vec<Stmt> {
    stmts.iter().map(|s| rewrite_stmt(s, changed)).collect()
}

fn rewrite_stmt(s: &Stmt, changed: &mut bool) -> Stmt {
    match s {
        Stmt::If(p, t, e) => {
            let t2 = rewrite_block(t, changed);
            let e2 = rewrite_block(e, changed);
            if let ([Stmt::Assign(vt, et)], [Stmt::Assign(ve, ee)]) = (t2.as_slice(), e2.as_slice())
            {
                if vt == ve {
                    *changed = true;
                    return Stmt::Assign(
                        *vt,
                        Expr::Ite(
                            Box::new(p.clone()),
                            Box::new(et.clone()),
                            Box::new(ee.clone()),
                        ),
                    );
                }
            }
            Stmt::If(p.clone(), t2, e2)
        }
        Stmt::While(p, b) => Stmt::While(p.clone(), rewrite_block(b, changed)),
        other => other.clone(),
    }
}

impl Transform for IfToIte {
    fn name(&self) -> &'static str {
        "if-to-ite"
    }

    fn apply(&self, p: &StructuredProgram) -> Option<StructuredProgram> {
        let mut changed = false;
        let body = rewrite_block(&p.body, &mut changed);
        changed.then(|| StructuredProgram::new(p.arity, body))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::testutil::assert_equiv;
    use enf_flowchart::parser::parse_structured;

    fn apply(src: &str) -> Option<StructuredProgram> {
        IfToIte.apply(&parse_structured(src).unwrap())
    }

    #[test]
    fn simple_conditional_rewrites() {
        let p =
            parse_structured("program(2) { if x1 == 1 { r1 := 1; } else { r1 := 2; } y := 1; }")
                .unwrap();
        let q = IfToIte.apply(&p).expect("should match");
        assert!(matches!(q.body[0], Stmt::Assign(_, Expr::Ite(..))));
        assert_equiv(&p, &q, 3);
    }

    #[test]
    fn mismatched_targets_do_not_rewrite() {
        assert!(apply("program(1) { if x1 == 0 { r1 := 1; } else { r2 := 2; } }").is_none());
    }

    #[test]
    fn multi_statement_branches_do_not_rewrite() {
        assert!(
            apply("program(1) { if x1 == 0 { r1 := 1; r2 := 2; } else { r1 := 3; } }").is_none()
        );
    }

    #[test]
    fn missing_else_does_not_rewrite() {
        assert!(apply("program(1) { if x1 == 0 { y := 1; } }").is_none());
    }

    #[test]
    fn nested_conditionals_rewrite_bottom_up() {
        // The inner if collapses first, making the outer branches single
        // assignments that collapse too.
        let p = parse_structured(
            "program(2) {
                if x1 == 0 {
                    if x2 == 0 { y := 1; } else { y := 2; }
                } else { y := 3; }
            }",
        )
        .unwrap();
        let q = IfToIte.apply(&p).expect("should match");
        assert_eq!(q.body.len(), 1);
        assert!(matches!(q.body[0], Stmt::Assign(_, Expr::Ite(..))));
        assert_equiv(&p, &q, 3);
    }

    #[test]
    fn rewrites_inside_while_bodies() {
        let p = parse_structured(
            "program(1) {
                r2 := 3;
                while r2 > 0 {
                    if x1 == 0 { r1 := 1; } else { r1 := 2; }
                    r2 := r2 - 1;
                }
                y := r1;
            }",
        )
        .unwrap();
        let q = IfToIte.apply(&p).expect("should match");
        assert_equiv(&p, &q, 3);
    }

    #[test]
    fn example8_shape_rewrites_and_stays_equivalent() {
        let p =
            parse_structured("program(2) { if x2 == 1 { y := 1; } else { y := x1; } }").unwrap();
        let q = IfToIte.apply(&p).expect("should match");
        assert_equiv(&p, &q, 3);
    }
}
