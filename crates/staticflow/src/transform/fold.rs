//! Constant folding and branch simplification.
//!
//! The workhorse cleanup pass: folds constant subexpressions and
//! predicates, collapses `ite` on a decided selector, prunes `if
//! true`/`if false` branches and deletes `while false` loops. Composed
//! after [`super::unroll`] it turns constant-bounded loops into straight
//! line code — the strongest completeness win available to the search
//! pipeline, since straight-line code never taints the program counter.

use super::Transform;
use enf_flowchart::ast::{Expr, Pred};
use enf_flowchart::structured::{Stmt, StructuredProgram};

/// Folds constants and prunes decided control flow.
pub struct ConstFold;

fn fold_expr(e: &Expr, changed: &mut bool) -> Expr {
    let bin =
        |a: &Expr, b: &Expr, changed: &mut bool| (fold_expr(a, changed), fold_expr(b, changed));
    match e {
        Expr::Const(_) | Expr::Var(_) => e.clone(),
        Expr::Neg(a) => {
            let a = fold_expr(a, changed);
            if let Expr::Const(v) = a {
                *changed = true;
                Expr::Const(v.wrapping_neg())
            } else {
                Expr::Neg(Box::new(a))
            }
        }
        Expr::Add(a, b) => fold_bin(e, bin(a, b, changed), changed),
        Expr::Sub(a, b) => fold_bin(e, bin(a, b, changed), changed),
        Expr::Mul(a, b) => fold_bin(e, bin(a, b, changed), changed),
        Expr::Div(a, b) => fold_bin(e, bin(a, b, changed), changed),
        Expr::Mod(a, b) => fold_bin(e, bin(a, b, changed), changed),
        Expr::BOr(a, b) => fold_bin(e, bin(a, b, changed), changed),
        Expr::BAnd(a, b) => fold_bin(e, bin(a, b, changed), changed),
        Expr::Ite(p, t, f) => {
            let p = fold_pred(p, changed);
            let t = fold_expr(t, changed);
            let f = fold_expr(f, changed);
            match p {
                Pred::True => {
                    *changed = true;
                    t
                }
                Pred::False => {
                    *changed = true;
                    f
                }
                p => Expr::Ite(Box::new(p), Box::new(t), Box::new(f)),
            }
        }
    }
}

fn fold_bin(orig: &Expr, (a, b): (Expr, Expr), changed: &mut bool) -> Expr {
    if let (Expr::Const(x), Expr::Const(y)) = (&a, &b) {
        // Evaluate with the language's own total semantics.
        let rebuilt = rebuild(orig, Expr::Const(*x), Expr::Const(*y));
        let v = rebuilt.eval(&|_| 0);
        *changed = true;
        return Expr::Const(v);
    }
    rebuild(orig, a, b)
}

fn rebuild(orig: &Expr, a: Expr, b: Expr) -> Expr {
    match orig {
        Expr::Add(..) => Expr::Add(Box::new(a), Box::new(b)),
        Expr::Sub(..) => Expr::Sub(Box::new(a), Box::new(b)),
        Expr::Mul(..) => Expr::Mul(Box::new(a), Box::new(b)),
        Expr::Div(..) => Expr::Div(Box::new(a), Box::new(b)),
        Expr::Mod(..) => Expr::Mod(Box::new(a), Box::new(b)),
        Expr::BOr(..) => Expr::BOr(Box::new(a), Box::new(b)),
        Expr::BAnd(..) => Expr::BAnd(Box::new(a), Box::new(b)),
        _ => unreachable!("rebuild called on non-binary expression"),
    }
}

fn fold_pred(p: &Pred, changed: &mut bool) -> Pred {
    match p {
        Pred::True | Pred::False => p.clone(),
        Pred::Cmp(op, a, b) => {
            let a = fold_expr(a, changed);
            let b = fold_expr(b, changed);
            if let (Expr::Const(x), Expr::Const(y)) = (&a, &b) {
                *changed = true;
                if op.apply(*x, *y) {
                    Pred::True
                } else {
                    Pred::False
                }
            } else {
                Pred::Cmp(*op, Box::new(a), Box::new(b))
            }
        }
        Pred::Not(q) => match fold_pred(q, changed) {
            Pred::True => {
                *changed = true;
                Pred::False
            }
            Pred::False => {
                *changed = true;
                Pred::True
            }
            q => Pred::Not(Box::new(q)),
        },
        Pred::And(a, b) => {
            let a = fold_pred(a, changed);
            let b = fold_pred(b, changed);
            match (&a, &b) {
                (Pred::False, _) | (_, Pred::False) => {
                    *changed = true;
                    Pred::False
                }
                (Pred::True, _) => {
                    *changed = true;
                    b
                }
                (_, Pred::True) => {
                    *changed = true;
                    a
                }
                _ => Pred::And(Box::new(a), Box::new(b)),
            }
        }
        Pred::Or(a, b) => {
            let a = fold_pred(a, changed);
            let b = fold_pred(b, changed);
            match (&a, &b) {
                (Pred::True, _) | (_, Pred::True) => {
                    *changed = true;
                    Pred::True
                }
                (Pred::False, _) => {
                    *changed = true;
                    b
                }
                (_, Pred::False) => {
                    *changed = true;
                    a
                }
                _ => Pred::Or(Box::new(a), Box::new(b)),
            }
        }
    }
}

fn fold_block(stmts: &[Stmt], changed: &mut bool) -> Vec<Stmt> {
    let mut out = Vec::with_capacity(stmts.len());
    for s in stmts {
        match s {
            Stmt::Assign(v, e) => out.push(Stmt::Assign(*v, fold_expr(e, changed))),
            Stmt::If(p, t, e) => {
                let p = fold_pred(p, changed);
                let t = fold_block(t, changed);
                let e = fold_block(e, changed);
                match p {
                    Pred::True => {
                        *changed = true;
                        out.extend(t);
                    }
                    Pred::False => {
                        *changed = true;
                        out.extend(e);
                    }
                    p => out.push(Stmt::If(p, t, e)),
                }
            }
            Stmt::While(p, b) => {
                let p = fold_pred(p, changed);
                let b = fold_block(b, changed);
                if p == Pred::False {
                    // `while false { … }` disappears entirely.
                    *changed = true;
                } else {
                    out.push(Stmt::While(p, b));
                }
            }
            Stmt::Halt => out.push(Stmt::Halt),
            Stmt::Skip => {
                *changed = true; // Dropping a skip is itself a change…
            }
            // Policy boxes have no value content to fold.
            Stmt::SetPolicy(_) | Stmt::Declassify(..) => out.push(s.clone()),
        }
    }
    out
}

impl Transform for ConstFold {
    fn name(&self) -> &'static str {
        "const-fold"
    }

    fn apply(&self, p: &StructuredProgram) -> Option<StructuredProgram> {
        let mut changed = false;
        let body = fold_block(&p.body, &mut changed);
        changed.then(|| StructuredProgram::new(p.arity, body))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::testutil::assert_equiv;
    use enf_flowchart::ast::Var;
    use enf_flowchart::parser::parse_structured;

    fn folded(src: &str) -> StructuredProgram {
        let p = parse_structured(src).unwrap();
        ConstFold.apply(&p).expect("should fold")
    }

    #[test]
    fn arithmetic_folds() {
        let q = folded("program(0) { y := 2 + 3 * 4; }");
        assert_eq!(q.body, vec![Stmt::Assign(Var::Out, Expr::Const(14))]);
    }

    #[test]
    fn division_by_zero_folds_to_zero() {
        let q = folded("program(0) { y := 7 / 0; }");
        assert_eq!(q.body, vec![Stmt::Assign(Var::Out, Expr::Const(0))]);
    }

    #[test]
    fn if_true_collapses_to_then() {
        let p = parse_structured("program(1) { if 1 == 1 { y := 1; } else { y := x1; } }").unwrap();
        let q = ConstFold.apply(&p).unwrap();
        assert_eq!(q.body, vec![Stmt::Assign(Var::Out, Expr::Const(1))]);
        assert_equiv(&p, &q, 3);
    }

    #[test]
    fn while_false_disappears() {
        let p = parse_structured("program(1) { while 1 == 2 { y := x1; } y := 5; }").unwrap();
        let q = ConstFold.apply(&p).unwrap();
        assert_eq!(q.body, vec![Stmt::Assign(Var::Out, Expr::Const(5))]);
        assert_equiv(&p, &q, 3);
    }

    #[test]
    fn ite_on_decided_selector_collapses() {
        let q = folded("program(1) { y := ite(2 > 1, x1, 99); }");
        assert_eq!(q.body, vec![Stmt::Assign(Var::Out, Expr::x(1))]);
    }

    #[test]
    fn connective_shortcuts() {
        let q = folded("program(1) { if x1 == 0 && 1 == 2 { y := 1; } else { y := 2; } }");
        assert_eq!(q.body, vec![Stmt::Assign(Var::Out, Expr::Const(2))]);
        let q = folded("program(1) { if x1 == 0 || 1 == 1 { y := 1; } else { y := 2; } }");
        assert_eq!(q.body, vec![Stmt::Assign(Var::Out, Expr::Const(1))]);
    }

    #[test]
    fn nothing_to_fold_returns_none() {
        let p = parse_structured("program(2) { y := x1 + x2; }").unwrap();
        assert!(ConstFold.apply(&p).is_none());
    }

    #[test]
    fn unroll_then_fold_linearizes_constant_loops() {
        use crate::transform::unroll::UnrollOnce;
        let p =
            parse_structured("program(1) { r1 := 2; while r1 > 0 { y := y + x1; r1 := r1 - 1; } }")
                .unwrap();
        // Constant propagation is not implemented, so folding alone cannot
        // decide `r1 > 0`; but repeated unroll+fold keeps everything
        // equivalent, which is the property the search relies on.
        let mut q = p.clone();
        for _ in 0..4 {
            if let Some(u) = UnrollOnce.apply(&q) {
                q = u;
            }
            if let Some(f) = ConstFold.apply(&q) {
                q = f;
            }
        }
        assert_equiv(&p, &q, 3);
    }

    #[test]
    fn skip_statements_are_dropped() {
        let q = folded("program(0) { skip; y := 1; skip; }");
        assert_eq!(q.body.len(), 1);
    }
}
