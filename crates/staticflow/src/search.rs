//! Heuristic transform selection.
//!
//! "Whether to apply a transform or not is not necessarily a clearcut
//! decision. In fact the optimal strategy for deciding is not, as the next
//! theorem shows, computable." (Theorem 4.) What *is* computable is
//! measured improvement on a finite validation domain: [`improve`] greedily
//! applies whichever transform most increases the surveillance mechanism's
//! acceptance count, validating functional equivalence at every step, and
//! stops at a local optimum.
//!
//! Example 7's program improves to fully accepting; Example 8's program is
//! left untouched (every transform candidate hurts or is neutral) — the two
//! poles the paper uses to show the decision is program-dependent.

use crate::equiv::equivalent_on;
use crate::transform::all_transforms;
use enf_core::{Grid, IndexSet, InputDomain};
use enf_flowchart::structured::{lower, StructuredProgram};
use enf_surveillance::dynamic::{run_surveillance, SurvConfig};

/// One accepted rewrite step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SearchStep {
    /// The transform applied.
    pub transform: &'static str,
    /// Acceptance count after applying it.
    pub accepted: usize,
}

/// The result of a greedy improvement run.
#[derive(Clone, Debug)]
pub struct SearchResult {
    /// The best program found (functionally equivalent to the input).
    pub best: StructuredProgram,
    /// Acceptance count of the original program's surveillance mechanism.
    pub accepted_before: usize,
    /// Acceptance count of the best program's surveillance mechanism.
    pub accepted_after: usize,
    /// Inputs in the validation grid.
    pub total: usize,
    /// The accepted rewrite steps, in order.
    pub steps: Vec<SearchStep>,
}

impl SearchResult {
    /// Whether the search strictly improved completeness.
    pub fn improved(&self) -> bool {
        self.accepted_after > self.accepted_before
    }
}

/// Counts how many grid inputs the surveillance mechanism accepts for the
/// lowered program.
pub fn acceptance_count(p: &StructuredProgram, allowed: IndexSet, grid: &Grid) -> usize {
    let fc = lower(p).expect("program must lower");
    let cfg = SurvConfig::surveillance(allowed);
    grid.iter_inputs()
        .filter(|a| run_surveillance(&fc, a, &cfg).accepted().is_some())
        .count()
}

/// Greedily improves the surveillance mechanism's completeness by applying
/// functionally-equivalent transforms.
///
/// Each candidate is validated for functional equivalence on the grid
/// before being scored; a candidate that is not equivalent (which would
/// indicate a transform bug) is discarded.
pub fn improve(
    program: &StructuredProgram,
    allowed: IndexSet,
    grid: &Grid,
    max_rounds: usize,
) -> SearchResult {
    let transforms = all_transforms();
    let fuel = 100_000;
    let original = lower(program).expect("program must lower");
    let before = acceptance_count(program, allowed, grid);
    let mut best = program.clone();
    let mut best_score = before;
    let mut steps = Vec::new();
    for _ in 0..max_rounds {
        let mut round_best: Option<(usize, StructuredProgram, &'static str)> = None;
        for t in &transforms {
            let Some(candidate) = t.apply(&best) else {
                continue;
            };
            let Ok(cand_fc) = lower(&candidate) else {
                continue;
            };
            if equivalent_on(&original, &cand_fc, grid, fuel).is_err() {
                // A transform that changes semantics is a bug; skip it
                // defensively rather than ship a wrong mechanism.
                continue;
            }
            let score = acceptance_count(&candidate, allowed, grid);
            if score > best_score
                && round_best
                    .as_ref()
                    .map(|(s, _, _)| score > *s)
                    .unwrap_or(true)
            {
                round_best = Some((score, candidate, t.name()));
            }
        }
        match round_best {
            Some((score, candidate, name)) => {
                best = candidate;
                best_score = score;
                steps.push(SearchStep {
                    transform: name,
                    accepted: score,
                });
            }
            None => break,
        }
    }
    SearchResult {
        best,
        accepted_before: before,
        accepted_after: best_score,
        total: grid.len(),
        steps,
    }
}

/// Like [`improve`], but starting from a flowchart *graph*: the structure
/// is first recovered with [`enf_flowchart::restructure`], so graph-built
/// programs (including instrumented ones) can be optimized too.
pub fn improve_graph(
    fc: &enf_flowchart::graph::Flowchart,
    allowed: IndexSet,
    grid: &Grid,
    max_rounds: usize,
) -> Result<SearchResult, enf_flowchart::restructure::RestructureError> {
    let sp = enf_flowchart::restructure::restructure(fc)?;
    Ok(improve(&sp, allowed, grid, max_rounds))
}

#[cfg(test)]
mod tests {
    use super::*;
    use enf_flowchart::parser::parse_structured;

    #[test]
    fn example7_improves_to_fully_accepting() {
        let p =
            parse_structured("program(2) { if x1 == 1 { r1 := 1; } else { r1 := 2; } y := 1; }")
                .unwrap();
        let grid = Grid::hypercube(2, -2..=2);
        let r = improve(&p, IndexSet::single(2), &grid, 5);
        assert_eq!(r.accepted_before, 0);
        assert_eq!(r.accepted_after, grid.len());
        assert!(r.improved());
        assert!(r.steps.iter().any(|s| s.transform == "if-to-ite"));
    }

    #[test]
    fn example8_is_left_alone() {
        let p =
            parse_structured("program(2) { if x2 == 1 { y := 1; } else { y := x1; } }").unwrap();
        let grid = Grid::hypercube(2, -2..=2);
        let r = improve(&p, IndexSet::single(2), &grid, 5);
        // Surveillance accepts the x2 == 1 column (5 inputs); no transform
        // beats that, so the search keeps the original.
        assert_eq!(r.accepted_before, 5);
        assert_eq!(r.accepted_after, 5);
        assert!(r.steps.is_empty());
        assert_eq!(r.best, p);
    }

    #[test]
    fn fully_allowed_program_needs_no_search() {
        let p = parse_structured("program(1) { y := x1; }").unwrap();
        let grid = Grid::hypercube(1, -2..=2);
        let r = improve(&p, IndexSet::single(1), &grid, 5);
        assert_eq!(r.accepted_before, grid.len());
        assert!(!r.improved());
    }

    #[test]
    fn search_result_is_functionally_equivalent() {
        let p = parse_structured(
            "program(2) {
                if x1 == 1 { r1 := 1; } else { r1 := 2; }
                if x2 == 0 { y := 0; } else { y := x2; }
            }",
        )
        .unwrap();
        let grid = Grid::hypercube(2, -2..=2);
        let r = improve(&p, IndexSet::single(2), &grid, 6);
        let a = lower(&p).unwrap();
        let b = lower(&r.best).unwrap();
        assert!(equivalent_on(&a, &b, &grid, 100_000).is_ok());
        assert!(r.accepted_after >= r.accepted_before);
    }

    #[test]
    fn improve_graph_goes_through_restructuring() {
        // Build Example 7's shape directly as a graph and improve it.
        use enf_flowchart::ast::{Expr, Pred, Var};
        use enf_flowchart::builder::Builder;
        let mut b = Builder::new(2);
        let d = b.decision(Pred::eq(Expr::x(1), Expr::c(1)));
        let a1 = b.assign(Var::Reg(1), Expr::c(1));
        let a2 = b.assign(Var::Reg(1), Expr::c(2));
        let tail = b.assign(Var::Out, Expr::c(1));
        let h = b.halt();
        b.wire_start(d);
        b.wire_cond(d, a1, a2);
        b.wire(a1, tail);
        b.wire(a2, tail);
        b.wire(tail, h);
        let fc = b.finish().unwrap();
        let grid = Grid::hypercube(2, -2..=2);
        let r = improve_graph(&fc, IndexSet::single(2), &grid, 5).unwrap();
        assert_eq!(r.accepted_before, 0);
        assert_eq!(r.accepted_after, grid.len());
    }

    #[test]
    fn instrumented_mechanisms_are_restructurable() {
        // The paper's construction emits reducible graphs: they round-trip
        // through the restructurer, so the transform world is open to them.
        use enf_flowchart::restructure::restructure;
        use enf_flowchart::structured::lower;
        use enf_surveillance::instrument;
        let fc = enf_flowchart::parse("program(2) { if x2 == 0 { y := x1; } else { y := x2; } }")
            .unwrap();
        for timed in [false, true] {
            let inst = instrument(&fc, IndexSet::single(2), timed);
            let sp = restructure(inst.flowchart()).expect("instrumented graph reducible");
            let relowered = lower(&sp).unwrap();
            crate::equiv::equivalent_on(
                inst.flowchart(),
                &relowered,
                &Grid::hypercube(2, -2..=2),
                100_000,
            )
            .expect("round trip changed the mechanism");
        }
    }

    #[test]
    fn acceptance_count_matches_manual_count() {
        let p = parse_structured("program(2) { if x2 == 0 { y := x1; } }").unwrap();
        let grid = Grid::hypercube(2, 0..=2);
        // Accept iff x2 ≠ 0 (the x2 == 0 path reads x1): 6 of 9 inputs.
        assert_eq!(acceptance_count(&p, IndexSet::single(2), &grid), 6);
    }
}
