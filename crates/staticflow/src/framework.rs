//! The generic monotone-framework solver every analysis in this crate
//! runs on.
//!
//! A dataflow analysis is described by a [`DataflowProblem`]: a lattice of
//! facts (given by [`DataflowProblem::bottom`] and the join operation), a
//! direction, boundary facts, and an *edge-sensitive* transfer function
//! [`DataflowProblem::flow`]. The solver ([`solve`]) runs a worklist in
//! reverse-postorder priority to the least fixed point.
//!
//! Termination follows from the standard monotone-framework argument: every
//! node's fact only ever moves up its lattice (joins never shrink a fact),
//! and every lattice used here has finite height — [`IndexSet`]-based taint
//! environments are finite powersets, and the interval domain in
//! [`crate::value`] clamps its bounds to a finite menu. A node is re-queued
//! only when its fact strictly grew, so the solver performs at most
//! `nodes × lattice height` transfer applications.
//!
//! Adding a new analysis means implementing [`DataflowProblem`] — see
//! DESIGN.md §"The monotone framework" for a walkthrough, and
//! [`crate::dataflow`], [`crate::value`] and [`mod@crate::lint`] for the five
//! in-tree instances (may-taint ×2, values, must-taint, liveness).
//!
//! [`IndexSet`]: enf_core::IndexSet

use enf_flowchart::analysis::predecessors;
use enf_flowchart::graph::{Flowchart, NodeId};
use std::collections::BTreeSet;

/// Direction facts propagate in.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Direction {
    /// Facts flow from START toward HALT along successor edges.
    Forward,
    /// Facts flow from HALT toward START along predecessor edges.
    Backward,
}

/// A dataflow analysis the solver can run.
///
/// The solver maintains one fact per node — the fact *at entry* for forward
/// problems, *at exit* (equivalently, the live/backward fact) for backward
/// problems — and propagates along edges:
///
/// * forward: processing node `n` calls [`flow`](Self::flow) once per
///   successor edge and joins each result into the successor's fact;
/// * backward: processing node `n` calls [`flow`](Self::flow) once per
///   *predecessor* edge; the implementation applies the predecessor's
///   transfer to `n`'s fact.
///
/// Requirements for the fixed point to exist and be reached:
///
/// * `join` must be a semilattice join (idempotent, commutative,
///   associative) and return `true` iff the target strictly grew;
/// * `flow` must be monotone in `fact`;
/// * the lattice must have finite height.
pub trait DataflowProblem {
    /// The lattice of per-node facts.
    type Fact: Clone;

    /// Which way facts propagate.
    fn direction(&self) -> Direction {
        Direction::Forward
    }

    /// The least fact, assigned to every node before solving.
    fn bottom(&self, fc: &Flowchart) -> Self::Fact;

    /// Boundary fact seeded (joined) at `n` before solving — typically
    /// `Some` only at START for forward problems and at HALT nodes for
    /// backward ones.
    fn boundary(&self, fc: &Flowchart, n: NodeId) -> Option<Self::Fact>;

    /// Joins `from` into `into`, returning whether `into` changed.
    fn join(&self, into: &mut Self::Fact, from: &Self::Fact) -> bool;

    /// Transfers `fact` (the solver's fact at `n`) along the `edge`-th
    /// outgoing edge to `to` — the `edge`-th successor for forward
    /// problems, the `edge`-th predecessor for backward ones. Returning
    /// `None` declares the edge to contribute nothing (used by
    /// [`crate::value`] to prune statically infeasible branches).
    fn flow(
        &self,
        fc: &Flowchart,
        n: NodeId,
        edge: usize,
        to: NodeId,
        fact: &Self::Fact,
    ) -> Option<Self::Fact>;
}

/// The least fixed point of a [`DataflowProblem`].
#[derive(Clone, Debug)]
pub struct Solution<F> {
    /// The fact per node (index = node id).
    pub facts: Vec<F>,
    /// Transfer applications performed before convergence (a measure of
    /// solver work, reported by the benches).
    pub iterations: usize,
}

impl<F> Solution<F> {
    /// The fact at a node.
    pub fn fact(&self, n: NodeId) -> &F {
        &self.facts[n.0]
    }
}

/// Reverse postorder over the flowchart from START.
///
/// Nodes unreachable from START are appended afterwards in id order, so the
/// returned order always covers the whole node table.
pub fn reverse_postorder(fc: &Flowchart) -> Vec<NodeId> {
    let n = fc.len();
    let mut seen = vec![false; n];
    let mut post: Vec<NodeId> = Vec::with_capacity(n);
    // Iterative DFS keeping an explicit edge cursor per frame.
    let mut stack: Vec<(NodeId, usize)> = vec![(fc.start(), 0)];
    seen[fc.start().0] = true;
    while let Some((node, cursor)) = stack.pop() {
        let succs = fc.succ_list(node);
        if cursor < succs.len() {
            stack.push((node, cursor + 1));
            let next = succs[cursor];
            if !seen[next.0] {
                seen[next.0] = true;
                stack.push((next, 0));
            }
        } else {
            post.push(node);
        }
    }
    post.reverse();
    for (id, &was_seen) in seen.iter().enumerate() {
        if !was_seen {
            post.push(NodeId(id));
        }
    }
    post
}

/// Solves the problem with the default iteration order: reverse postorder
/// for forward problems, its reverse for backward ones.
pub fn solve<P: DataflowProblem>(fc: &Flowchart, problem: &P) -> Solution<P::Fact> {
    let mut order = reverse_postorder(fc);
    if problem.direction() == Direction::Backward {
        order.reverse();
    }
    solve_in_order(fc, problem, &order)
}

/// Solves the problem processing dirty nodes in the priority given by
/// `order` (which must mention every node exactly once).
///
/// The fixed point of a monotone problem is the *least* one and therefore
/// independent of `order`; only the iteration count varies. The framework
/// proptests exercise exactly this invariant with randomly permuted orders.
pub fn solve_in_order<P: DataflowProblem>(
    fc: &Flowchart,
    problem: &P,
    order: &[NodeId],
) -> Solution<P::Fact> {
    let n = fc.len();
    assert_eq!(order.len(), n, "iteration order must cover every node");
    let mut rank = vec![usize::MAX; n];
    for (r, id) in order.iter().enumerate() {
        assert_eq!(rank[id.0], usize::MAX, "duplicate node in iteration order");
        rank[id.0] = r;
    }

    let backward = problem.direction() == Direction::Backward;
    let preds = if backward {
        predecessors(fc)
    } else {
        Vec::new()
    };
    let edges = |id: NodeId| -> Vec<NodeId> {
        if backward {
            preds[id.0].clone()
        } else {
            fc.succ_list(id)
        }
    };

    let mut facts: Vec<P::Fact> = (0..n).map(|_| problem.bottom(fc)).collect();
    // Dirty set keyed by rank so the lowest-priority-number node pops first.
    let mut dirty: BTreeSet<usize> = BTreeSet::new();
    for id in 0..n {
        if let Some(seed) = problem.boundary(fc, NodeId(id)) {
            if problem.join(&mut facts[id], &seed) {
                dirty.insert(rank[id]);
            }
        }
    }

    let mut iterations = 0usize;
    while let Some(&r) = dirty.iter().next() {
        dirty.remove(&r);
        let id = order[r];
        for (edge, to) in edges(id).into_iter().enumerate() {
            iterations += 1;
            // Clone the source fact out so the (disjoint) target slot can
            // be borrowed mutably; facts are small (bitsets / interval
            // vectors) and self-loops alias otherwise.
            let fact = facts[id.0].clone();
            if let Some(out) = problem.flow(fc, id, edge, to, &fact) {
                if problem.join(&mut facts[to.0], &out) {
                    dirty.insert(rank[to.0]);
                }
            }
        }
    }

    Solution { facts, iterations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enf_flowchart::graph::Node;
    use enf_flowchart::parse;

    /// Forward reachability as the simplest possible problem: fact = "can
    /// execution reach this node".
    struct Reach;

    impl DataflowProblem for Reach {
        type Fact = bool;

        fn bottom(&self, _fc: &Flowchart) -> bool {
            false
        }

        fn boundary(&self, fc: &Flowchart, n: NodeId) -> Option<bool> {
            (n == fc.start()).then_some(true)
        }

        fn join(&self, into: &mut bool, from: &bool) -> bool {
            let grew = *from && !*into;
            *into |= *from;
            grew
        }

        fn flow(
            &self,
            _fc: &Flowchart,
            _n: NodeId,
            _edge: usize,
            _to: NodeId,
            fact: &bool,
        ) -> Option<bool> {
            Some(*fact)
        }
    }

    /// Backward "can reach HALT" — exercises the backward direction.
    struct ReachesHalt;

    impl DataflowProblem for ReachesHalt {
        type Fact = bool;

        fn direction(&self) -> Direction {
            Direction::Backward
        }

        fn bottom(&self, _fc: &Flowchart) -> bool {
            false
        }

        fn boundary(&self, fc: &Flowchart, n: NodeId) -> Option<bool> {
            matches!(fc.node(n), Node::Halt).then_some(true)
        }

        fn join(&self, into: &mut bool, from: &bool) -> bool {
            let grew = *from && !*into;
            *into |= *from;
            grew
        }

        fn flow(
            &self,
            _fc: &Flowchart,
            _n: NodeId,
            _edge: usize,
            _to: NodeId,
            fact: &bool,
        ) -> Option<bool> {
            Some(*fact)
        }
    }

    #[test]
    fn reverse_postorder_starts_at_start_and_covers_all() {
        let fc =
            parse("program(1) { if x1 == 0 { y := 1; } else { y := 2; } y := y + 1; }").unwrap();
        let order = reverse_postorder(&fc);
        assert_eq!(order.len(), fc.len());
        assert_eq!(order[0], fc.start());
        let mut sorted: Vec<usize> = order.iter().map(|n| n.0).collect();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..fc.len()).collect::<Vec<_>>());
    }

    #[test]
    fn forward_reachability_matches_graph_reachability() {
        let fc = parse("program(2) { while x1 > 0 { x1 := x1 - 1; } y := x2; }").unwrap();
        let sol = solve(&fc, &Reach);
        let reach = enf_flowchart::analysis::reachable(&fc);
        for (id, _, _) in fc.iter() {
            assert_eq!(sol.facts[id.0], reach.contains(&id), "node {id}");
        }
    }

    #[test]
    fn backward_problem_reaches_start() {
        let fc = parse("program(1) { if x1 == 0 { y := 1; } else { y := 2; } }").unwrap();
        let sol = solve(&fc, &ReachesHalt);
        // Every node of this program can reach HALT.
        assert!(sol.facts.iter().all(|&b| b));
    }

    #[test]
    fn solution_is_order_independent() {
        let fc = parse(
            "program(2) { while x1 > 0 { x1 := x1 - 1; r1 := r1 + 1; } if r1 > 2 { y := 1; } }",
        )
        .unwrap();
        let baseline = solve(&fc, &Reach);
        // Worst-case order: plain id order and fully reversed.
        let ids: Vec<NodeId> = (0..fc.len()).map(NodeId).collect();
        let rev: Vec<NodeId> = ids.iter().rev().copied().collect();
        assert_eq!(solve_in_order(&fc, &Reach, &ids).facts, baseline.facts);
        assert_eq!(solve_in_order(&fc, &Reach, &rev).facts, baseline.facts);
    }

    #[test]
    #[should_panic(expected = "must cover every node")]
    fn short_order_is_rejected() {
        let fc = parse("program(0) { y := 1; }").unwrap();
        solve_in_order(&fc, &Reach, &[fc.start()]);
    }
}
