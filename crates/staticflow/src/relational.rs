//! Relational (self-composition) agreement analysis.
//!
//! The paper's soundness condition for `allow(J)` is a *2-safety*
//! property: `M` is sound iff it is constant on every equivalence class of
//! `I`, i.e. every statement about it quantifies over **pairs** of runs.
//! The taint analyses in [`crate::dataflow`] approximate this one-sidedly,
//! by tracking which inputs may *influence* a value. This module analyses
//! the product program directly: it runs one dataflow pass whose abstract
//! state describes **two** executions of the same flowchart on inputs that
//! agree exactly on `J`, tracking per-variable *disagreement sources* — the
//! set of inputs whose (possible) disagreement between the two runs may
//! make the variable differ.
//!
//! The fact is the same [`TaintEnv`] powerset environment the may-taint
//! analysis uses, but its reading is relational: `x ↦ {i}` means "the two
//! runs' values of `x` may differ, and only because input `i` differs".
//! Seeding every input `i` with `{i}` and checking the halt fact against
//! `J` at the end is exactly the relational statement — sources inside `J`
//! are discharged by the agreement assumption, sources outside it are
//! potential leaks.
//!
//! What makes this strictly sharper than the value-refined may-taint
//! analysis is the *relational expression evaluation* ([`RelVal`]): an
//! expression whose two evaluations provably coincide contributes **no**
//! disagreement even when it reads disagreeing variables. `h - h` is the
//! canonical case: both runs compute 0, so the assignment `y := h - h`
//! transfers the empty source set, and the corpus program `cancelling` is
//! certified. Interval facts from [`crate::value`] feed the same rule: any
//! sub-expression the value analysis pins to a constant evaluates equal in
//! both runs by definition.
//!
//! The program-counter discipline is monotone, exactly as in the
//! surveillance abstraction: once the two runs may take different branches
//! (a decision with non-empty predicate disagreement), the PC fact grows
//! and never shrinks, and every later assignment — and every later HALT —
//! absorbs it. That makes certification *termination-sensitive*: a clean
//! halt fact proves the two runs execute in lockstep all the way, so they
//! release equal values **and** have identical divergence behaviour. This
//! is the invariant `certify(…, Analysis::Relational)` relies on and the
//! differential proptests check against `check_soundness`.

use crate::dataflow::TaintEnv;
use crate::framework::{solve, DataflowProblem, Solution};
use crate::value::{analyze_values, AbsBool, ValueEnv, ValueFacts};
use enf_core::{IndexSet, V};
use enf_flowchart::ast::{Expr, Pred, Var};
use enf_flowchart::graph::{Flowchart, Node, NodeId};

/// The relational abstract value of one expression: either a constant both
/// runs provably compute, or the set of inputs whose disagreement may make
/// the two runs' values differ (empty = the runs agree, value unknown).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RelVal {
    /// Both runs evaluate the expression to exactly this value.
    Const(V),
    /// The runs' values may differ only due to these disagreement sources.
    Sources(IndexSet),
}

impl RelVal {
    /// The disagreement sources (empty for constants).
    pub fn sources(&self) -> IndexSet {
        match self {
            RelVal::Const(_) => IndexSet::empty(),
            RelVal::Sources(s) => *s,
        }
    }

    fn as_const(&self) -> Option<V> {
        match self {
            RelVal::Const(c) => Some(*c),
            RelVal::Sources(_) => None,
        }
    }
}

/// Folds a binary operation on two constants with the interpreter's exact
/// total semantics (wrapping arithmetic, `x / 0 = x % 0 = 0`).
fn fold(e: &Expr, a: V, b: V) -> V {
    match e {
        Expr::Add(..) => a.wrapping_add(b),
        Expr::Sub(..) => a.wrapping_sub(b),
        Expr::Mul(..) => a.wrapping_mul(b),
        Expr::Div(..) => {
            if b == 0 {
                0
            } else {
                a.wrapping_div(b)
            }
        }
        Expr::Mod(..) => {
            if b == 0 {
                0
            } else {
                a.wrapping_rem(b)
            }
        }
        Expr::BOr(..) => a | b,
        Expr::BAnd(..) => a & b,
        _ => unreachable!("fold is only called on binary operators"),
    }
}

/// Relationally evaluates an expression: the two runs' stores are described
/// by `env` (disagreement sources per variable) and, when the node is
/// value-reachable, `values` (the single-run interval facts — sound for
/// *both* runs, so a pinned constant implies agreement).
pub fn rel_eval(env: &TaintEnv, values: Option<&ValueEnv>, e: &Expr) -> RelVal {
    // Interval pinning first: a sub-expression the value analysis proves
    // constant evaluates to that constant in every run, hence in both.
    if let Some(venv) = values {
        if let Some(c) = venv.eval(e).as_const() {
            return RelVal::Const(c);
        }
    }
    match e {
        Expr::Const(c) => RelVal::Const(*c),
        Expr::Var(v) => RelVal::Sources(env.get(*v)),
        Expr::Neg(a) => match rel_eval(env, values, a) {
            RelVal::Const(c) => RelVal::Const(c.wrapping_neg()),
            s => s,
        },
        Expr::Add(a, b) | Expr::BOr(a, b) => binop(env, values, e, a, b),
        Expr::Sub(a, b) | Expr::Mod(a, b) if a == b => {
            // x - x = 0 and x % x = 0 (also for x = 0 under the total
            // semantics) *within each run*, whatever the runs disagree on.
            RelVal::Const(0)
        }
        Expr::Sub(a, b) | Expr::Mod(a, b) => binop(env, values, e, a, b),
        Expr::Mul(a, b) | Expr::BAnd(a, b) => {
            let ra = rel_eval(env, values, a);
            let rb = rel_eval(env, values, b);
            // An annihilator on either side fixes the result in both runs.
            if ra.as_const() == Some(0) || rb.as_const() == Some(0) {
                return RelVal::Const(0);
            }
            combine(e, ra, rb)
        }
        Expr::Div(a, b) => {
            let ra = rel_eval(env, values, a);
            let rb = rel_eval(env, values, b);
            // 0 / x = 0 for every x (including 0) and x / 0 = 0 under the
            // interpreter's total semantics.
            if ra.as_const() == Some(0) || rb.as_const() == Some(0) {
                return RelVal::Const(0);
            }
            combine(e, ra, rb)
        }
        Expr::Ite(p, t, el) => {
            if let Some(venv) = values {
                match venv.eval_pred(p) {
                    AbsBool::True => return rel_eval(env, values, t),
                    AbsBool::False => return rel_eval(env, values, el),
                    AbsBool::Maybe => {}
                }
            }
            let rt = rel_eval(env, values, t);
            let re = rel_eval(env, values, el);
            // Equal constant arms make the condition irrelevant.
            if rt == re {
                if let RelVal::Const(c) = rt {
                    return RelVal::Const(c);
                }
            }
            let mut s = pred_sources(env, values, p);
            s.union_with(&rt.sources());
            s.union_with(&re.sources());
            RelVal::Sources(s)
        }
    }
}

/// Relational transfer of a binary operator without algebraic shortcuts:
/// fold two constants concretely, otherwise union the sources.
fn binop(env: &TaintEnv, values: Option<&ValueEnv>, e: &Expr, a: &Expr, b: &Expr) -> RelVal {
    let ra = rel_eval(env, values, a);
    let rb = rel_eval(env, values, b);
    combine(e, ra, rb)
}

fn combine(e: &Expr, ra: RelVal, rb: RelVal) -> RelVal {
    match (ra.as_const(), rb.as_const()) {
        (Some(x), Some(y)) => RelVal::Const(fold(e, x, y)),
        _ => {
            let mut s = ra.sources();
            s.union_with(&rb.sources());
            RelVal::Sources(s)
        }
    }
}

/// The disagreement sources of a predicate's truth value: empty means both
/// runs provably take the same branch.
pub fn pred_sources(env: &TaintEnv, values: Option<&ValueEnv>, p: &Pred) -> IndexSet {
    if let Some(venv) = values {
        // A value-decided predicate has the same outcome in every run.
        if venv.eval_pred(p) != AbsBool::Maybe {
            return IndexSet::empty();
        }
    }
    match p {
        Pred::True | Pred::False => IndexSet::empty(),
        Pred::Cmp(_, a, b) => {
            if a == b {
                // `x ⋈ x` has a fixed truth value per run, independent of x.
                return IndexSet::empty();
            }
            let mut s = rel_eval(env, values, a).sources();
            s.union_with(&rel_eval(env, values, b).sources());
            s
        }
        Pred::Not(inner) => pred_sources(env, values, inner),
        Pred::And(a, b) | Pred::Or(a, b) => {
            let mut s = pred_sources(env, values, a);
            s.union_with(&pred_sources(env, values, b));
            s
        }
    }
}

/// The self-composition analysis as a framework problem. Value-unreachable
/// nodes and infeasible branch edges transfer nothing, exactly as in
/// [`crate::dataflow::analyze_refined`].
struct RelAgree<'a> {
    values: &'a ValueFacts,
}

impl DataflowProblem for RelAgree<'_> {
    type Fact = TaintEnv;

    fn bottom(&self, fc: &Flowchart) -> TaintEnv {
        TaintEnv::bottom(fc.arity(), fc.max_reg())
    }

    fn boundary(&self, fc: &Flowchart, n: NodeId) -> Option<TaintEnv> {
        // Input i may disagree between the two runs iff i ∉ J; seeding
        // {i} everywhere and subtracting J at the halt check is the same
        // statement (sources only ever accumulate by union).
        (n == fc.start()).then(|| TaintEnv::init(fc.arity(), fc.max_reg()))
    }

    fn join(&self, into: &mut TaintEnv, from: &TaintEnv) -> bool {
        into.join_from(from)
    }

    fn flow(
        &self,
        fc: &Flowchart,
        n: NodeId,
        edge: usize,
        _to: NodeId,
        fact: &TaintEnv,
    ) -> Option<TaintEnv> {
        if !self.values.reachable(n) || !self.values.edge_feasible(fc, n, edge) {
            return None;
        }
        let venv = self.values.env_at[n.0].as_ref();
        let mut env = fact.clone();
        match fc.node(n) {
            Node::Start | Node::Halt => {}
            Node::Assign { var, expr } => {
                // Under possibly-diverged control (non-empty PC sources)
                // the assignment may happen in one run only, so the target
                // absorbs the PC disagreement regardless of the RHS.
                let mut t = rel_eval(&env, venv, expr).sources();
                t.union_with(&env.pc);
                env.set(*var, t);
            }
            Node::Decision { pred } => {
                // Monotone PC: once the runs may split, everything
                // downstream (including which HALT is reached, and whether
                // one is reached at all) may differ.
                let s = pred_sources(&env, venv, pred);
                env.pc.union_with(&s);
            }
            // Policy boxes don't move data. Ignoring declassify's relabel
            // only *over*-approximates disagreement (a relabel can never
            // make two runs' stores differ), which keeps "provably
            // non-interfering" sound.
            Node::SetPolicy { .. } | Node::Declassify { .. } => {}
        }
        Some(env)
    }
}

/// The fixed point of the relational analysis.
#[derive(Clone, Debug)]
pub struct RelFacts {
    /// Entry environment per node (index = node id); variables map to
    /// disagreement sources.
    pub at_entry: Vec<TaintEnv>,
    /// Transfer applications performed before convergence.
    pub iterations: usize,
}

impl RelFacts {
    /// The disagreement sources of the observable behaviour at a HALT:
    /// the released `y` plus the control disagreement that decides whether
    /// this HALT is reached at all.
    pub fn halt_disagreement(&self, halt: NodeId) -> IndexSet {
        self.at_entry[halt.0]
            .get(Var::Out)
            .union(&self.at_entry[halt.0].pc)
    }
}

/// Runs the relational analysis, computing the value facts internally.
pub fn analyze_relational(fc: &Flowchart) -> RelFacts {
    analyze_relational_with(fc, &analyze_values(fc))
}

/// Runs the relational analysis against precomputed value facts.
pub fn analyze_relational_with(fc: &Flowchart, values: &ValueFacts) -> RelFacts {
    let sol: Solution<TaintEnv> = solve(fc, &RelAgree { values });
    RelFacts {
        at_entry: sol.facts,
        iterations: sol.iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::{analyze_refined, PcDiscipline};
    use enf_flowchart::parse;

    fn halts_disagreement(src: &str) -> IndexSet {
        let fc = parse(src).unwrap();
        let facts = analyze_relational(&fc);
        let mut t = IndexSet::empty();
        for h in fc.halts() {
            t.union_with(&facts.halt_disagreement(h));
        }
        t
    }

    #[test]
    fn direct_flow_still_tracked() {
        assert_eq!(
            halts_disagreement("program(2) { y := x1 + x2; }"),
            IndexSet::from_iter([1, 2])
        );
    }

    #[test]
    fn self_cancellation_is_agreement() {
        // The tentpole separating example: y := h - h.
        assert!(halts_disagreement("program(1) { y := x1 - x1; }").is_empty());
        assert!(halts_disagreement("program(1) { y := x1 % x1; }").is_empty());
        assert!(halts_disagreement("program(1) { y := (x1 - x1) * x1; }").is_empty());
        assert!(halts_disagreement("program(1) { y := 0 * x1; }").is_empty());
        assert!(halts_disagreement("program(1) { y := x1 & 0; }").is_empty());
        assert!(halts_disagreement("program(1) { y := 0 / x1; }").is_empty());
    }

    #[test]
    fn self_comparison_predicates_do_not_split_control() {
        // x1 == x1 decides the same way in both runs.
        assert!(
            halts_disagreement("program(1) { if x1 == x1 { y := 1; } else { y := 2; } }")
                .is_empty()
        );
    }

    #[test]
    fn division_by_self_is_not_cancelled() {
        // x / x is 1 for x ≠ 0 but 0 for x = 0 — genuinely input-dependent.
        assert_eq!(
            halts_disagreement("program(1) { y := x1 / x1; }"),
            IndexSet::single(1)
        );
    }

    #[test]
    fn branch_disagreement_is_termination_sensitive() {
        // Once the runs may split, the PC fact reaches every halt.
        assert_eq!(
            halts_disagreement("program(1) { if x1 > 0 { y := 1; } else { y := 2; } }"),
            IndexSet::single(1)
        );
        assert_eq!(
            halts_disagreement("program(1) { while x1 > 0 { x1 := x1 - 1; } y := 0; }"),
            IndexSet::single(1)
        );
    }

    #[test]
    fn interval_pinning_discharges_constant_guards() {
        // The constant_guard shape: value analysis pins r1 = 0, so the
        // decision cannot split the runs and the dead arm contributes
        // nothing.
        assert_eq!(
            halts_disagreement("program(2) { r1 := 0; if r1 == 0 { y := x2; } else { y := x1; } }"),
            IndexSet::single(2)
        );
    }

    #[test]
    fn relational_refines_value_refined_on_random_programs() {
        // The relational halt fact must be a subset of the value-refined
        // may-taint halt fact on every program: rel_eval only removes
        // sources relative to the variable union, everything else is the
        // same transfer.
        use enf_flowchart::generate::{random_flowchart, GenConfig};
        let cfg = GenConfig::default();
        for seed in 0..400 {
            let fc = random_flowchart(seed, &cfg);
            let values = analyze_values(&fc);
            let refined = analyze_refined(&fc, &values);
            let rel = analyze_relational_with(&fc, &values);
            for h in fc.halts() {
                let r = rel.halt_disagreement(h);
                let v = refined.halt_taint(h);
                assert!(
                    r.is_subset(&v),
                    "seed {seed} at {h}: relational {r} ⊄ refined {v}"
                );
            }
        }
    }

    #[test]
    fn monotone_pc_discipline_matches_surveillance_shape() {
        // Sanity: when no cancellation applies the relational facts agree
        // with the refined monotone taint exactly.
        let src = "program(2) { y := x1; if x2 == 0 { y := 0; } }";
        let fc = parse(src).unwrap();
        let values = analyze_values(&fc);
        let rel = analyze_relational_with(&fc, &values);
        let refined = analyze_refined(&fc, &values);
        for h in fc.halts() {
            assert_eq!(rel.halt_disagreement(h), refined.halt_taint(h));
        }
        // And differs from the scoped discipline's termination-insensitive
        // reading on a pure-guard loop.
        let loopy = parse("program(1) { while x1 > 0 { x1 := x1 - 1; } y := 0; }").unwrap();
        let rel = analyze_relational(&loopy);
        let scoped = crate::dataflow::analyze(&loopy, PcDiscipline::Scoped);
        let h = loopy.halts()[0];
        assert!(!rel.halt_disagreement(h).is_empty());
        assert!(scoped.halt_taint(h).is_empty());
    }
}
