//! May-taint dataflow analysis over the flowchart CFG.
//!
//! Two program-counter disciplines, matching the two enforcement styles the
//! paper discusses:
//!
//! * [`PcDiscipline::Monotone`] — the faithful abstraction of the dynamic
//!   surveillance mechanism: like the paper's `C̄`, the PC taint only ever
//!   grows along a path. The resulting facts over-approximate every
//!   dynamic run, so "statically clean" implies "dynamically never
//!   violates" (the certification theorem tested in [`mod@crate::certify`]).
//! * [`PcDiscipline::Scoped`] — Denning & Denning-style certification: a
//!   decision's implicit flow covers exactly the nodes between the
//!   decision and its immediate postdominator (its control-dependence
//!   region). More permissive — it certifies Example 7's program — but
//!   termination- and timing-insensitive, the caveat the paper's
//!   observability postulate is about.
//!
//! Both analyses run as [`crate::framework`] instances ([`analyze`]); the
//! pre-framework hand-rolled worklist is preserved verbatim as
//! [`analyze_reference`] and the workspace proptests keep the two in exact
//! agreement. [`analyze_refined`] is the monotone analysis restricted to
//! the executions the value analysis ([`crate::value`]) cannot rule out:
//! value-unreachable nodes contribute nothing and statically infeasible
//! branch edges propagate no fact — but PC taint still grows at every
//! *reachable* decision (even a constant one), because the dynamic `C̄`
//! does too. That keeps the refinement a strict over-approximation of
//! every dynamic run, which is what `Analysis::ValueRefined` in
//! [`mod@crate::certify`] relies on.

use crate::framework::{solve, DataflowProblem, Solution};
use crate::value::ValueFacts;
use enf_core::IndexSet;
use enf_flowchart::analysis::{decision_targets, PostDominators};
use enf_flowchart::ast::Var;
use enf_flowchart::graph::{Flowchart, Node, NodeId};
use std::collections::HashSet;

/// How implicit (program-counter) flows are scoped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PcDiscipline {
    /// PC taint never shrinks along a path — the paper's `C̄`.
    Monotone,
    /// PC taint of a decision applies only within its control-dependence
    /// region (up to the immediate postdominator).
    Scoped,
}

/// A variable valuation of taints at one program point.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TaintEnv {
    inputs: Vec<IndexSet>,
    regs: Vec<IndexSet>,
    out: IndexSet,
    /// PC taint on entry to the node (monotone discipline only; scoped PC
    /// is computed separately from regions).
    pub pc: IndexSet,
}

impl TaintEnv {
    pub(crate) fn bottom(arity: usize, regs: usize) -> Self {
        TaintEnv {
            inputs: vec![IndexSet::empty(); arity],
            regs: vec![IndexSet::empty(); regs],
            out: IndexSet::empty(),
            pc: IndexSet::empty(),
        }
    }

    pub(crate) fn init(arity: usize, regs: usize) -> Self {
        TaintEnv {
            inputs: (1..=arity).map(IndexSet::single).collect(),
            regs: vec![IndexSet::empty(); regs],
            out: IndexSet::empty(),
            pc: IndexSet::empty(),
        }
    }

    /// The taint of a variable in this environment.
    pub fn get(&self, var: Var) -> IndexSet {
        match var {
            Var::Input(i) => self.inputs[i - 1],
            Var::Reg(j) => self.regs.get(j - 1).copied().unwrap_or_default(),
            Var::Out => self.out,
        }
    }

    pub(crate) fn set(&mut self, var: Var, t: IndexSet) {
        match var {
            Var::Input(i) => self.inputs[i - 1] = t,
            Var::Reg(j) => {
                if j > self.regs.len() {
                    self.regs.resize(j, IndexSet::empty());
                }
                self.regs[j - 1] = t;
            }
            Var::Out => self.out = t,
        }
    }

    pub(crate) fn join_from(&mut self, other: &TaintEnv) -> bool {
        let mut changed = false;
        for (a, b) in self.inputs.iter_mut().zip(&other.inputs) {
            let u = a.union(b);
            if u != *a {
                *a = u;
                changed = true;
            }
        }
        if other.regs.len() > self.regs.len() {
            self.regs.resize(other.regs.len(), IndexSet::empty());
            changed = true;
        }
        for (j, b) in other.regs.iter().enumerate() {
            let u = self.regs[j].union(b);
            if u != self.regs[j] {
                self.regs[j] = u;
                changed = true;
            }
        }
        let u = self.out.union(&other.out);
        if u != self.out {
            self.out = u;
            changed = true;
        }
        let u = self.pc.union(&other.pc);
        if u != self.pc {
            self.pc = u;
            changed = true;
        }
        changed
    }

    /// Pointwise intersection (the *must*-taint meet used by the
    /// `always-violating` lint); registers absent on either side count as
    /// untainted.
    pub(crate) fn meet_from(&mut self, other: &TaintEnv) -> bool {
        let mut changed = false;
        let mut down = |a: &mut IndexSet, b: &IndexSet| {
            let i = a.intersection(b);
            if i != *a {
                *a = i;
                changed = true;
            }
        };
        for (j, a) in self.inputs.iter_mut().enumerate() {
            down(a, &other.inputs[j]);
        }
        for (j, a) in self.regs.iter_mut().enumerate() {
            let b = other.regs.get(j).copied().unwrap_or_default();
            down(a, &b);
        }
        down(&mut self.out, &other.out);
        down(&mut self.pc, &other.pc);
        changed
    }

    pub(crate) fn taint_of_vars(&self, vars: &[Var]) -> IndexSet {
        let mut t = IndexSet::empty();
        for v in vars {
            t.union_with(&self.get(*v));
        }
        t
    }
}

/// The result of the analysis.
#[derive(Clone, Debug)]
pub struct FlowFacts {
    /// Entry environment per node (index = node id).
    pub at_entry: Vec<TaintEnv>,
    /// Scoped PC taint per node (empty sets under the monotone discipline,
    /// where `at_entry[n].pc` carries the PC fact instead).
    pub scoped_pc: Vec<IndexSet>,
    discipline: PcDiscipline,
}

impl FlowFacts {
    /// The effective PC taint at a node under the chosen discipline.
    pub fn pc_at(&self, n: NodeId) -> IndexSet {
        match self.discipline {
            PcDiscipline::Monotone => self.at_entry[n.0].pc,
            PcDiscipline::Scoped => self.scoped_pc[n.0],
        }
    }

    /// The static taint of the released output at a HALT node:
    /// `ȳ ∪ C̄` there.
    pub fn halt_taint(&self, halt: NodeId) -> IndexSet {
        self.at_entry[halt.0].get(Var::Out).union(&self.pc_at(halt))
    }

    /// The discipline the facts were computed under.
    pub fn discipline(&self) -> PcDiscipline {
        self.discipline
    }
}

/// The control-dependence region of a decision: nodes reachable from its
/// successors without passing through its immediate postdominator. When the
/// decision has no immediate postdominator (its branches never rejoin
/// before HALT), the region extends to everything reachable.
fn region(fc: &Flowchart, d: NodeId, ipdom: Option<NodeId>) -> HashSet<NodeId> {
    let mut seen = HashSet::new();
    let (t, e) = decision_targets(fc, d).expect("decision node");
    let mut stack = vec![t, e];
    while let Some(n) = stack.pop() {
        if Some(n) == ipdom || !seen.insert(n) {
            continue;
        }
        for s in fc.succ_list(n) {
            stack.push(s);
        }
    }
    seen
}

/// The control-dependence regions of every decision node.
fn regions(fc: &Flowchart) -> Vec<(NodeId, HashSet<NodeId>)> {
    let pd = PostDominators::compute(fc);
    fc.iter()
        .filter(|(_, node, _)| matches!(node, Node::Decision { .. }))
        .map(|(id, _, _)| (id, region(fc, id, pd.immediate(id))))
        .collect()
}

/// The may-taint analysis as a [`framework`](crate::framework) problem.
///
/// Under [`PcDiscipline::Scoped`] the PC component of the fact is unused;
/// assignments read `scoped_pc` instead, which the outer loop in
/// [`analyze`] grows between solver rounds. With `values` present, edges
/// the value analysis proves infeasible (and every edge out of a
/// value-unreachable node) transfer nothing.
struct MayTaint<'a> {
    discipline: PcDiscipline,
    scoped_pc: &'a [IndexSet],
    values: Option<&'a ValueFacts>,
}

impl DataflowProblem for MayTaint<'_> {
    type Fact = TaintEnv;

    fn bottom(&self, fc: &Flowchart) -> TaintEnv {
        TaintEnv::bottom(fc.arity(), fc.max_reg())
    }

    fn boundary(&self, fc: &Flowchart, n: NodeId) -> Option<TaintEnv> {
        (n == fc.start()).then(|| TaintEnv::init(fc.arity(), fc.max_reg()))
    }

    fn join(&self, into: &mut TaintEnv, from: &TaintEnv) -> bool {
        into.join_from(from)
    }

    fn flow(
        &self,
        fc: &Flowchart,
        n: NodeId,
        edge: usize,
        _to: NodeId,
        fact: &TaintEnv,
    ) -> Option<TaintEnv> {
        if let Some(vf) = self.values {
            if !vf.reachable(n) || !vf.edge_feasible(fc, n, edge) {
                return None;
            }
        }
        let mut env = fact.clone();
        match fc.node(n) {
            Node::Start | Node::Halt => {}
            Node::Assign { var, expr } => {
                let pc_here = match self.discipline {
                    PcDiscipline::Monotone => env.pc,
                    PcDiscipline::Scoped => self.scoped_pc[n.0],
                };
                let t = env.taint_of_vars(&expr.vars()).union(&pc_here);
                env.set(*var, t);
            }
            Node::Decision { pred } => {
                if self.discipline == PcDiscipline::Monotone {
                    let t = env.taint_of_vars(&pred.vars());
                    env.pc.union_with(&t);
                }
            }
            // Policy changes don't move data; these facts only track
            // taints. (Which *policy* governs a halt is the schedule
            // analysis' job — see `crate::schedule`.)
            Node::SetPolicy { .. } => {}
            Node::Declassify { var, from, to } => {
                let t = env.get(*var);
                env.set(*var, t.difference(from).union(to));
            }
        }
        Some(env)
    }
}

/// Runs the env solver and, for the scoped discipline, iterates it against
/// the region-based scoped-PC facts until the pair reaches a joint fixed
/// point. Each round re-solves from ⊥ with the grown `scoped_pc`; since
/// both halves are monotone and start from the same seed, the result is
/// the same least fixed point the incremental [`analyze_reference`]
/// worklist reaches.
fn analyze_with(
    fc: &Flowchart,
    discipline: PcDiscipline,
    values: Option<&ValueFacts>,
) -> FlowFacts {
    let n = fc.len();
    let mut scoped_pc: Vec<IndexSet> = vec![IndexSet::empty(); n];
    if discipline == PcDiscipline::Monotone {
        let sol: Solution<TaintEnv> = solve(
            fc,
            &MayTaint {
                discipline,
                scoped_pc: &scoped_pc,
                values,
            },
        );
        return FlowFacts {
            at_entry: sol.facts,
            scoped_pc,
            discipline,
        };
    }

    let regions = regions(fc);
    loop {
        let sol: Solution<TaintEnv> = solve(
            fc,
            &MayTaint {
                discipline,
                scoped_pc: &scoped_pc,
                values,
            },
        );
        let mut changed = false;
        for (d, nodes) in &regions {
            let pred_vars = match fc.node(*d) {
                Node::Decision { pred } => pred.vars(),
                _ => unreachable!(),
            };
            let t = sol.facts[d.0]
                .taint_of_vars(&pred_vars)
                .union(&scoped_pc[d.0]);
            for m in nodes {
                let u = scoped_pc[m.0].union(&t);
                if u != scoped_pc[m.0] {
                    scoped_pc[m.0] = u;
                    changed = true;
                }
            }
        }
        if !changed {
            return FlowFacts {
                at_entry: sol.facts,
                scoped_pc,
                discipline,
            };
        }
    }
}

/// Runs the analysis to a fixed point.
pub fn analyze(fc: &Flowchart, discipline: PcDiscipline) -> FlowFacts {
    analyze_with(fc, discipline, None)
}

/// The monotone may-taint analysis refined by the value analysis: nodes
/// the value analysis proves unreachable contribute nothing (their entry
/// facts stay ⊥ = untainted) and statically infeasible branch edges
/// propagate no fact. PC taint still grows at every *reachable* decision,
/// constant or not, exactly as the dynamic `C̄` does — so these facts
/// remain an over-approximation of every dynamic run.
pub fn analyze_refined(fc: &Flowchart, values: &ValueFacts) -> FlowFacts {
    analyze_with(fc, PcDiscipline::Monotone, Some(values))
}

/// The pre-framework implementation, preserved verbatim as a regression
/// oracle: the workspace proptests assert [`analyze`] and
/// `analyze_reference` agree exactly on randomized flowcharts.
pub fn analyze_reference(fc: &Flowchart, discipline: PcDiscipline) -> FlowFacts {
    let n = fc.len();
    let regs = fc.max_reg();
    let mut at_entry: Vec<TaintEnv> = vec![TaintEnv::bottom(fc.arity(), regs); n];
    at_entry[fc.start().0] = TaintEnv::init(fc.arity(), regs);

    // Precompute control-dependence regions for the scoped discipline.
    let regions: Vec<(NodeId, HashSet<NodeId>)> = if discipline == PcDiscipline::Scoped {
        regions(fc)
    } else {
        Vec::new()
    };

    let mut scoped_pc: Vec<IndexSet> = vec![IndexSet::empty(); n];
    // Outer loop: scoped PC facts feed the env transfer (assignments pick
    // up the PC) and env facts feed the PC (predicate taints); iterate the
    // pair to a joint fixed point. Everything only grows, so this
    // terminates.
    loop {
        // Inner worklist over the env facts.
        let mut work: Vec<NodeId> = (0..n).map(NodeId).collect();
        while let Some(id) = work.pop() {
            let node = fc.node(id);
            let mut out_env = at_entry[id.0].clone();
            match node {
                Node::Start | Node::Halt => {}
                Node::Assign { var, expr } => {
                    let pc_here = match discipline {
                        PcDiscipline::Monotone => out_env.pc,
                        PcDiscipline::Scoped => scoped_pc[id.0],
                    };
                    let t = out_env.taint_of_vars(&expr.vars()).union(&pc_here);
                    out_env.set(*var, t);
                }
                Node::Decision { pred } => {
                    if discipline == PcDiscipline::Monotone {
                        let t = out_env.taint_of_vars(&pred.vars());
                        out_env.pc.union_with(&t);
                    }
                }
                Node::SetPolicy { .. } => {}
                Node::Declassify { var, from, to } => {
                    let t = out_env.get(*var);
                    out_env.set(*var, t.difference(from).union(to));
                }
            }
            for s in fc.succ_list(id) {
                if at_entry[s.0].join_from(&out_env) {
                    work.push(s);
                }
            }
        }
        if discipline == PcDiscipline::Monotone {
            break;
        }
        // Recompute scoped PC from the (possibly grown) env facts.
        let mut changed = false;
        for (d, nodes) in &regions {
            let pred_vars = match fc.node(*d) {
                Node::Decision { pred } => pred.vars(),
                _ => unreachable!(),
            };
            let t = at_entry[d.0]
                .taint_of_vars(&pred_vars)
                .union(&scoped_pc[d.0]);
            for m in nodes {
                let u = scoped_pc[m.0].union(&t);
                if u != scoped_pc[m.0] {
                    scoped_pc[m.0] = u;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    FlowFacts {
        at_entry,
        scoped_pc,
        discipline,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enf_flowchart::parse;

    fn halts_taint(src: &str, d: PcDiscipline) -> IndexSet {
        let fc = parse(src).unwrap();
        let facts = analyze(&fc, d);
        let mut t = IndexSet::empty();
        for h in fc.halts() {
            t.union_with(&facts.halt_taint(h));
        }
        t
    }

    #[test]
    fn direct_flow_tracked() {
        let t = halts_taint("program(2) { y := x1 + x2; }", PcDiscipline::Monotone);
        assert_eq!(t, IndexSet::from_iter([1, 2]));
    }

    #[test]
    fn constants_untainted() {
        let t = halts_taint("program(2) { y := 7; }", PcDiscipline::Monotone);
        assert!(t.is_empty());
    }

    #[test]
    fn implicit_flow_tracked_under_both_disciplines() {
        let src = "program(1) { if x1 == 0 { y := 0; } else { y := 1; } }";
        assert_eq!(
            halts_taint(src, PcDiscipline::Monotone),
            IndexSet::single(1)
        );
        assert_eq!(halts_taint(src, PcDiscipline::Scoped), IndexSet::single(1));
    }

    #[test]
    fn monotone_pc_persists_past_join_scoped_does_not() {
        // Example 7's shape: the branch on x1 is over before y is set.
        let src = "program(2) { if x1 == 1 { r1 := 1; } else { r1 := 2; } y := 1; }";
        assert_eq!(
            halts_taint(src, PcDiscipline::Monotone),
            IndexSet::single(1),
            "monotone C̄ keeps the branch taint to HALT"
        );
        assert!(
            halts_taint(src, PcDiscipline::Scoped).is_empty(),
            "scoped PC ends at the join point"
        );
    }

    #[test]
    fn scoped_discipline_still_taints_inside_region() {
        // An assignment *inside* the branch picks up the PC taint and
        // carries it out through the data flow.
        let src = "program(2) { if x1 == 1 { r1 := 1; } else { r1 := 2; } y := r1; }";
        let t = halts_taint(src, PcDiscipline::Scoped);
        assert!(t.contains(1), "r1's branch taint must reach y: {t}");
    }

    #[test]
    fn loop_carried_taint_reaches_fixed_point() {
        // r2 picks up x1 only through the loop's data recurrence.
        let src = "program(2) {
            r1 := 3;
            while r1 > 0 { r2 := r2 + x1; r1 := r1 - 1; }
            y := r2;
        }";
        let t = halts_taint(src, PcDiscipline::Scoped);
        assert!(t.contains(1));
    }

    #[test]
    fn loop_guard_taints_body_in_both_disciplines() {
        let src = "program(1) { while x1 > 0 { x1 := x1 - 1; y := y + 1; } }";
        assert!(halts_taint(src, PcDiscipline::Monotone).contains(1));
        assert!(halts_taint(src, PcDiscipline::Scoped).contains(1));
    }

    #[test]
    fn scoped_loop_guard_influence_ends_after_loop() {
        // Assignments after the loop do not pick up the guard's taint.
        let src = "program(2) { while x1 > 0 { x1 := x1 - 1; } y := x2; }";
        let t = halts_taint(src, PcDiscipline::Scoped);
        assert_eq!(t, IndexSet::single(2));
        // Monotone keeps it.
        let t = halts_taint(src, PcDiscipline::Monotone);
        assert_eq!(t, IndexSet::from_iter([1, 2]));
    }

    #[test]
    fn nested_branch_taints_accumulate_in_region() {
        let src = "program(3) {
            if x1 == 0 {
                if x2 == 0 { y := 1; } else { y := 2; }
            } else { y := 3; }
        }";
        let t = halts_taint(src, PcDiscipline::Scoped);
        assert_eq!(t, IndexSet::from_iter([1, 2]));
    }

    #[test]
    fn framework_port_matches_reference_on_examples() {
        // The proptests cover random programs; keep a deterministic spot
        // check in the unit suite too.
        for src in [
            "program(2) { y := x1 + x2; }",
            "program(2) { if x1 == 1 { r1 := 1; } else { r1 := 2; } y := r1; }",
            "program(2) { while x1 > 0 { x1 := x1 - 1; } y := x2; }",
            "program(3) { if x1 == 0 { if x2 == 0 { y := 1; } else { y := 2; } } else { y := 3; } }",
        ] {
            let fc = parse(src).unwrap();
            for d in [PcDiscipline::Monotone, PcDiscipline::Scoped] {
                let new = analyze(&fc, d);
                let old = analyze_reference(&fc, d);
                assert_eq!(new.at_entry, old.at_entry, "{src} under {d:?}");
                assert_eq!(new.scoped_pc, old.scoped_pc, "{src} under {d:?}");
            }
        }
    }

    #[test]
    fn refined_analysis_drops_dead_arm_taint() {
        // The else arm (y := x1) is statically dead: plain monotone taints
        // y with {1, 2}, the refinement with {2} only. The branch on the
        // constant r1 contributes no PC taint either way (r1 is untainted).
        let src = "program(2) { r1 := 0; if r1 == 0 { y := x2; } else { y := x1; } }";
        let fc = parse(src).unwrap();
        let plain = analyze(&fc, PcDiscipline::Monotone);
        let values = crate::value::analyze_values(&fc);
        let refined = analyze_refined(&fc, &values);
        let mut plain_t = IndexSet::empty();
        let mut refined_t = IndexSet::empty();
        for h in fc.halts() {
            plain_t.union_with(&plain.halt_taint(h));
            refined_t.union_with(&refined.halt_taint(h));
        }
        assert_eq!(plain_t, IndexSet::from_iter([1, 2]));
        assert_eq!(refined_t, IndexSet::single(2));
    }

    #[test]
    fn refined_keeps_pc_taint_at_reachable_constant_decisions() {
        // x1 feeds r1; the decision on r1 is constant-true for every run,
        // but the dynamic C̄ still picks up r1's taint there — so must we.
        let src = "program(2) { r1 := x1 - x1; if r1 == 0 { y := 1; } else { y := 2; } }";
        let fc = parse(src).unwrap();
        let values = crate::value::analyze_values(&fc);
        let refined = analyze_refined(&fc, &values);
        let mut t = IndexSet::empty();
        for h in fc.halts() {
            t.union_with(&refined.halt_taint(h));
        }
        assert!(t.contains(1), "constant decision on tainted data: {t}");
    }

    #[test]
    fn static_overapproximates_dynamic_surveillance() {
        // Monotone facts must cover every dynamic run's final taints.
        use enf_core::{Grid, InputDomain};
        use enf_flowchart::generate::{random_flowchart, GenConfig};
        use enf_surveillance::dynamic::{run_surveillance, SurvConfig, SurvOutcome};
        let cfg = GenConfig::default();
        for seed in 400..440 {
            let fc = random_flowchart(seed, &cfg);
            let facts = analyze(&fc, PcDiscipline::Monotone);
            let mut static_halt = IndexSet::empty();
            for h in fc.halts() {
                static_halt.union_with(&facts.halt_taint(h));
            }
            // Dynamic runs: any violation taint must be inside the static
            // halt taint (checking at the HALT site).
            let scfg = SurvConfig::surveillance(IndexSet::empty());
            for a in Grid::hypercube(2, -1..=1).iter_inputs() {
                if let SurvOutcome::Violation { taint, site, .. } = run_surveillance(&fc, &a, &scfg)
                {
                    let covered = facts.halt_taint(site);
                    assert!(
                        taint.is_subset(&covered),
                        "seed {seed}: dynamic {taint} ⊄ static {covered} at {site}"
                    );
                }
            }
        }
    }

    #[test]
    fn refined_overapproximates_dynamic_surveillance() {
        // The value-refined facts must *also* cover every dynamic run.
        use enf_core::{Grid, InputDomain};
        use enf_flowchart::generate::{random_flowchart, GenConfig};
        use enf_surveillance::dynamic::{run_surveillance, SurvConfig, SurvOutcome};
        let cfg = GenConfig::default();
        for seed in 700..740 {
            let fc = random_flowchart(seed, &cfg);
            let values = crate::value::analyze_values(&fc);
            let facts = analyze_refined(&fc, &values);
            let scfg = SurvConfig::surveillance(IndexSet::empty());
            for a in Grid::hypercube(2, -1..=1).iter_inputs() {
                if let SurvOutcome::Violation { taint, site, .. } = run_surveillance(&fc, &a, &scfg)
                {
                    let covered = facts.halt_taint(site);
                    assert!(
                        taint.is_subset(&covered),
                        "seed {seed}: dynamic {taint} ⊄ refined {covered} at {site}"
                    );
                }
            }
        }
    }
}
