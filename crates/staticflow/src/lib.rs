//! Static enforcement: compile-time flow analysis, certification, and the
//! program transformations of Sections 4–5.
//!
//! Section 5: "static information flow analysis techniques can be used to
//! determine the flow of information that will occur at the time a program
//! is executed … Using static techniques to produce programs would result
//! in efficient security enforcement." This crate provides:
//!
//! * [`framework`] — the generic monotone-framework solver (lattice +
//!   transfer functions in, least fixed point out) every analysis in this
//!   crate runs on;
//! * [`dataflow`] — two may-taint analyses over the flowchart CFG:
//!   a *faithful* abstraction of the dynamic surveillance mechanism
//!   (program-counter taint monotone along paths, as the paper's `C̄` is)
//!   and a *scoped* analysis in the style of Denning & Denning where a
//!   branch's implicit flow ends at its immediate postdominator;
//! * [`value`] — a constant-propagation/interval value analysis whose
//!   reachability and branch-feasibility facts refine the taint analysis
//!   ([`dataflow::analyze_refined`]) into the strictly more permissive —
//!   still sound — `Analysis::ValueRefined` certifier;
//! * [`mod@lint`] — the `flowlint` diagnostics pass: structured lints with
//!   node locations and carrier chains, rendered human-readably or as
//!   JSON by `enforce lint`;
//! * [`mod@label`] — the lattice generalization: a label-join dataflow
//!   over any [`enf_core::label::Label`] lattice (the taint analyses are
//!   its two-point instance) and the unwinding-style
//!   [`label::certify_lattice`] pass, under which a high value reaches a
//!   lower sink only through a sanctioned `declassify` box on every
//!   carrying path (`certify::Analysis::LatticeCertified`);
//! * [`mod@certify`] — compile-time certification and the zero-overhead
//!   [`certify::CertifiedMechanism`];
//! * [`mod@schedule`] — the policy-schedule certifier: taint facts paired
//!   with the set of reachable policy states, sound for every `setpolicy`
//!   schedule and honoring `declassify` relabels
//!   (`certify::Analysis::DynamicPolicy`);
//! * [`transform`] — functionally-equivalent rewrites (if-then-else →
//!   data-flow selection, assignment duplication/sinking, loop unrolling,
//!   constant folding) whose effect on mechanism completeness the paper
//!   studies in Examples 7–9;
//! * [`equiv`] — empirical functional-equivalence checking used to validate
//!   every transform;
//! * [`search`] — a heuristic transform-selection pipeline. Theorem 4 shows
//!   no algorithm can pick transforms optimally; the pipeline hill-climbs
//!   on measured completeness instead, and the benches price that search.

#![warn(missing_docs)]

pub mod certify;
pub mod dataflow;
pub mod equiv;
pub mod framework;
pub mod label;
pub mod lint;
pub mod refute;
pub mod relational;
pub mod schedule;
pub mod search;
pub mod transform;
pub mod value;

pub use certify::{certify, Analysis, Certification, CertifiedMechanism};
pub use dataflow::{analyze, analyze_reference, analyze_refined, FlowFacts};
pub use equiv::equivalent_on;
pub use framework::{solve, DataflowProblem, Direction, Solution};
pub use label::{analyze_labels, certify_lattice, LabelEnv, LabelFacts};
pub use lint::{lint, lint_labeled, Lint, LintKind, LintReport};
pub use refute::{refute, verify, LeakWitness, PairDomain, RelationalVerdict};
pub use relational::{analyze_relational, analyze_relational_with, RelFacts};
pub use schedule::{
    analyze_schedules, analyze_schedules_with, certify_dynamic, PolicySet, SchedFact, ScheduleFacts,
};
pub use value::{analyze_values, AbsBool, AbsVal, ValueEnv, ValueFacts};
