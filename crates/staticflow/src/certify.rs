//! Compile-time certification and the zero-overhead static mechanism.
//!
//! "Using static techniques to produce programs would result in efficient
//! security enforcement. Of course, this requires that the security policy
//! be known at compile time." (Section 5.)
//!
//! [`certify`] runs a [`crate::dataflow`] analysis once, at "compile time",
//! and decides whether the program can ever release disallowed
//! information. [`CertifiedMechanism`] then enforces the policy with *no
//! per-step cost*: a certified program runs unmodified; a rejected one is
//! either refused outright or handed to the dynamic surveillance mechanism
//! (the hybrid the paper's compile-time discussion implies).

use crate::dataflow::{analyze, analyze_refined, PcDiscipline};
use crate::relational::analyze_relational;
use crate::value::analyze_values;
use enf_core::{IndexSet, MechOutput, Mechanism, Notice, V};
use enf_flowchart::graph::NodeId;
use enf_flowchart::interp::ExecValue;
use enf_flowchart::program::FlowchartProgram;
use enf_surveillance::mechanism::Surveillance;

/// Which static analysis backs the certification.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Analysis {
    /// Faithful abstraction of dynamic surveillance (monotone `C̄`):
    /// certified ⟹ the dynamic mechanism would never violate.
    Surveillance,
    /// Denning & Denning-style scoping: certified ⟹ the released value is
    /// independent of denied inputs on terminating runs (termination- and
    /// timing-insensitive).
    Scoped,
    /// The surveillance abstraction refined by the value analysis
    /// ([`crate::value`]): statically dead arms contribute no taint and
    /// infeasible branch edges propagate nothing, but PC taint still grows
    /// at every reachable decision exactly as the dynamic `C̄` does.
    /// Strictly more permissive than [`Analysis::Surveillance`] while
    /// keeping its guarantee: certified ⟹ the dynamic mechanism would
    /// never violate.
    ValueRefined,
    /// The self-composition analysis ([`crate::relational`]): per-variable
    /// *agreement* facts for two runs whose inputs agree exactly on `J`,
    /// refined by the interval facts. Certifies programs whose disallowed
    /// inputs provably cancel out (`y := h - h`) that every one-run taint
    /// analysis must reject. Certified ⟹ noninterference w.r.t. `J`:
    /// `J`-equal input pairs execute in lockstep, so they release equal
    /// values and have identical divergence behaviour.
    Relational,
    /// The policy-schedule analysis ([`crate::schedule`]): taint facts
    /// paired with the set of policy states reachable at each point, sound
    /// for **every** schedule of `setpolicy` boxes (slot boxes quantify
    /// over all bindings) and honoring `declassify` relabels. The only
    /// analysis that accepts programs with policy boxes; on policy-free
    /// programs its verdict coincides with [`Analysis::ValueRefined`]. The
    /// `allowed` argument of [`certify`] is the *initial* policy.
    DynamicPolicy,
    /// The lattice certifier ([`crate::label`]): the sanction-gated,
    /// value-refined may-taint analysis under which a `declassify` box
    /// relabels only when the policy's flow relation sanctions the step.
    /// [`certify`] runs it at the fixed-clearance reduction of `allow(J)`
    /// — allowed inputs `Unclassified`, denied inputs `Secret`, clearance
    /// `Unclassified`, no release edges — so on policy-free programs it
    /// coincides with [`Analysis::ValueRefined`], and unlike the other
    /// fixed-policy analyses it analyzes `declassify`/`setpolicy`
    /// programs instead of refusing them. The full intransitive surface
    /// (labels and `~>` edges from a `labels { … }` section) enters
    /// through [`crate::label::certify_lattice`] directly.
    LatticeCertified,
}

impl Analysis {
    /// Every certifier, in presentation order (the order the CLI and the
    /// experiment tables use).
    pub const ALL: [Analysis; 6] = [
        Analysis::Surveillance,
        Analysis::Scoped,
        Analysis::ValueRefined,
        Analysis::Relational,
        Analysis::DynamicPolicy,
        Analysis::LatticeCertified,
    ];

    /// Machine-readable lowercase name, stable across releases — audit
    /// records and cache keys use it.
    pub fn name(self) -> &'static str {
        match self {
            Analysis::Surveillance => "surveillance",
            Analysis::Scoped => "scoped",
            Analysis::ValueRefined => "value_refined",
            Analysis::Relational => "relational",
            Analysis::DynamicPolicy => "dynamic_policy",
            Analysis::LatticeCertified => "lattice",
        }
    }

    /// The static halt fact (`ȳ ∪ C̄`, or its relational reading) per
    /// HALT node under this analysis.
    fn halt_taints(self, fc: &enf_flowchart::graph::Flowchart) -> Vec<(NodeId, IndexSet)> {
        let halts = fc.halts();
        if self == Analysis::Relational {
            let facts = analyze_relational(fc);
            return halts
                .into_iter()
                .map(|h| (h, facts.halt_disagreement(h)))
                .collect();
        }
        let facts = match self {
            Analysis::Surveillance => analyze(fc, PcDiscipline::Monotone),
            Analysis::Scoped => analyze(fc, PcDiscipline::Scoped),
            Analysis::ValueRefined => analyze_refined(fc, &analyze_values(fc)),
            Analysis::Relational | Analysis::DynamicPolicy | Analysis::LatticeCertified => {
                unreachable!("handled by certify")
            }
        };
        halts
            .into_iter()
            .map(|h| (h, facts.halt_taint(h)))
            .collect()
    }
}

/// The verdict of compile-time certification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Certification {
    /// Every HALT's static `ȳ ∪ C̄` is inside `J`: the program may run
    /// unmodified.
    Certified,
    /// Some HALT may release disallowed information.
    Rejected {
        /// The offending static taint (union over failing HALTs).
        taint: IndexSet,
    },
}

impl Certification {
    /// Whether the program was certified.
    pub fn is_certified(&self) -> bool {
        matches!(self, Certification::Certified)
    }

    /// The offending taint of a rejection, `None` when certified.
    pub fn taint(&self) -> Option<IndexSet> {
        match self {
            Certification::Certified => None,
            Certification::Rejected { taint } => Some(*taint),
        }
    }
}

/// Certifies a flowchart against `allow(J)` using the chosen analysis.
///
/// # Examples
///
/// ```
/// use enf_core::IndexSet;
/// use enf_flowchart::parse;
/// use enf_static::certify::{certify, Analysis};
///
/// let fc = parse("program(2) { y := x2; }").unwrap();
/// assert!(certify(&fc, IndexSet::single(2), Analysis::Surveillance).is_certified());
/// assert!(!certify(&fc, IndexSet::single(1), Analysis::Surveillance).is_certified());
/// ```
pub fn certify(
    fc: &enf_flowchart::graph::Flowchart,
    allowed: IndexSet,
    analysis: Analysis,
) -> Certification {
    if analysis == Analysis::DynamicPolicy {
        return crate::schedule::certify_dynamic(fc, allowed);
    }
    if analysis == Analysis::LatticeCertified {
        // The fixed-clearance reduction: J becomes a two-point labeling
        // with no release edges, judged at the public clearance. Routed
        // before the policy-node refusal below — sanction gating and the
        // schedule component make the lattice certifier meaningful on
        // declassify/setpolicy programs.
        use enf_core::label::{Classification, IntransitiveFlow, Level};
        let labeling = Classification::new(
            (1..=fc.arity())
                .map(|i| {
                    if allowed.contains(i) {
                        Level::Unclassified
                    } else {
                        Level::Secret
                    }
                })
                .collect(),
        );
        return crate::label::certify_lattice(
            fc,
            &labeling,
            &IntransitiveFlow::transitive(),
            &Level::Unclassified,
        );
    }
    if fc.has_policy_nodes() {
        // The fixed-policy analyses assume `allow(J)` governs the whole
        // run; a `setpolicy` or `declassify` box voids that assumption, so
        // certifying here could bless a program whose mid-run policy is
        // tighter than `J`. Refuse outright — `Analysis::DynamicPolicy` is
        // the certifier for these programs.
        return Certification::Rejected {
            taint: IndexSet::full(fc.arity()),
        };
    }
    let mut bad = IndexSet::empty();
    for (_, t) in analysis.halt_taints(fc) {
        if !t.is_subset(&allowed) {
            bad.union_with(&t.difference(&allowed));
        }
    }
    if bad.is_empty() {
        Certification::Certified
    } else {
        Certification::Rejected { taint: bad }
    }
}

/// What a rejected program falls back to.
#[derive(Clone, Debug)]
pub enum Fallback {
    /// Refuse every run (the static-only deployment).
    Reject,
    /// Run the dynamic surveillance mechanism instead (hybrid deployment).
    Dynamic,
}

/// The compile-time mechanism: certified programs run at native speed;
/// rejected ones follow the configured fallback.
pub struct CertifiedMechanism {
    program: FlowchartProgram,
    verdict: Certification,
    fallback_mech: Option<Surveillance>,
    notice: Notice,
}

impl CertifiedMechanism {
    /// Notice code for statically rejected programs.
    pub const STATIC_REJECT_CODE: u32 = 200;

    /// Builds the mechanism, running certification once up front.
    pub fn new(
        program: FlowchartProgram,
        allowed: IndexSet,
        analysis: Analysis,
        fallback: Fallback,
    ) -> Self {
        let verdict = certify(program.flowchart(), allowed, analysis);
        let fallback_mech = match (&verdict, &fallback) {
            (Certification::Rejected { .. }, Fallback::Dynamic) => {
                Some(Surveillance::new(program.clone(), allowed))
            }
            _ => None,
        };
        CertifiedMechanism {
            program,
            verdict,
            fallback_mech,
            notice: Notice::new(
                Self::STATIC_REJECT_CODE,
                "statically rejected: possible disallowed flow",
            ),
        }
    }

    /// The compile-time verdict.
    pub fn verdict(&self) -> &Certification {
        &self.verdict
    }

    /// Whether runs execute the unmodified program (zero overhead).
    pub fn is_native(&self) -> bool {
        self.verdict.is_certified()
    }
}

impl Mechanism for CertifiedMechanism {
    type Out = ExecValue;

    fn arity(&self) -> usize {
        use enf_core::Program as _;
        self.program.arity()
    }

    fn run(&self, input: &[V]) -> MechOutput<ExecValue> {
        use enf_core::Program as _;
        match (&self.verdict, &self.fallback_mech) {
            (Certification::Certified, _) => MechOutput::Value(self.program.eval(input)),
            (Certification::Rejected { .. }, Some(dynamic)) => dynamic.run(input),
            (Certification::Rejected { .. }, None) => MechOutput::Violation(self.notice.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enf_core::{
        check_protection, check_soundness, compare, Allow, Grid, InputDomain, MechOrdering,
        Policy as _,
    };
    use enf_flowchart::corpus;
    use enf_flowchart::generate::{random_flowchart, GenConfig};
    use enf_flowchart::parse;

    fn fcp(src: &str) -> FlowchartProgram {
        FlowchartProgram::new(parse(src).unwrap())
    }

    #[test]
    fn clean_program_certified_under_both_analyses() {
        let fc = parse("program(2) { if x2 > 0 { y := x2; } else { y := 0; } }").unwrap();
        for a in [Analysis::Surveillance, Analysis::Scoped] {
            assert!(certify(&fc, IndexSet::single(2), a).is_certified());
        }
    }

    #[test]
    fn rejected_taint_names_the_offenders() {
        let fc = parse("program(3) { y := x1 + x3; }").unwrap();
        match certify(&fc, IndexSet::single(1), Analysis::Surveillance) {
            Certification::Rejected { taint } => assert_eq!(taint, IndexSet::single(3)),
            Certification::Certified => panic!("should reject"),
        }
    }

    #[test]
    fn certified_implies_dynamic_never_violates() {
        // The certification theorem for the surveillance analysis,
        // property-tested on random programs.
        let gen = GenConfig::default();
        let g = Grid::hypercube(2, -1..=1);
        let mut certified_seen = 0;
        for seed in 500..620 {
            let fc = random_flowchart(seed, &gen);
            for j in [IndexSet::single(1), IndexSet::single(2), IndexSet::full(2)] {
                if certify(&fc, j, Analysis::Surveillance).is_certified() {
                    certified_seen += 1;
                    let m = Surveillance::new(FlowchartProgram::new(fc.clone()), j);
                    for a in g.iter_inputs() {
                        assert!(
                            !m.run(&a).is_violation(),
                            "seed {seed}, J = {j}: certified program violated at {a:?}"
                        );
                    }
                }
            }
        }
        assert!(
            certified_seen > 0,
            "generator never produced a certified case"
        );
    }

    #[test]
    fn example7_certified_only_by_scoped_analysis() {
        // The paper's Example 7 motivates recognizing higher-level
        // constructs: the faithful surveillance abstraction rejects, the
        // scoped analysis certifies.
        let pp = corpus::example7();
        assert!(
            !certify(&pp.flowchart, pp.policy.allowed(), Analysis::Surveillance).is_certified()
        );
        assert!(certify(&pp.flowchart, pp.policy.allowed(), Analysis::Scoped).is_certified());
    }

    #[test]
    fn example9_duplication_enables_nothing_statically_but_scoped_rejects_both() {
        // Example 9 under allow(1): every variant may flow x2 to y on the
        // x1 ≠ 0 path, so whole-program certification must reject all of
        // them; the per-path refinement is the dynamic mechanism's job.
        for pp in [corpus::example9(), corpus::example9_duplicated()] {
            for a in [Analysis::Surveillance, Analysis::Scoped] {
                assert!(
                    !certify(&pp.flowchart, pp.policy.allowed(), a).is_certified(),
                    "{} wrongly certified",
                    pp.name
                );
            }
        }
    }

    #[test]
    fn constant_guard_certified_only_by_value_refined() {
        // The separating witness for the value refinement: both value-blind
        // analyses must join the dead `y := x1` arm, the refined one proves
        // it dead.
        let pp = corpus::constant_guard();
        let j = pp.policy.allowed();
        assert!(!certify(&pp.flowchart, j, Analysis::Surveillance).is_certified());
        assert!(!certify(&pp.flowchart, j, Analysis::Scoped).is_certified());
        assert!(certify(&pp.flowchart, j, Analysis::ValueRefined).is_certified());
    }

    #[test]
    fn value_refined_rejects_what_surveillance_would_abort() {
        // ValueRefined must NOT inherit Scoped's permissiveness: on
        // Example 7 the dynamic mechanism violates, so the refined
        // certifier has to reject too.
        let pp = corpus::example7();
        assert!(
            !certify(&pp.flowchart, pp.policy.allowed(), Analysis::ValueRefined).is_certified()
        );
    }

    #[test]
    fn cancelling_certified_only_by_relational() {
        // The separating witness for the relational analysis: every
        // one-run taint analysis (value-refined included) must taint
        // y := x1 - x1 with {1}; the self-composition proves both runs
        // compute 0.
        let pp = corpus::cancelling();
        let j = pp.policy.allowed();
        assert!(!certify(&pp.flowchart, j, Analysis::Surveillance).is_certified());
        assert!(!certify(&pp.flowchart, j, Analysis::Scoped).is_certified());
        assert!(!certify(&pp.flowchart, j, Analysis::ValueRefined).is_certified());
        assert!(certify(&pp.flowchart, j, Analysis::Relational).is_certified());
    }

    #[test]
    fn relational_rejects_the_two_path_leak() {
        let pp = corpus::two_path_leak();
        match certify(&pp.flowchart, pp.policy.allowed(), Analysis::Relational) {
            Certification::Rejected { taint } => assert_eq!(taint, IndexSet::single(1)),
            Certification::Certified => panic!("two_path_leak wrongly certified"),
        }
    }

    #[test]
    fn relational_dominates_value_refined_on_corpus() {
        // The relational analysis only ever removes disagreement sources
        // relative to the value-refined taint, so it keeps every
        // certification.
        for pp in corpus::all() {
            let j = pp.policy.allowed();
            if certify(&pp.flowchart, j, Analysis::ValueRefined).is_certified() {
                assert!(
                    certify(&pp.flowchart, j, Analysis::Relational).is_certified(),
                    "{}: relational analysis lost a certification",
                    pp.name
                );
            }
        }
    }

    #[test]
    fn relational_certified_implies_sound_on_grid() {
        // Certified ⟹ noninterference: exhaustively check soundness of the
        // bare program for every relationally-certified corpus entry.
        use enf_flowchart::program::FlowchartProgram;
        for pp in corpus::all() {
            if certify(&pp.flowchart, pp.policy.allowed(), Analysis::Relational).is_certified() {
                let p = FlowchartProgram::with_fuel(pp.flowchart.clone(), 10_000);
                let g = Grid::hypercube(pp.policy.arity(), -2..=2);
                assert!(
                    check_soundness(&enf_core::Identity::new(&p), &pp.policy, &g, false).is_sound(),
                    "relational certification unsound on {}",
                    pp.name
                );
            }
        }
    }

    #[test]
    fn value_refined_dominates_surveillance_on_corpus() {
        // Whenever the plain surveillance analysis certifies, the refined
        // one must as well (it only ever removes taint).
        for pp in corpus::all() {
            let j = pp.policy.allowed();
            if certify(&pp.flowchart, j, Analysis::Surveillance).is_certified() {
                assert!(
                    certify(&pp.flowchart, j, Analysis::ValueRefined).is_certified(),
                    "{}: refinement lost a certification",
                    pp.name
                );
            }
        }
    }

    #[test]
    fn value_refined_certified_implies_dynamic_never_violates() {
        // The certification theorem carried over to the refined analysis,
        // property-tested on random programs (the workspace proptest
        // repeats this with the parallel engine at every thread count).
        let gen = GenConfig::default();
        let g = Grid::hypercube(2, -2..=2);
        let mut certified_seen = 0;
        for seed in 0..200 {
            let fc = random_flowchart(seed, &gen);
            for j in [IndexSet::single(1), IndexSet::single(2), IndexSet::full(2)] {
                if certify(&fc, j, Analysis::ValueRefined).is_certified() {
                    certified_seen += 1;
                    let m = Surveillance::new(FlowchartProgram::new(fc.clone()), j);
                    for a in g.iter_inputs() {
                        assert!(
                            !m.run(&a).is_violation(),
                            "seed {seed}, J = {j}: refined-certified program violated at {a:?}"
                        );
                    }
                }
            }
        }
        assert!(certified_seen > 0);
    }

    #[test]
    fn lattice_coincides_with_value_refined_on_policy_free_corpus() {
        // The two-point reduction of the lattice certifier is exactly the
        // value-refined analysis when no declassify/setpolicy box fires.
        for pp in corpus::all() {
            if pp.flowchart.has_policy_nodes() {
                continue;
            }
            let j = pp.policy.allowed();
            assert_eq!(
                certify(&pp.flowchart, j, Analysis::LatticeCertified),
                certify(&pp.flowchart, j, Analysis::ValueRefined),
                "{}",
                pp.name
            );
        }
    }

    #[test]
    fn password_release_separates_lattice_from_transitive_analyses() {
        // The headline separation: the intransitive certifier accepts the
        // declared one-bit release, every fixed transitive analysis
        // rejects the program outright.
        let lp = corpus::password_release_labeled();
        assert!(crate::label::certify_lattice(
            &lp.flowchart,
            &lp.classification,
            &lp.flow,
            &enf_core::label::Level::Unclassified
        )
        .is_certified());
        let j = corpus::password_release().policy.allowed();
        for a in [
            Analysis::Surveillance,
            Analysis::Scoped,
            Analysis::ValueRefined,
            Analysis::Relational,
        ] {
            assert!(
                !certify(&lp.flowchart, j, a).is_certified(),
                "{} certified the declassify program",
                a.name()
            );
        }
        // Without the release edge (the plain allow-set reduction), the
        // box is unsanctioned and the lattice certifier rejects too.
        assert!(!certify(&lp.flowchart, j, Analysis::LatticeCertified).is_certified());
    }

    #[test]
    fn native_mechanism_is_sound_and_protective() {
        let p = fcp("program(2) { y := x2 * x2; }");
        let m = CertifiedMechanism::new(
            p.clone(),
            IndexSet::single(2),
            Analysis::Surveillance,
            Fallback::Reject,
        );
        assert!(m.is_native());
        let g = Grid::hypercube(2, -2..=2);
        assert!(check_protection(&m, &p, &g).is_ok());
        assert!(check_soundness(&m, &Allow::new(2, [2]), &g, false).is_sound());
    }

    #[test]
    fn reject_fallback_is_the_plug() {
        let p = fcp("program(2) { y := x1; }");
        let m = CertifiedMechanism::new(
            p,
            IndexSet::single(2),
            Analysis::Surveillance,
            Fallback::Reject,
        );
        assert!(!m.is_native());
        let g = Grid::hypercube(2, -2..=2);
        for a in g.iter_inputs() {
            match m.run(&a) {
                MechOutput::Violation(n) => {
                    assert_eq!(n.code(), CertifiedMechanism::STATIC_REJECT_CODE)
                }
                MechOutput::Value(_) => panic!("rejected program ran"),
            }
        }
    }

    #[test]
    fn dynamic_fallback_matches_surveillance() {
        let pp = corpus::forgetting();
        let p = FlowchartProgram::new(pp.flowchart.clone());
        let hybrid = CertifiedMechanism::new(
            p.clone(),
            pp.policy.allowed(),
            Analysis::Surveillance,
            Fallback::Dynamic,
        );
        let dynamic = Surveillance::new(p, pp.policy.allowed());
        let g = Grid::hypercube(2, -2..=2);
        assert!(!hybrid.is_native());
        let r = compare(&hybrid, &dynamic, &g);
        assert_eq!(r.ordering, MechOrdering::Equal);
    }

    #[test]
    fn static_reject_less_complete_than_dynamic_on_forgetting() {
        // The price of static-only enforcement: the dynamic mechanism
        // accepts the x2 == 0 runs that whole-program certification must
        // give up on.
        let pp = corpus::forgetting();
        let p = FlowchartProgram::new(pp.flowchart.clone());
        let static_only = CertifiedMechanism::new(
            p.clone(),
            pp.policy.allowed(),
            Analysis::Surveillance,
            Fallback::Reject,
        );
        let dynamic = Surveillance::new(p, pp.policy.allowed());
        let g = Grid::hypercube(2, -2..=2);
        let r = compare(&dynamic, &static_only, &g);
        assert_eq!(r.ordering, MechOrdering::FirstMore);
    }

    #[test]
    fn scoped_certification_sound_on_terminating_corpus() {
        // Scoped-certified programs really are policy-respecting on the
        // terminating corpus: run Q natively and check soundness.
        for pp in corpus::all() {
            if certify(&pp.flowchart, pp.policy.allowed(), Analysis::Scoped).is_certified() {
                let p = FlowchartProgram::new(pp.flowchart.clone());
                let m = CertifiedMechanism::new(
                    p,
                    pp.policy.allowed(),
                    Analysis::Scoped,
                    Fallback::Reject,
                );
                let g = Grid::hypercube(pp.policy.arity(), 0..=4);
                assert!(
                    check_soundness(&m, &pp.policy, &g, false).is_sound(),
                    "scoped certification unsound on {}",
                    pp.name
                );
            }
        }
    }
}
