//! `flowlint`: structured static diagnostics over a flowchart program.
//!
//! A rejected certification today is a bare boolean; this pass turns the
//! analyses in this crate into *actionable* findings with node locations
//! and carrier chains:
//!
//! * `taint-leak` — a HALT whose value-refined static taint
//!   ([`crate::dataflow::analyze_refined`]) releases inputs outside the
//!   policy, with the static carrier chain (which assignments and branches
//!   the offending indices travel through) in the same rendering format as
//!   the dynamic [`mod@enf_surveillance::explain`] chains;
//! * `unreachable-node` — nodes no execution reaches, either structurally
//!   (no path from START) or because the value analysis
//!   ([`crate::value`]) proves every path infeasible;
//! * `constant-decision` — reachable decisions that always take the same
//!   branch;
//! * `dead-assignment` — assignments whose target is overwritten or
//!   ignored on every path to HALT (a backward liveness analysis, the one
//!   [`crate::framework`] instance that runs in the
//!   [`Direction::Backward`](crate::framework::Direction) mode);
//! * `always-violating` — HALTs where a *must*-taint analysis (meet over
//!   feasible paths, same transfer as the dynamic mechanism) proves every
//!   run reaching them violates the policy;
//! * `unused-declassify` — a reachable `declassify` box whose variable can
//!   never carry the `from` indices it claims to launder;
//! * `provable-leak` — the program *demonstrably* leaks: the relational
//!   certifier ([`crate::relational`]) rejects and the bounded witness
//!   search ([`mod@crate::refute`]) finds a replay-validated pair of
//!   `J`-agreeing inputs with different released outcomes, rendered as a
//!   two-event carrier chain (one event per run).
//!
//! [`lint`] produces a [`LintReport`] renderable for humans
//! ([`LintReport::render`]) or as JSON ([`LintReport::to_json`]); the
//! `enforce lint` subcommand exposes both. [`lint_labeled`] runs the same
//! pass against a label policy at a clearance, rendering label names into
//! every taint finding and its carrier chain.

use crate::dataflow::{analyze_refined, TaintEnv};
use crate::framework::{reverse_postorder, solve, DataflowProblem, Direction};
use crate::value::{analyze_values, AbsBool, ValueFacts};
use enf_core::label::{Classification, IntransitiveFlow, Level};
use enf_core::IndexSet;
use enf_flowchart::analysis::reachable;
use enf_flowchart::ast::Var;
use enf_flowchart::graph::{Flowchart, Node, NodeId};
use enf_flowchart::pretty::{declassify_to_string, expr_to_string, pred_to_string};
use enf_surveillance::explain::FlowEvent;
use std::collections::BTreeSet;
use std::fmt;

/// The kind of a finding.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum LintKind {
    /// A node no execution reaches.
    UnreachableNode,
    /// A reachable decision that always takes the same branch.
    ConstantDecision,
    /// An assignment whose value is never observed.
    DeadAssignment,
    /// A HALT that every run reaching it violates the policy at.
    AlwaysViolating,
    /// A HALT whose static taint releases inputs outside the policy.
    TaintLeak,
    /// A replay-validated pair of `J`-agreeing runs with different
    /// released outcomes: the program provably leaks.
    ProvableLeak,
    /// A `setpolicy` box that installs the only policy state that can be
    /// active on entry to it — removing the box changes nothing.
    RedundantPolicyChange,
    /// A reachable `declassify` box that can never launder anything: the
    /// may-taint of its variable on entry is already disjoint from the
    /// `from` set, so the relabel removes nothing on any run.
    UnusedDeclassify,
}

impl LintKind {
    /// The stable kebab-case name used in human and JSON output.
    pub fn as_str(&self) -> &'static str {
        match self {
            LintKind::UnreachableNode => "unreachable-node",
            LintKind::ConstantDecision => "constant-decision",
            LintKind::DeadAssignment => "dead-assignment",
            LintKind::AlwaysViolating => "always-violating",
            LintKind::TaintLeak => "taint-leak",
            LintKind::ProvableLeak => "provable-leak",
            LintKind::RedundantPolicyChange => "redundant-policy-change",
            LintKind::UnusedDeclassify => "unused-declassify",
        }
    }
}

impl fmt::Display for LintKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding.
#[derive(Clone, Debug)]
pub struct Lint {
    /// What kind of finding this is.
    pub kind: LintKind,
    /// The node the finding is anchored at.
    pub site: NodeId,
    /// Human-readable, single-line description.
    pub message: String,
    /// Input indices released outside the policy (taint lints only).
    pub offending: IndexSet,
    /// Static carrier chain for `taint-leak`: the assignments and branches
    /// the offending indices travel through, in reverse-postorder
    /// (`step` = RPO position).
    pub chain: Vec<FlowEvent>,
}

/// Every finding for one program under one policy.
#[derive(Clone, Debug)]
pub struct LintReport {
    /// The `allow(J)` policy the taint lints were computed against.
    pub allowed: IndexSet,
    /// The findings, ordered by site then kind.
    pub lints: Vec<Lint>,
}

impl LintReport {
    /// Whether no finding was produced.
    pub fn is_empty(&self) -> bool {
        self.lints.is_empty()
    }

    /// Renders the human-readable report.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        if self.lints.is_empty() {
            let _ = writeln!(s, "flowlint: no findings for allow({})", self.allowed);
            return s;
        }
        let _ = writeln!(
            s,
            "flowlint: {} finding(s) for allow({})",
            self.lints.len(),
            self.allowed
        );
        for l in &self.lints {
            let _ = writeln!(s, "[{}] at {}: {}", l.kind, l.site, l.message);
            if !l.chain.is_empty() {
                let _ = writeln!(s, "  carrier chain:");
                for e in &l.chain {
                    let _ = writeln!(s, "  {}", e.render_line());
                }
            }
        }
        s
    }

    /// Renders the report as JSON (stable key order, no trailing
    /// whitespace).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"allowed\": {},\n", json_set(&self.allowed)));
        s.push_str("  \"lints\": [");
        for (i, l) in self.lints.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    {\n");
            s.push_str(&format!("      \"kind\": \"{}\",\n", l.kind));
            s.push_str(&format!("      \"site\": {},\n", l.site.0));
            s.push_str(&format!(
                "      \"message\": \"{}\",\n",
                json_escape(&l.message)
            ));
            s.push_str(&format!(
                "      \"offending\": {},\n",
                json_set(&l.offending)
            ));
            s.push_str("      \"chain\": [");
            for (j, e) in l.chain.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push_str(&format!(
                    "\n        {{\"step\": {}, \"site\": {}, \"what\": \"{}\", \"before\": {}, \"after\": {}}}",
                    e.step,
                    e.site.0,
                    json_escape(&e.what),
                    json_set(&e.before),
                    json_set(&e.after)
                ));
            }
            if !l.chain.is_empty() {
                s.push_str("\n      ");
            }
            s.push_str("]\n    }");
        }
        if !self.lints.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_set(set: &IndexSet) -> String {
    let items: Vec<String> = set.iter().map(|i| i.to_string()).collect();
    format!("[{}]", items.join(", "))
}

/// A short human description of a node for lint messages.
fn describe(fc: &Flowchart, n: NodeId) -> String {
    match fc.node(n) {
        Node::Start => "START".to_string(),
        Node::Halt => "HALT".to_string(),
        Node::Assign { var, expr } => format!("assignment {var} := {}", expr_to_string(expr)),
        Node::Decision { pred } => format!("decision on {}", pred_to_string(pred)),
        Node::SetPolicy { spec } => format!("setpolicy {spec}"),
        Node::Declassify { var, from, to } => declassify_to_string(*var, from, to),
    }
}

/// Backward liveness: the fact at a node is the set of variables live on
/// entry; HALT nodes seed `{y}` (the released output is always observed).
struct Liveness;

impl DataflowProblem for Liveness {
    type Fact = BTreeSet<Var>;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn bottom(&self, _fc: &Flowchart) -> Self::Fact {
        BTreeSet::new()
    }

    fn boundary(&self, fc: &Flowchart, n: NodeId) -> Option<Self::Fact> {
        matches!(fc.node(n), Node::Halt).then(|| BTreeSet::from([Var::Out]))
    }

    fn join(&self, into: &mut Self::Fact, from: &Self::Fact) -> bool {
        let before = into.len();
        into.extend(from.iter().copied());
        into.len() != before
    }

    /// `to` is the predecessor: the live-in set of `n` is (part of) the
    /// live-out set of `to`; apply `to`'s kill/gen to produce its live-in.
    fn flow(
        &self,
        fc: &Flowchart,
        _n: NodeId,
        _edge: usize,
        to: NodeId,
        fact: &Self::Fact,
    ) -> Option<Self::Fact> {
        let mut live = fact.clone();
        match fc.node(to) {
            Node::Assign { var, expr } => {
                live.remove(var);
                live.extend(expr.vars());
            }
            Node::Decision { pred } => {
                live.extend(pred.vars());
            }
            Node::Start | Node::Halt => {}
            // Policy boxes read labels, not values. A declassified variable
            // still holds its value afterwards, so liveness is unchanged.
            Node::SetPolicy { .. } | Node::Declassify { .. } => {}
        }
        Some(live)
    }
}

/// Must-taint: the meet (pointwise intersection) over all feasible paths
/// of the surveillance transfer. `None` is ⊥ ("no path found yet"); at the
/// fixed point a `Some` fact under-approximates the dynamic taint of
/// *every* run reaching the node, so a guaranteed policy excess at a HALT
/// means every run reaching it violates.
struct MustTaint<'a> {
    values: &'a ValueFacts,
}

impl DataflowProblem for MustTaint<'_> {
    type Fact = Option<TaintEnv>;

    fn bottom(&self, _fc: &Flowchart) -> Self::Fact {
        None
    }

    fn boundary(&self, fc: &Flowchart, n: NodeId) -> Option<Self::Fact> {
        (n == fc.start()).then(|| Some(TaintEnv::init(fc.arity(), fc.max_reg())))
    }

    fn join(&self, into: &mut Self::Fact, from: &Self::Fact) -> bool {
        match (into.as_mut(), from) {
            (_, None) => false,
            (None, Some(f)) => {
                *into = Some(f.clone());
                true
            }
            (Some(i), Some(f)) => i.meet_from(f),
        }
    }

    fn flow(
        &self,
        fc: &Flowchart,
        n: NodeId,
        edge: usize,
        _to: NodeId,
        fact: &Self::Fact,
    ) -> Option<Self::Fact> {
        let env = fact.as_ref()?;
        if !self.values.reachable(n) || !self.values.edge_feasible(fc, n, edge) {
            return None;
        }
        let mut env = env.clone();
        match fc.node(n) {
            Node::Start | Node::Halt => {}
            Node::Assign { var, expr } => {
                let t = env.taint_of_vars(&expr.vars()).union(&env.pc);
                env.set(*var, t);
            }
            Node::Decision { pred } => {
                let t = env.taint_of_vars(&pred.vars());
                env.pc.union_with(&t);
            }
            Node::SetPolicy { .. } => {}
            Node::Declassify { var, from, to } => {
                // The relabel is deterministic, so the must-taint transfer
                // mirrors the dynamic one exactly.
                let t = env.get(*var);
                env.set(*var, t.difference(from).union(to));
            }
        }
        Some(Some(env))
    }
}

/// The static carrier chain: every assignment or branch (in reverse
/// postorder over reachable nodes) whose result taint carries at least one
/// offending index — the static analogue of
/// [`enf_surveillance::explain::Explanation::carrier_chain`], with the RPO
/// position standing in for the execution step.
fn static_chain(
    fc: &Flowchart,
    facts: &crate::dataflow::FlowFacts,
    values: &ValueFacts,
    offending: &IndexSet,
) -> Vec<FlowEvent> {
    let order = reverse_postorder(fc);
    let mut events = Vec::new();
    for (pos, &n) in order.iter().enumerate() {
        if !values.reachable(n) {
            continue;
        }
        let env = &facts.at_entry[n.0];
        let (what, before, after) = match fc.node(n) {
            Node::Assign { var, expr } => {
                let before = env.get(*var);
                let after = env.taint_of_vars(&expr.vars()).union(&env.pc);
                (format!("{var} := {}", expr_to_string(expr)), before, after)
            }
            Node::Decision { pred } => {
                let before = env.pc;
                let after = env.pc.union(&env.taint_of_vars(&pred.vars()));
                (format!("branch on {}", pred_to_string(pred)), before, after)
            }
            _ => continue,
        };
        if after != before && !after.intersection(offending).is_empty() {
            events.push(FlowEvent {
                step: pos as u64,
                site: n,
                what,
                before,
                after,
            });
        }
    }
    events
}

/// Runs every lint over the program under an `allow(J)` policy.
pub fn lint(fc: &Flowchart, allowed: &IndexSet) -> LintReport {
    let values = analyze_values(fc);
    let refined = analyze_refined(fc, &values);
    let graph_reach = reachable(fc);
    let liveness = solve(fc, &Liveness);
    let must = solve(fc, &MustTaint { values: &values });
    // Dynamic-policy programs are judged against the set of reachable
    // policy states, not the initial policy, so HALT leak lints come from
    // the schedule analysis instead of the fixed-policy facts.
    let sched = fc
        .has_policy_nodes()
        .then(|| crate::schedule::analyze_schedules_with(fc, *allowed, &values));

    let mut lints: Vec<Lint> = Vec::new();

    for (n, node, _) in fc.iter() {
        if n == fc.start() {
            continue;
        }
        // unreachable-node: structural or value-analysis unreachability.
        if !values.reachable(n) {
            let why = if graph_reach.contains(&n) {
                "the value analysis proves no execution reaches it"
            } else {
                "no path from START reaches it"
            };
            lints.push(Lint {
                kind: LintKind::UnreachableNode,
                site: n,
                message: format!("{} is unreachable: {}", describe(fc, n), why),
                offending: IndexSet::empty(),
                chain: Vec::new(),
            });
            continue;
        }
        match node {
            // constant-decision: a reachable decision with one feasible arm.
            Node::Decision { pred } => {
                let outcome = values.decision_outcome(fc, n);
                if let Some(AbsBool::True) | Some(AbsBool::False) = outcome {
                    let branch = if outcome == Some(AbsBool::True) {
                        "true"
                    } else {
                        "false"
                    };
                    lints.push(Lint {
                        kind: LintKind::ConstantDecision,
                        site: n,
                        message: format!(
                            "decision on {} always takes the {} branch",
                            pred_to_string(pred),
                            branch
                        ),
                        offending: IndexSet::empty(),
                        chain: Vec::new(),
                    });
                }
            }
            // dead-assignment: the target is not live out of the node.
            Node::Assign { var, expr } => {
                let mut live_out: BTreeSet<Var> = BTreeSet::new();
                for s in fc.succ_list(n) {
                    live_out.extend(liveness.fact(s).iter().copied());
                }
                if !live_out.contains(var) {
                    lints.push(Lint {
                        kind: LintKind::DeadAssignment,
                        site: n,
                        message: format!(
                            "assignment {var} := {} is dead: {var} is overwritten or unused on every path to HALT",
                            expr_to_string(expr)
                        ),
                        offending: IndexSet::empty(),
                        chain: Vec::new(),
                    });
                }
            }
            Node::Halt if sched.is_some() => {
                // Dynamic policies: a release leaks when some reachable
                // policy state at this HALT denies part of its taint.
                let sf = sched.as_ref().expect("guarded by is_some");
                let t = sf.halt_taint(n);
                let policies = sf.policies_at(n);
                if !policies.admits(&t) {
                    let offending = policies.excess(&t);
                    let chain = static_chain(fc, &refined, &values, &offending);
                    lints.push(Lint {
                        kind: LintKind::TaintLeak,
                        site: n,
                        message: format!(
                            "HALT may release inputs {} denied by a reachable policy \
                             state in {} (static taint {})",
                            offending, policies, t
                        ),
                        offending,
                        chain,
                    });
                }
            }
            Node::Halt => {
                // always-violating: the must-taint at this HALT already
                // exceeds the policy, so every run reaching it is aborted.
                if let Some(env) = must.fact(n) {
                    let guaranteed = env.get(Var::Out).union(&env.pc);
                    let excess = guaranteed.difference(allowed);
                    if !excess.is_empty() {
                        lints.push(Lint {
                            kind: LintKind::AlwaysViolating,
                            site: n,
                            message: format!(
                                "every run reaching this HALT carries taint {} and violates allow({})",
                                guaranteed, allowed
                            ),
                            offending: excess,
                            chain: Vec::new(),
                        });
                    }
                }
                // taint-leak: the may-taint at this HALT exceeds the policy.
                let t = refined.halt_taint(n);
                let offending = t.difference(allowed);
                if !offending.is_empty() {
                    let chain = static_chain(fc, &refined, &values, &offending);
                    lints.push(Lint {
                        kind: LintKind::TaintLeak,
                        site: n,
                        message: format!(
                            "HALT may release inputs {} outside allow({}) (static taint {})",
                            offending, allowed, t
                        ),
                        offending,
                        chain,
                    });
                }
            }
            // unused-declassify: the box's variable can never carry a
            // `from` index here (the may-taint over-approximates every
            // run's taint), so the relabel launders nothing.
            Node::Declassify { var, from, .. } => {
                let t = refined.at_entry[n.0].get(*var);
                if t.intersection(from).is_empty() {
                    lints.push(Lint {
                        kind: LintKind::UnusedDeclassify,
                        site: n,
                        message: format!(
                            "{} is unused: {var} can only carry taint {} here, \
                             which never meets the declassified set {}",
                            describe(fc, n),
                            t,
                            from
                        ),
                        offending: IndexSet::empty(),
                        chain: Vec::new(),
                    });
                }
            }
            Node::Start | Node::SetPolicy { .. } => {}
        }
    }

    if let Some(sf) = &sched {
        lints.extend(redundant_policy_changes(fc, sf, &values));
    } else if let Some(l) = provable_leak(fc, allowed) {
        // The relational refuter's observation model is fixed-policy, so
        // the provable-leak lint only applies to policy-free programs.
        lints.push(l);
    }

    lints.sort_by_key(|l| (l.site.0, l.kind));
    LintReport {
        allowed: *allowed,
        lints,
    }
}

/// Renders the labels of an index set as `x1: secret, x3: topsecret`.
fn label_list(classification: &Classification<Level>, set: &IndexSet) -> String {
    set.iter()
        .map(|i| format!("x{i}: {}", classification.label(i).name()))
        .collect::<Vec<_>>()
        .join(", ")
}

/// [`lint`] over a labeled program: the allow-set is the clearance's
/// induced `J_c = { i : label(i) ⇝* c }`, and every taint finding renders
/// the *label names* of its carriers — the message gains the labels of
/// the offending indices, and each carrier-chain event names the labels
/// it carries past that point.
pub fn lint_labeled(
    fc: &Flowchart,
    classification: &Classification<Level>,
    flow: &IntransitiveFlow<Level>,
    clearance: &Level,
) -> LintReport {
    let allowed = classification.readable_allow(flow, clearance);
    let mut report = lint(fc, &allowed);
    for l in &mut report.lints {
        if !l.offending.is_empty() {
            use std::fmt::Write as _;
            let _ = write!(l.message, " [{}]", label_list(classification, &l.offending));
        }
        for e in &mut l.chain {
            let carried = e.after.intersection(&l.offending);
            if !carried.is_empty() {
                use std::fmt::Write as _;
                let _ = write!(e.what, " [{}]", label_list(classification, &carried));
            }
        }
    }
    report
}

/// The `redundant-policy-change` lint: a reachable concrete `setpolicy`
/// box whose installed policy is already the *only* policy state that can
/// be active on entry — for every schedule and every path, the box is a
/// no-op. Slot boxes never fire (their binding is schedule-dependent), and
/// neither does a box reachable under two different states, even if one of
/// them matches.
fn redundant_policy_changes(
    fc: &Flowchart,
    facts: &crate::schedule::ScheduleFacts,
    values: &ValueFacts,
) -> Vec<Lint> {
    use crate::schedule::PolicySet;
    use enf_flowchart::graph::PolicySpec;
    let mut out = Vec::new();
    for (n, node, _) in fc.iter() {
        let Node::SetPolicy {
            spec: PolicySpec::Concrete(s),
        } = node
        else {
            continue;
        };
        if !values.reachable(n) {
            continue;
        }
        if facts.policies_at(n) == &PolicySet::just(*s) {
            out.push(Lint {
                kind: LintKind::RedundantPolicyChange,
                site: n,
                message: format!(
                    "setpolicy allow({s}) is redundant: allow({s}) is already the only policy state on every path here"
                ),
                offending: IndexSet::empty(),
                chain: Vec::new(),
            });
        }
    }
    out
}

/// Search bound for the [`LintKind::ProvableLeak`] lint: the per-input
/// range of the refutation grid and the largest pair count worth
/// enumerating inside a lint pass.
const REFUTE_SPAN: enf_core::V = 2;
const REFUTE_FUEL: u64 = 10_000;
const REFUTE_MAX_PAIRS: usize = 1 << 20;

/// Runs the relational certify-then-refute pipeline and renders a found
/// witness pair as a two-event carrier chain (one event per run). Programs
/// whose pair domain exceeds the search bound produce no finding.
fn provable_leak(fc: &Flowchart, allowed: &IndexSet) -> Option<Lint> {
    use crate::refute::{verify, PairDomain, RelationalVerdict};
    use enf_core::{EvalConfig, Grid, InputDomain};
    use enf_flowchart::interp::{run, ExecConfig, ExecValue, Outcome};

    let grid = Grid::hypercube(fc.arity(), -REFUTE_SPAN..=REFUTE_SPAN);
    let pairs = PairDomain::new(&grid);
    if pairs.len_checked().is_none_or(|n| n > REFUTE_MAX_PAIRS) {
        return None;
    }
    let verdict = verify(fc, *allowed, &grid, REFUTE_FUEL, &EvalConfig::default());
    let RelationalVerdict::Leak { witness } = verdict else {
        return None;
    };
    // The disagreeing denied inputs are the demonstrated leak channel.
    let mut offending = IndexSet::empty();
    for i in 1..=fc.arity() {
        if !allowed.contains(i) && witness.a[i - 1] != witness.b[i - 1] {
            offending.union_with(&IndexSet::single(i));
        }
    }
    // One chain event per run, anchored at the halt that run reaches (a
    // diverging run is anchored at START, where it is still executing).
    let cfg = ExecConfig::with_fuel(REFUTE_FUEL);
    let mut site = fc.start();
    let mut chain = Vec::with_capacity(2);
    for (step, label, inputs, out) in [
        (0, "a", &witness.a, &witness.out_a),
        (1, "b", &witness.b, &witness.out_b),
    ] {
        let (at, what) = match run(fc, inputs, &cfg) {
            Outcome::Halted(h) => (
                h.halt,
                format!("run {label} on {inputs:?} halts with y = {out}"),
            ),
            Outcome::OutOfFuel => (fc.start(), format!("run {label} on {inputs:?} diverges")),
        };
        if matches!(out, ExecValue::Value(_)) {
            site = at;
        }
        chain.push(FlowEvent {
            step,
            site: at,
            what,
            before: IndexSet::empty(),
            after: offending,
        });
    }
    Some(Lint {
        kind: LintKind::ProvableLeak,
        site,
        message: format!(
            "inputs agreeing on allow({allowed}) provably release different outcomes: {} vs {}",
            witness.out_a, witness.out_b
        ),
        offending,
        chain,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use enf_flowchart::parse;

    fn lints_of(src: &str, allowed: IndexSet) -> LintReport {
        lint(&parse(src).unwrap(), &allowed)
    }

    fn kinds(report: &LintReport) -> Vec<LintKind> {
        report.lints.iter().map(|l| l.kind).collect()
    }

    #[test]
    fn clean_program_has_no_findings() {
        let r = lints_of("program(1) { y := x1; }", IndexSet::single(1));
        assert!(r.is_empty(), "{:?}", kinds(&r));
        assert!(r.render().contains("no findings"));
    }

    #[test]
    fn taint_leak_reports_chain_in_rpo_order() {
        let r = lints_of("program(2) { r1 := x1; y := r1; }", IndexSet::single(2));
        // The unconditional leak also fires always-violating at the HALT
        // and is concrete enough for the refuter to prove.
        assert_eq!(
            kinds(&r),
            vec![
                LintKind::AlwaysViolating,
                LintKind::TaintLeak,
                LintKind::ProvableLeak
            ]
        );
        let leak = &r.lints[1];
        assert_eq!(leak.offending, IndexSet::single(1));
        let whats: Vec<&str> = leak.chain.iter().map(|e| e.what.as_str()).collect();
        assert_eq!(whats, vec!["r1 := x1", "y := r1"]);
        assert!(leak.chain[0].step < leak.chain[1].step);
        let rendered = r.render();
        assert!(rendered.contains("carrier chain:"), "{rendered}");
        assert!(rendered.contains("r1 := x1"), "{rendered}");
    }

    #[test]
    fn implicit_leak_chain_names_the_branch() {
        let r = lints_of(
            "program(1) { if x1 == 0 { y := 0; } else { y := 1; } }",
            IndexSet::empty(),
        );
        let leaks: Vec<&Lint> = r
            .lints
            .iter()
            .filter(|l| l.kind == LintKind::TaintLeak)
            .collect();
        assert!(!leaks.is_empty());
        assert!(leaks[0]
            .chain
            .iter()
            .any(|e| e.what.contains("branch on x1 == 0")));
    }

    #[test]
    fn constant_guard_yields_constant_decision_and_unreachable() {
        let r = lints_of(
            "program(2) { r1 := 0; if r1 == 0 { y := x2; } else { y := x1; } }",
            IndexSet::from_iter([1, 2]),
        );
        assert!(kinds(&r).contains(&LintKind::ConstantDecision), "{r:?}");
        assert!(kinds(&r).contains(&LintKind::UnreachableNode), "{r:?}");
        // The dead arm must not produce a taint leak: policy allows both
        // inputs anyway here, so no leak regardless; the refined dataflow
        // test covers taint exclusion.
        assert!(!kinds(&r).contains(&LintKind::TaintLeak));
    }

    #[test]
    fn dead_assignment_found_by_liveness() {
        let r = lints_of("program(1) { r1 := x1; y := 1; }", IndexSet::single(1));
        let dead: Vec<&Lint> = r
            .lints
            .iter()
            .filter(|l| l.kind == LintKind::DeadAssignment)
            .collect();
        assert_eq!(dead.len(), 1, "{r:?}");
        assert!(dead[0].message.contains("r1 :="), "{}", dead[0].message);
    }

    #[test]
    fn overwritten_output_is_dead() {
        let r = lints_of("program(1) { y := x1; y := 0; }", IndexSet::empty());
        let dead: Vec<&Lint> = r
            .lints
            .iter()
            .filter(|l| l.kind == LintKind::DeadAssignment)
            .collect();
        assert_eq!(dead.len(), 1);
        assert!(dead[0].message.contains("y := x1"));
    }

    #[test]
    fn always_violating_when_every_path_is_tainted() {
        let r = lints_of(
            "program(1) { if x1 == 0 { y := 1; } else { y := 2; } }",
            IndexSet::empty(),
        );
        assert!(kinds(&r).contains(&LintKind::AlwaysViolating), "{r:?}");
        // Allowing input 1 clears it.
        let ok = lints_of(
            "program(1) { if x1 == 0 { y := 1; } else { y := 2; } }",
            IndexSet::single(1),
        );
        assert!(!kinds(&ok).contains(&LintKind::AlwaysViolating), "{ok:?}");
    }

    #[test]
    fn may_leak_without_must_violation_is_not_always_violating() {
        // Only the x2 == 0 path leaks x1; the meet over paths is clean.
        let r = lints_of(
            "program(2) { if x2 == 0 { y := x1; } else { y := 0; } }",
            IndexSet::single(2),
        );
        assert!(kinds(&r).contains(&LintKind::TaintLeak), "{r:?}");
        assert!(!kinds(&r).contains(&LintKind::AlwaysViolating), "{r:?}");
    }

    #[test]
    fn json_output_is_well_formed_enough() {
        let r = lints_of("program(2) { r1 := x1; y := r1; }", IndexSet::single(2));
        let json = r.to_json();
        assert!(json.starts_with("{\n"));
        assert!(json.ends_with("}\n"));
        assert!(json.contains("\"kind\": \"taint-leak\""));
        assert!(json.contains("\"offending\": [1]"));
        assert!(json.contains("\"what\": \"r1 := x1\""));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces:\n{json}"
        );
    }

    #[test]
    fn json_escapes_control_and_quote_characters() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn provable_leak_renders_the_witness_pair() {
        let r = lints_of(
            "program(2) { if x1 > 0 { y := 1; } else { y := 2; } }",
            IndexSet::single(2),
        );
        let leaks: Vec<&Lint> = r
            .lints
            .iter()
            .filter(|l| l.kind == LintKind::ProvableLeak)
            .collect();
        assert_eq!(leaks.len(), 1, "{r:?}");
        let l = leaks[0];
        assert_eq!(l.offending, IndexSet::single(1));
        assert_eq!(l.chain.len(), 2);
        assert!(l.chain[0].what.starts_with("run a on"), "{:?}", l.chain);
        assert!(l.chain[1].what.starts_with("run b on"), "{:?}", l.chain);
        let rendered = r.render();
        assert!(rendered.contains("provable-leak"), "{rendered}");
        assert!(
            rendered.contains("provably release different outcomes"),
            "{rendered}"
        );
    }

    #[test]
    fn provable_leak_absent_when_relational_certifies() {
        // cancelling: rejected by every one-run analysis, certified
        // relationally — taint lints may fire elsewhere but no leak proof
        // must be claimed.
        let r = lints_of("program(1) { y := x1 - x1; }", IndexSet::empty());
        assert!(!kinds(&r).contains(&LintKind::ProvableLeak), "{r:?}");
    }

    #[test]
    fn provable_leak_absent_when_no_witness_on_grid() {
        // Rejected statically but constant on the searched [-2, 2] grid.
        let r = lints_of("program(1) { y := x1 / 3; }", IndexSet::empty());
        assert!(kinds(&r).contains(&LintKind::TaintLeak), "{r:?}");
        assert!(!kinds(&r).contains(&LintKind::ProvableLeak), "{r:?}");
    }

    #[test]
    fn provable_leak_reports_divergence_difference() {
        let r = lints_of(
            "program(1) { while x1 > 0 { r1 := r1 + 1; } y := 0; }",
            IndexSet::empty(),
        );
        let leaks: Vec<&Lint> = r
            .lints
            .iter()
            .filter(|l| l.kind == LintKind::ProvableLeak)
            .collect();
        assert_eq!(leaks.len(), 1, "{r:?}");
        assert!(
            leaks[0].chain.iter().any(|e| e.what.contains("diverges")),
            "{:?}",
            leaks[0].chain
        );
    }

    #[test]
    fn redundant_policy_change_flags_the_noop_box() {
        // The second setpolicy re-installs the state the first one already
        // made the only possibility.
        let r = lints_of(
            "program(1) { setpolicy allow(1); r1 := x1; setpolicy allow(1); y := r1; }",
            IndexSet::empty(),
        );
        let redundant: Vec<&Lint> = r
            .lints
            .iter()
            .filter(|l| l.kind == LintKind::RedundantPolicyChange)
            .collect();
        assert_eq!(redundant.len(), 1, "{r:?}");
        assert!(
            redundant[0].message.contains("redundant"),
            "{}",
            redundant[0].message
        );
    }

    #[test]
    fn initial_policy_makes_the_first_box_redundant() {
        // With the lint's allowed set as the initial policy, a setpolicy
        // re-installing it is a no-op too.
        let r = lints_of(
            "program(1) { setpolicy allow(1); y := x1; }",
            IndexSet::single(1),
        );
        assert!(
            kinds(&r).contains(&LintKind::RedundantPolicyChange),
            "{r:?}"
        );
    }

    #[test]
    fn policy_change_not_redundant_when_states_differ() {
        let programs = [
            // Actually changes the policy.
            "program(1) { setpolicy allow(1); y := x1; setpolicy allow(); }",
            // Reachable under two states (initial allow() on the else path).
            "program(2) { if x2 == 0 { setpolicy allow(1); } setpolicy allow(1); y := 0; }",
        ];
        for src in programs {
            let r = lints_of(src, IndexSet::empty());
            let redundant = r
                .lints
                .iter()
                .filter(|l| l.kind == LintKind::RedundantPolicyChange)
                .count();
            // The first program's boxes both change state; the second's
            // inner box is reachable under {allow(), allow(1)}.
            assert_eq!(redundant, 0, "{src}: {r:?}");
        }
    }

    #[test]
    fn slot_boxes_are_never_redundant() {
        let r = lints_of(
            "program(1) { setpolicy p1; y := 0; setpolicy p1; }",
            IndexSet::empty(),
        );
        assert!(
            !kinds(&r).contains(&LintKind::RedundantPolicyChange),
            "{r:?}"
        );
    }

    #[test]
    fn unused_declassify_flags_the_pointless_box() {
        // r1 only ever carries x1, but the box claims to launder x2.
        let r = lints_of(
            "program(2) { r1 := x1; declassify(r1: 2 ~>); y := r1; }",
            IndexSet::full(2),
        );
        let unused: Vec<&Lint> = r
            .lints
            .iter()
            .filter(|l| l.kind == LintKind::UnusedDeclassify)
            .collect();
        assert_eq!(unused.len(), 1, "{r:?}");
        assert!(
            unused[0].message.contains("never meets"),
            "{}",
            unused[0].message
        );
        // A box that can launder is not flagged.
        let ok = lints_of(
            "program(2) { r1 := x1; declassify(r1: 1 ~>); y := r1; }",
            IndexSet::full(2),
        );
        assert!(!kinds(&ok).contains(&LintKind::UnusedDeclassify), "{ok:?}");
    }

    #[test]
    fn unused_declassify_respects_value_refinement() {
        // The x1-carrying arm is provably dead, so the box never sees
        // taint {1} and is flagged.
        let r = lints_of(
            "program(2) { r1 := 0; if r1 == 0 { r2 := x2; } else { r2 := x1; } \
             declassify(r2: 1 ~>); y := r2; }",
            IndexSet::full(2),
        );
        assert!(kinds(&r).contains(&LintKind::UnusedDeclassify), "{r:?}");
    }

    #[test]
    fn labeled_lint_renders_label_names() {
        use enf_core::label::{Classification, IntransitiveFlow, Level};
        let fc = parse("program(2) { r1 := x1; y := r1 + x2; }").unwrap();
        let c = Classification::new(vec![Level::Secret, Level::Unclassified]);
        let r = lint_labeled(
            &fc,
            &c,
            &IntransitiveFlow::transitive(),
            &Level::Unclassified,
        );
        // The induced allow at the bottom clearance is {2}; x1 leaks.
        assert_eq!(r.allowed, IndexSet::single(2));
        let leak = r
            .lints
            .iter()
            .find(|l| l.kind == LintKind::TaintLeak)
            .expect("taint leak");
        assert!(leak.message.contains("x1: secret"), "{}", leak.message);
        assert!(
            leak.chain.iter().any(|e| e.what.contains("[x1: secret]")),
            "{:?}",
            leak.chain
        );
        // A clearance above every label induces the full allow: no leak.
        let clean = lint_labeled(&fc, &c, &IntransitiveFlow::transitive(), &Level::Secret);
        assert!(!kinds(&clean).contains(&LintKind::TaintLeak), "{clean:?}");
    }

    #[test]
    fn labeled_lint_honors_release_edges() {
        use enf_core::label::Level;
        let lp = enf_flowchart::corpus::password_release_labeled();
        let r = lint_labeled(
            &lp.flowchart,
            &lp.classification,
            &lp.flow,
            &Level::Unclassified,
        );
        // The edge closes the induced allow over secret ~> unclassified,
        // so the fixed-policy taint lints see allow(1, 2) and stay quiet.
        assert_eq!(r.allowed, IndexSet::full(2));
        assert!(!kinds(&r).contains(&LintKind::TaintLeak), "{r:?}");
    }

    #[test]
    fn always_violating_agrees_with_exhaustive_runs() {
        // On random programs: if the lint fires for every reachable HALT,
        // then no input in the grid is accepted by dynamic surveillance.
        use enf_core::{Grid, InputDomain};
        use enf_flowchart::generate::{random_flowchart, GenConfig};
        use enf_surveillance::dynamic::{run_surveillance, SurvConfig, SurvOutcome};
        let gen = GenConfig::default();
        for seed in 100..160u64 {
            let fc = random_flowchart(seed, &gen);
            let allowed = IndexSet::single(1);
            let report = lint(&fc, &allowed);
            let values = analyze_values(&fc);
            let halts: Vec<NodeId> = fc
                .halts()
                .into_iter()
                .filter(|h| values.reachable(*h))
                .collect();
            let violating: Vec<NodeId> = report
                .lints
                .iter()
                .filter(|l| l.kind == LintKind::AlwaysViolating)
                .map(|l| l.site)
                .collect();
            if halts.is_empty() || violating.len() != halts.len() {
                continue;
            }
            let cfg = SurvConfig::surveillance(allowed);
            for a in Grid::hypercube(2, -2..=2).iter_inputs() {
                let out = run_surveillance(&fc, &a, &cfg);
                assert!(
                    !matches!(out, SurvOutcome::Accepted { .. }),
                    "seed {seed}: always-violating program accepted {a:?}"
                );
            }
        }
    }
}
