//! Very static enforcement of *dynamic* policies: the policy-schedule
//! dataflow certifier.
//!
//! A program with `setpolicy` and `declassify` boxes is governed by a
//! *policy schedule* (see [`enf_core::schedule`]): the active `allow(J)`
//! changes mid-run, and slot boxes (`setpolicy p1`) take their binding from
//! the environment. This analysis certifies such programs **for every
//! schedule at once** by pairing the may-taint environment with the set of
//! policy states that may be active at each program point:
//!
//! * the abstract state is `(TaintEnv, PolicySet)` — the usual monotone-`C̄`
//!   taint facts (refined by the value analysis exactly as
//!   [`crate::dataflow::analyze_refined`]) together with the set of
//!   `allow(J)` points reachable at the node;
//! * a concrete `setpolicy allow(…)` collapses the policy set to a
//!   singleton; a *slot* box (`setpolicy p1`) collapses it to
//!   [`PolicySet::Any`], because the analysis must certify for every
//!   possible binding;
//! * `declassify(v: A ~> B)` relabels `v̄ ← (v̄ \ A) ∪ B`, mirroring the
//!   dynamic monitor's sanctioned release;
//! * a HALT certifies iff its taint `ȳ ∪ C̄` is inside **every** policy
//!   state that can be active there (under `Any`, only the empty taint
//!   passes).
//!
//! On a policy-free program the policy set stays `{initial}` everywhere and
//! the verdict degenerates to `Analysis::ValueRefined` exactly — the
//! workspace proptests pin this. Certified programs are validated against
//! the bounded-schedule oracle [`enf_core::check_soundness_scheduled`],
//! which quantifies over every slot binding.

use crate::dataflow::TaintEnv;
use crate::framework::{solve, DataflowProblem, Solution};
use crate::value::{analyze_values, ValueFacts};
use enf_core::IndexSet;
use enf_flowchart::graph::{Flowchart, Node, NodeId, PolicySpec};
use std::fmt;

/// The set of policy states that may be active at a program point.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PolicySet {
    /// Exactly these `allow(J)` points (sorted, deduplicated). Empty means
    /// "no execution reaches here" (the lattice ⊥).
    These(Vec<IndexSet>),
    /// Any policy at all — some schedule-bound slot box dominates this
    /// point, so every `allow(J)` is possible (the lattice ⊤).
    Any,
}

impl PolicySet {
    /// The bottom element: no reachable policy state.
    pub fn none() -> Self {
        PolicySet::These(Vec::new())
    }

    /// The singleton set.
    pub fn just(p: IndexSet) -> Self {
        PolicySet::These(vec![p])
    }

    /// Whether every policy is possible.
    pub fn is_any(&self) -> bool {
        matches!(self, PolicySet::Any)
    }

    /// The concrete states, if bounded.
    pub fn states(&self) -> Option<&[IndexSet]> {
        match self {
            PolicySet::These(ps) => Some(ps),
            PolicySet::Any => None,
        }
    }

    /// Joins `from` into `self`, returning whether `self` grew.
    fn join_from(&mut self, from: &PolicySet) -> bool {
        match (&mut *self, from) {
            (PolicySet::Any, _) => false,
            (_, PolicySet::Any) => {
                *self = PolicySet::Any;
                true
            }
            (PolicySet::These(into), PolicySet::These(ps)) => {
                let before = into.len();
                for p in ps {
                    if let Err(at) = into.binary_search(p) {
                        into.insert(at, *p);
                    }
                }
                into.len() != before
            }
        }
    }

    /// Whether the taint `t` is inside every possible policy state. With no
    /// reachable state the check is vacuous; under [`PolicySet::Any`] only
    /// the empty taint passes.
    pub fn admits(&self, t: &IndexSet) -> bool {
        match self {
            PolicySet::Any => t.is_empty(),
            PolicySet::These(ps) => ps.iter().all(|p| t.is_subset(p)),
        }
    }

    /// The union of `t \ P` over every failing policy state (everything
    /// under `Any`): the offending indices reported on rejection.
    pub fn excess(&self, t: &IndexSet) -> IndexSet {
        match self {
            PolicySet::Any => *t,
            PolicySet::These(ps) => {
                let mut bad = IndexSet::empty();
                for p in ps {
                    bad.union_with(&t.difference(p));
                }
                bad
            }
        }
    }
}

impl fmt::Display for PolicySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicySet::Any => f.write_str("any"),
            PolicySet::These(ps) => {
                f.write_str("{")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "allow({p})")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// The abstract state at one program point: may-taint facts paired with the
/// reachable policy states.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SchedFact {
    /// The taint environment (monotone `C̄` discipline).
    pub env: TaintEnv,
    /// The policy states that may be active on entry.
    pub policies: PolicySet,
}

/// The schedule analysis as a framework problem: the product of the
/// value-refined may-taint transfer and the policy-state transfer.
struct ScheduleProblem<'a> {
    initial: IndexSet,
    values: &'a ValueFacts,
}

impl DataflowProblem for ScheduleProblem<'_> {
    type Fact = SchedFact;

    fn bottom(&self, fc: &Flowchart) -> SchedFact {
        SchedFact {
            env: TaintEnv::bottom(fc.arity(), fc.max_reg()),
            policies: PolicySet::none(),
        }
    }

    fn boundary(&self, fc: &Flowchart, n: NodeId) -> Option<SchedFact> {
        (n == fc.start()).then(|| SchedFact {
            env: TaintEnv::init(fc.arity(), fc.max_reg()),
            policies: PolicySet::just(self.initial),
        })
    }

    fn join(&self, into: &mut SchedFact, from: &SchedFact) -> bool {
        let e = into.env.join_from(&from.env);
        let p = into.policies.join_from(&from.policies);
        e || p
    }

    fn flow(
        &self,
        fc: &Flowchart,
        n: NodeId,
        edge: usize,
        _to: NodeId,
        fact: &SchedFact,
    ) -> Option<SchedFact> {
        if !self.values.reachable(n) || !self.values.edge_feasible(fc, n, edge) {
            return None;
        }
        let mut out = fact.clone();
        match fc.node(n) {
            Node::Start | Node::Halt => {}
            Node::Assign { var, expr } => {
                let t = out.env.taint_of_vars(&expr.vars()).union(&out.env.pc);
                out.env.set(*var, t);
            }
            Node::Decision { pred } => {
                let t = out.env.taint_of_vars(&pred.vars());
                out.env.pc.union_with(&t);
            }
            Node::SetPolicy { spec } => {
                out.policies = match spec {
                    PolicySpec::Concrete(s) => PolicySet::just(*s),
                    PolicySpec::Slot(_) => PolicySet::Any,
                };
            }
            Node::Declassify { var, from, to } => {
                let t = out.env.get(*var);
                out.env.set(*var, t.difference(from).union(to));
            }
        }
        Some(out)
    }
}

/// The fixed point of the schedule analysis.
#[derive(Clone, Debug)]
pub struct ScheduleFacts {
    /// The abstract state on entry to each node (index = node id).
    pub at_entry: Vec<SchedFact>,
    /// Transfer applications performed before convergence.
    pub iterations: usize,
}

impl ScheduleFacts {
    /// The policy states that may be active on entry to a node.
    pub fn policies_at(&self, n: NodeId) -> &PolicySet {
        &self.at_entry[n.0].policies
    }

    /// The static taint of the released output at a HALT: `ȳ ∪ C̄` there.
    pub fn halt_taint(&self, halt: NodeId) -> IndexSet {
        let f = &self.at_entry[halt.0];
        f.env.get(enf_flowchart::ast::Var::Out).union(&f.env.pc)
    }
}

/// Runs the schedule analysis from the initial policy `allow(initial)`,
/// computing the value facts internally.
pub fn analyze_schedules(fc: &Flowchart, initial: IndexSet) -> ScheduleFacts {
    analyze_schedules_with(fc, initial, &analyze_values(fc))
}

/// Runs the schedule analysis against precomputed value facts.
pub fn analyze_schedules_with(
    fc: &Flowchart,
    initial: IndexSet,
    values: &ValueFacts,
) -> ScheduleFacts {
    let sol: Solution<SchedFact> = solve(fc, &ScheduleProblem { initial, values });
    ScheduleFacts {
        at_entry: sol.facts,
        iterations: sol.iterations,
    }
}

/// Certifies the program for **every** policy schedule starting from
/// `allow(initial)`: each HALT's taint must be inside every policy state
/// that may be active there. Returns the offending indices on rejection.
pub fn certify_dynamic(fc: &Flowchart, initial: IndexSet) -> crate::certify::Certification {
    use crate::certify::Certification;
    let facts = analyze_schedules(fc, initial);
    let mut bad = IndexSet::empty();
    for h in fc.halts() {
        let t = facts.halt_taint(h);
        let ps = facts.policies_at(h);
        if !ps.admits(&t) {
            bad.union_with(&ps.excess(&t));
        }
    }
    if bad.is_empty() {
        Certification::Certified
    } else {
        Certification::Rejected { taint: bad }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certify::{certify, Analysis};
    use enf_flowchart::parse;

    fn dynamic_ok(src: &str, initial: IndexSet) -> bool {
        certify_dynamic(&parse(src).unwrap(), initial).is_certified()
    }

    #[test]
    fn policy_set_join_is_a_semilattice() {
        let a = IndexSet::single(1);
        let b = IndexSet::single(2);
        let mut s = PolicySet::just(a);
        assert!(s.join_from(&PolicySet::just(b)));
        assert_eq!(s, PolicySet::These(vec![a, b]));
        assert!(!s.join_from(&PolicySet::just(a)), "idempotent");
        assert!(s.join_from(&PolicySet::Any));
        assert!(s.is_any());
        assert!(!s.join_from(&PolicySet::just(b)), "top absorbs");
    }

    #[test]
    fn policy_set_admits_under_any_only_empty() {
        assert!(PolicySet::Any.admits(&IndexSet::empty()));
        assert!(!PolicySet::Any.admits(&IndexSet::single(1)));
        let s = PolicySet::These(vec![IndexSet::single(1), IndexSet::full(2)]);
        assert!(s.admits(&IndexSet::single(1)));
        assert!(!s.admits(&IndexSet::single(2)), "must hold for every state");
    }

    #[test]
    fn mid_run_setpolicy_certified_dynamically() {
        // The separation program: the final policy allows x1, and the
        // setpolicy dominates every halt — certified even though the
        // *initial* policy allows nothing.
        let src = "program(2) { r1 := x1; setpolicy allow(1); y := r1; }";
        assert!(dynamic_ok(src, IndexSet::empty()));
    }

    #[test]
    fn tightening_mid_run_policy_rejected() {
        // The release happens at HALT under the *tightened* policy.
        let src = "program(2) { y := x1 + x2; setpolicy allow(1); }";
        assert!(!dynamic_ok(src, IndexSet::full(2)));
    }

    #[test]
    fn slot_release_must_be_untainted() {
        // A slot box means any binding: only input-independent output
        // certifies.
        assert!(!dynamic_ok(
            "program(2) { setpolicy p1; y := x1; }",
            IndexSet::full(2)
        ));
        assert!(dynamic_ok(
            "program(2) { setpolicy p1; y := 3; }",
            IndexSet::empty()
        ));
    }

    #[test]
    fn branch_dependent_policy_checks_every_state() {
        // The halt may run under allow(1, 2) (else arm kept the initial
        // policy) or allow(1) (then arm tightened); the branch taints C̄
        // with {2}, which the tightened state rejects.
        let src = "program(2) { if x2 == 0 { setpolicy allow(1); } y := x1; }";
        assert!(!dynamic_ok(src, IndexSet::full(2)));
        let facts = analyze_schedules(&parse(src).unwrap(), IndexSet::full(2));
        let halt = parse(src).unwrap().halts()[0];
        assert_eq!(
            facts.policies_at(halt),
            &PolicySet::These(vec![IndexSet::single(1), IndexSet::full(2)])
        );
    }

    #[test]
    fn declassify_sanctions_the_release() {
        let src = "program(2) { r1 := x1; declassify(r1: 1 ~>); y := r1; }";
        assert!(dynamic_ok(src, IndexSet::empty()));
        // Without the declassification the same program must reject.
        let undeclassified = "program(2) { r1 := x1; y := r1; }";
        assert!(!dynamic_ok(undeclassified, IndexSet::empty()));
    }

    #[test]
    fn declassify_does_not_erase_other_paths() {
        // x1 also reaches y directly; relabeling r1 sanctions nothing
        // about that second path.
        let src = "program(2) { r1 := x1; declassify(r1: 1 ~>); y := r1 + x1; }";
        assert!(!dynamic_ok(src, IndexSet::empty()));
    }

    #[test]
    fn policy_free_program_degenerates_to_value_refined() {
        for (src, j) in [
            ("program(2) { y := x2; }", IndexSet::single(2)),
            ("program(2) { y := x1; }", IndexSet::single(2)),
            (
                "program(2) { r1 := 0; if r1 == 0 { y := x2; } else { y := x1; } }",
                IndexSet::single(2),
            ),
            (
                "program(2) { if x1 == 1 { r1 := 1; } else { r1 := 2; } y := 1; }",
                IndexSet::single(2),
            ),
        ] {
            let fc = parse(src).unwrap();
            assert_eq!(
                certify_dynamic(&fc, j).is_certified(),
                certify(&fc, j, Analysis::ValueRefined).is_certified(),
                "{src}"
            );
        }
    }

    #[test]
    fn unreachable_policy_boxes_contribute_nothing() {
        // The slot box is behind a constant-false guard: the value
        // refinement prunes it, so the policy set stays {initial}.
        let src = "program(1) { r1 := 0; if r1 == 1 { setpolicy p1; } y := x1; }";
        assert!(dynamic_ok(src, IndexSet::single(1)));
    }

    #[test]
    fn rejection_names_the_offending_indices() {
        let src = "program(3) { y := x1 + x3; setpolicy allow(1); }";
        match certify_dynamic(&parse(src).unwrap(), IndexSet::full(3)) {
            crate::certify::Certification::Rejected { taint } => {
                assert_eq!(taint, IndexSet::single(3))
            }
            crate::certify::Certification::Certified => panic!("should reject"),
        }
    }
}
