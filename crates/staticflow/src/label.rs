//! Lattice-generic label dataflow and the intransitive-flow certifier.
//!
//! Two static layers over first-class label policies
//! ([`enf_core::label`]), both running on the monotone
//! [`framework`](crate::framework):
//!
//! * [`analyze_labels`] — the lattice generalization of the boolean
//!   may-taint analysis: every variable carries a *label join* `⊔ᵢ Lᵢ`
//!   instead of an index set. On two-point lattices (`Unclassified` /
//!   `Secret`) it collapses to exactly the taint analysis, which the
//!   differential tests keep as an oracle.
//! * [`certify_lattice`] — the unwinding-style certifier (after Eggert et
//!   al., "Complexity and Unwinding for Intransitive Noninterference"): a
//!   `Secret` value may reach a sink readable at a lower clearance only
//!   through a **sanctioned** `declassify` box on *every* carrying path.
//!   Mechanically this is the value-refined may-taint analysis with the
//!   declassify transfer *gated*: a box relabels (`t ↦ (t \ from) ∪ to`)
//!   only when the flow relation sanctions the step
//!   `⊔ label(from) ⇝ ⊔ label(to)`; an unsanctioned box conservatively
//!   accumulates (`t ↦ t ∪ to`). Per-index sets — not label joins — carry
//!   the path sensitivity: an index absent from the halt taint has a
//!   mediating box on every path that could carry it.
//!
//! The certifier is **strictly stricter** than the exhaustive lattice
//! oracle [`enf_core::check_soundness_lattice`], whose induced set
//! `J_c = { i : label(i) ⇝* c }` charges no mediation: a sink index
//! survives certification only if its label flows to the clearance
//! directly, and a sanctioned removal at label `l` with target `t ⊑ c`
//! witnesses `l ⇝* c`. Hence *certified ⇒ oracle-sound*, the containment
//! the workspace property tests pin on random labeled programs.

use crate::certify::Certification;
use crate::framework::{solve, DataflowProblem, Solution};
use crate::value::{analyze_values, ValueFacts};
use enf_core::label::{Classification, IntransitiveFlow, Label};
use enf_core::IndexSet;
use enf_flowchart::ast::Var;
use enf_flowchart::graph::{Flowchart, Node, NodeId};

/// A labeling of every variable at one program point: the lattice twin of
/// [`TaintEnv`](crate::dataflow::TaintEnv), with index sets replaced by
/// label joins.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LabelEnv<L: Label> {
    inputs: Vec<L>,
    regs: Vec<L>,
    out: L,
    /// Monotone program-counter label — the lattice `C̄`.
    pub pc: L,
}

impl<L: Label> LabelEnv<L> {
    fn bottom(arity: usize, regs: usize) -> Self {
        LabelEnv {
            inputs: vec![L::bottom(); arity],
            regs: vec![L::bottom(); regs],
            out: L::bottom(),
            pc: L::bottom(),
        }
    }

    fn init(classification: &Classification<L>, regs: usize) -> Self {
        LabelEnv {
            inputs: classification.labels().to_vec(),
            regs: vec![L::bottom(); regs],
            out: L::bottom(),
            pc: L::bottom(),
        }
    }

    /// The label of a variable in this environment.
    pub fn get(&self, var: Var) -> L {
        match var {
            Var::Input(i) => self.inputs[i - 1].clone(),
            Var::Reg(j) => self.regs.get(j - 1).cloned().unwrap_or_else(L::bottom),
            Var::Out => self.out.clone(),
        }
    }

    fn set(&mut self, var: Var, l: L) {
        match var {
            Var::Input(i) => self.inputs[i - 1] = l,
            Var::Reg(j) => {
                if j > self.regs.len() {
                    self.regs.resize(j, L::bottom());
                }
                self.regs[j - 1] = l;
            }
            Var::Out => self.out = l,
        }
    }

    fn join_from(&mut self, other: &LabelEnv<L>) -> bool {
        let mut changed = false;
        let mut up = |a: &mut L, b: &L| {
            let u = a.join(b);
            if u != *a {
                *a = u;
                changed = true;
            }
        };
        for (j, b) in other.inputs.iter().enumerate() {
            up(&mut self.inputs[j], b);
        }
        if other.regs.len() > self.regs.len() {
            self.regs.resize(other.regs.len(), L::bottom());
        }
        for (j, b) in other.regs.iter().enumerate() {
            up(&mut self.regs[j], b);
        }
        up(&mut self.out, &other.out);
        up(&mut self.pc, &other.pc);
        changed
    }

    /// The join of the labels of the given variables — `⊥` for none.
    pub fn label_of_vars(&self, vars: &[Var]) -> L {
        vars.iter()
            .fold(L::bottom(), |acc, v| acc.join(&self.get(*v)))
    }
}

/// The label-join analysis as a framework problem. The program-counter
/// discipline is monotone (the faithful `C̄` abstraction); declassify
/// boxes relabel to the join of their declared `to` provenance when the
/// flow relation sanctions the step from the variable's *current* label,
/// and conservatively accumulate otherwise.
struct LabelFlow<'a, L: Label> {
    classification: &'a Classification<L>,
    flow: &'a IntransitiveFlow<L>,
}

impl<L: Label> DataflowProblem for LabelFlow<'_, L> {
    type Fact = LabelEnv<L>;

    fn bottom(&self, fc: &Flowchart) -> LabelEnv<L> {
        LabelEnv::bottom(fc.arity(), fc.max_reg())
    }

    fn boundary(&self, fc: &Flowchart, n: NodeId) -> Option<LabelEnv<L>> {
        (n == fc.start()).then(|| LabelEnv::init(self.classification, fc.max_reg()))
    }

    fn join(&self, into: &mut LabelEnv<L>, from: &LabelEnv<L>) -> bool {
        into.join_from(from)
    }

    fn flow(
        &self,
        fc: &Flowchart,
        n: NodeId,
        _edge: usize,
        _to: NodeId,
        fact: &LabelEnv<L>,
    ) -> Option<LabelEnv<L>> {
        let mut env = fact.clone();
        match fc.node(n) {
            Node::Start | Node::Halt => {}
            Node::Assign { var, expr } => {
                let l = env.label_of_vars(&expr.vars()).join(&env.pc);
                env.set(*var, l);
            }
            Node::Decision { pred } => {
                let l = env.label_of_vars(&pred.vars());
                env.pc = env.pc.join(&l);
            }
            Node::SetPolicy { .. } => {}
            Node::Declassify { var, from: _, to } => {
                let target = self.classification.join_of(to);
                let current = env.get(*var);
                if self.flow.may_step(&current, &target) {
                    env.set(*var, target);
                } else {
                    env.set(*var, current.join(&target));
                }
            }
        }
        Some(env)
    }
}

/// The result of [`analyze_labels`].
#[derive(Clone, Debug)]
pub struct LabelFacts<L: Label> {
    /// Entry environment per node (index = node id).
    pub at_entry: Vec<LabelEnv<L>>,
}

impl<L: Label> LabelFacts<L> {
    /// The label of the released output at a HALT node: `label(y) ⊔ C̄`.
    pub fn halt_label(&self, halt: NodeId) -> L {
        let env = &self.at_entry[halt.0];
        env.get(Var::Out).join(&env.pc)
    }
}

/// Runs the lattice-generic label-join analysis to a fixed point.
///
/// On the two-point lattice this is exactly the monotone may-taint
/// analysis — `halt_label ⊑ clearance ⟺ halt_taint ⊆ J_c` — which the
/// differential tests keep pinned for declassify-free programs (a
/// sanctioned declassify *subtracts* indices, which a pure join cannot
/// express; the index-based [`certify_lattice`] pass owns that case).
pub fn analyze_labels<L: Label>(
    fc: &Flowchart,
    classification: &Classification<L>,
    flow: &IntransitiveFlow<L>,
) -> LabelFacts<L> {
    assert_eq!(
        fc.arity(),
        classification.arity(),
        "program arity {} does not match labeling arity {}",
        fc.arity(),
        classification.arity()
    );
    let sol: Solution<LabelEnv<L>> = solve(
        fc,
        &LabelFlow {
            classification,
            flow,
        },
    );
    LabelFacts {
        at_entry: sol.facts,
    }
}

/// The sanction-gated may-taint analysis: value-refined monotone taint
/// facts in which a `declassify(x: from ~> to)` box relabels
/// (`t ↦ (t \ from) ∪ to`) **only** when the flow relation sanctions the
/// single step `⊔ label(from) ⇝ ⊔ label(to)` (empty `to` targets `⊥`).
/// An unsanctioned box accumulates `t ↦ t ∪ to` — it launders nothing.
struct SanctionedTaint<'a> {
    /// Per-node sanction verdicts (true only at sanctioned Declassify
    /// nodes).
    sanctioned: &'a [bool],
    values: &'a ValueFacts,
}

impl DataflowProblem for SanctionedTaint<'_> {
    type Fact = crate::dataflow::TaintEnv;

    fn bottom(&self, fc: &Flowchart) -> Self::Fact {
        crate::dataflow::TaintEnv::bottom(fc.arity(), fc.max_reg())
    }

    fn boundary(&self, fc: &Flowchart, n: NodeId) -> Option<Self::Fact> {
        (n == fc.start()).then(|| crate::dataflow::TaintEnv::init(fc.arity(), fc.max_reg()))
    }

    fn join(&self, into: &mut Self::Fact, from: &Self::Fact) -> bool {
        into.join_from(from)
    }

    fn flow(
        &self,
        fc: &Flowchart,
        n: NodeId,
        edge: usize,
        _to: NodeId,
        fact: &Self::Fact,
    ) -> Option<Self::Fact> {
        if !self.values.reachable(n) || !self.values.edge_feasible(fc, n, edge) {
            return None;
        }
        let mut env = fact.clone();
        match fc.node(n) {
            Node::Start | Node::Halt => {}
            Node::Assign { var, expr } => {
                let t = env.taint_of_vars(&expr.vars()).union(&env.pc);
                env.set(*var, t);
            }
            Node::Decision { pred } => {
                let t = env.taint_of_vars(&pred.vars());
                env.pc.union_with(&t);
            }
            Node::SetPolicy { .. } => {}
            Node::Declassify { var, from, to } => {
                let t = env.get(*var);
                if self.sanctioned[n.0] {
                    env.set(*var, t.difference(from).union(to));
                } else {
                    env.set(*var, t.union(to));
                }
            }
        }
        Some(env)
    }
}

/// Which `declassify` boxes the flow relation sanctions: one entry per
/// node, true exactly at Declassify nodes whose declared step
/// `⊔ label(from) ⇝ ⊔ label(to)` is a lattice descent or a single
/// release edge ([`IntransitiveFlow::may_step`]).
fn sanction_map<L: Label>(
    fc: &Flowchart,
    classification: &Classification<L>,
    flow: &IntransitiveFlow<L>,
) -> Vec<bool> {
    fc.iter()
        .map(|(_, node, _)| match node {
            Node::Declassify { from, to, .. } => {
                flow.may_step(&classification.join_of(from), &classification.join_of(to))
            }
            _ => false,
        })
        .collect()
}

/// Statically certifies a labeled program against a clearance: every
/// index that may reach a halt (through data, the program counter, or an
/// unsanctioned declassify) must carry a label that flows to the
/// clearance in the plain lattice order. Sanctioned `declassify` boxes
/// are the *only* way a higher label crosses down — which is exactly the
/// intransitive discipline: mediation on every carrying path.
///
/// Programs with `setpolicy` nodes additionally run the dynamic-policy
/// schedule certifier seeded with the induced allow-set
/// `J_c = { i : label(i) ⇝* c }`, so a mid-run policy change is judged
/// against the lattice state it starts from; the label check above still
/// applies, keeping the verdict sound for the fixed-clearance oracle.
///
/// Returns [`Certification::Rejected`] carrying the union of offending
/// indices over all halts.
pub fn certify_lattice<L: Label>(
    fc: &Flowchart,
    classification: &Classification<L>,
    flow: &IntransitiveFlow<L>,
    clearance: &L,
) -> Certification {
    assert_eq!(
        fc.arity(),
        classification.arity(),
        "program arity {} does not match labeling arity {}",
        fc.arity(),
        classification.arity()
    );
    let values = analyze_values(fc);
    let sanctioned = sanction_map(fc, classification, flow);
    let sol: Solution<crate::dataflow::TaintEnv> = solve(
        fc,
        &SanctionedTaint {
            sanctioned: &sanctioned,
            values: &values,
        },
    );

    let mut offending = IndexSet::empty();
    for h in fc.halts() {
        let env = &sol.facts[h.0];
        let taint = env.get(Var::Out).union(&env.pc);
        for i in taint.iter() {
            if !classification.label(i).flows_to(clearance) {
                offending.insert(i);
            }
        }
    }

    // Mid-run policy installation: the schedule certifier judges each
    // halt against every policy that can govern it, starting from the
    // lattice-induced initial allow-set.
    if fc
        .iter()
        .any(|(_, node, _)| matches!(node, Node::SetPolicy { .. }))
    {
        let initial = classification.readable_allow(flow, clearance);
        if let Certification::Rejected { taint } = crate::schedule::certify_dynamic(fc, initial) {
            offending.union_with(&taint);
        }
    }

    if offending.is_empty() {
        Certification::Certified
    } else {
        Certification::Rejected { taint: offending }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::{analyze, PcDiscipline};
    use enf_core::label::Level;
    use enf_flowchart::{parse, parse_labeled};

    fn levels(allowed: IndexSet, k: usize) -> Classification<Level> {
        Classification::new(
            (1..=k)
                .map(|i| {
                    if allowed.contains(i) {
                        Level::Unclassified
                    } else {
                        Level::Secret
                    }
                })
                .collect(),
        )
    }

    #[test]
    fn label_join_collapses_to_taint_on_two_point_lattice() {
        for src in [
            "program(2) { y := x1 + x2; }",
            "program(2) { if x1 == 1 { r1 := 1; } else { r1 := 2; } y := r1; }",
            "program(2) { while x1 > 0 { x1 := x1 - 1; } y := x2; }",
            "program(2) { r1 := 0; if r1 == 0 { y := x2; } else { y := x1; } }",
        ] {
            let fc = parse(src).unwrap();
            for allowed in [
                IndexSet::empty(),
                IndexSet::single(1),
                IndexSet::single(2),
                IndexSet::full(2),
            ] {
                let c = levels(allowed, 2);
                let labels = analyze_labels(&fc, &c, &IntransitiveFlow::transitive());
                let taints = analyze(&fc, PcDiscipline::Monotone);
                for h in fc.halts() {
                    let clean_by_label = labels.halt_label(h).flows_to(&Level::Unclassified);
                    let clean_by_taint = taints.halt_taint(h).is_subset(&allowed);
                    assert_eq!(
                        clean_by_label, clean_by_taint,
                        "{src} under allow({allowed})"
                    );
                }
            }
        }
    }

    #[test]
    fn label_analysis_tracks_implicit_flows() {
        let fc = parse("program(2) { if x1 == 0 { y := 0; } else { y := 1; } }").unwrap();
        let c = Classification::new(vec![Level::Secret, Level::Unclassified]);
        let facts = analyze_labels(&fc, &c, &IntransitiveFlow::transitive());
        for h in fc.halts() {
            assert_eq!(facts.halt_label(h), Level::Secret);
        }
    }

    #[test]
    fn sanctioned_declassify_lowers_the_label() {
        let lp = parse_labeled(
            "program(2)
             labels { x1: secret; flow secret ~> unclassified; }
             { r1 := ite(x1 == x2, 1, 0); declassify(r1: 1 ~>); y := r1; }",
        )
        .unwrap();
        let facts = analyze_labels(&lp.flowchart, &lp.classification, &lp.flow);
        for h in lp.flowchart.halts() {
            assert_eq!(facts.halt_label(h), Level::Unclassified);
        }
    }

    #[test]
    fn certify_lattice_accepts_password_release_everywhere() {
        let lp = enf_flowchart::corpus::password_release_labeled();
        for c in Level::ALL {
            assert!(
                certify_lattice(&lp.flowchart, &lp.classification, &lp.flow, &c).is_certified(),
                "clearance {c:?}"
            );
        }
    }

    #[test]
    fn unsanctioned_declassify_does_not_launder() {
        // Same shape as password_release, but no release edge: the box is
        // unsanctioned, x1's taint survives, certification fails below
        // Secret.
        let lp = parse_labeled(
            "program(2)
             labels { x1: secret; }
             { r1 := ite(x1 == x2, 1, 0); declassify(r1: 1 ~>); y := r1; }",
        )
        .unwrap();
        let v = certify_lattice(
            &lp.flowchart,
            &lp.classification,
            &lp.flow,
            &Level::Unclassified,
        );
        assert_eq!(v.taint(), Some(IndexSet::single(1)));
        assert!(
            certify_lattice(&lp.flowchart, &lp.classification, &lp.flow, &Level::Secret)
                .is_certified()
        );
    }

    #[test]
    fn unmediated_secret_flow_rejected_despite_release_edge() {
        // The edge alone sanctions nothing: without a declassify box on
        // the carrying path, y := x1 must still be rejected at a public
        // clearance — the path-sensitivity transitive label-join cannot
        // see.
        let lp = parse_labeled(
            "program(2)
             labels { x1: secret; flow secret ~> unclassified; }
             { y := x1; }",
        )
        .unwrap();
        let v = certify_lattice(
            &lp.flowchart,
            &lp.classification,
            &lp.flow,
            &Level::Unclassified,
        );
        assert!(!v.is_certified());
        // The exhaustive oracle, judging only the induced J_c, accepts —
        // the certifier is strictly stricter, never the other way.
        assert!(lp
            .classification
            .readable_allow(&lp.flow, &Level::Unclassified)
            .contains(1));
    }

    #[test]
    fn certification_is_monotone_in_clearance() {
        let lp = parse_labeled(
            "program(3)
             labels { x1: topsecret; x2: secret; x3: confidential; }
             { y := x1 + x2 + x3; }",
        )
        .unwrap();
        let mut certified_seen = false;
        for c in Level::ALL {
            let v = certify_lattice(&lp.flowchart, &lp.classification, &lp.flow, &c);
            if certified_seen {
                assert!(v.is_certified(), "lost certification going up at {c:?}");
            }
            certified_seen = v.is_certified();
        }
        assert!(certified_seen, "topsecret clearance must certify");
    }

    #[test]
    fn setpolicy_programs_run_the_schedule_certifier() {
        // policy_upgrade copies a secret input under an initial policy
        // that denies it, then installs allow(1) before release: the
        // schedule certifier accepts, and with x1 labeled unclassified
        // the label check does too.
        let fc = parse("program(2) { r1 := x1; setpolicy allow(1); y := r1; }").unwrap();
        let all_public = Classification::public(2);
        assert!(certify_lattice(
            &fc,
            &all_public,
            &IntransitiveFlow::transitive(),
            &Level::Unclassified
        )
        .is_certified());
        // With x1 secret, the label check rejects at a public clearance
        // even though the schedule admits the release.
        let c = Classification::new(vec![Level::Secret, Level::Unclassified]);
        assert!(!certify_lattice(
            &fc,
            &c,
            &IntransitiveFlow::transitive(),
            &Level::Unclassified
        )
        .is_certified());
    }
}
