//! Regression harness for the monotone-framework migration: the ported
//! analyses agree *exactly* with the pre-port worklist on randomized
//! flowcharts, and the solver's fixed point is independent of the
//! iteration order it is given.

use enf_flowchart::generate::{random_flowchart, GenConfig, SplitMix};
use enf_flowchart::graph::{Flowchart, Node, NodeId};
use enf_static::dataflow::{analyze, analyze_reference, PcDiscipline};
use enf_static::framework::{reverse_postorder, solve, solve_in_order, DataflowProblem};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Forward "decisions seen on some path here" — a set-union analysis whose
/// fixed point is rich enough to notice ordering bugs (it grows around
/// loops), defined over the public framework API.
struct DecisionsSeen;

impl DataflowProblem for DecisionsSeen {
    type Fact = Option<BTreeSet<usize>>;

    fn bottom(&self, _fc: &Flowchart) -> Self::Fact {
        None
    }

    fn boundary(&self, fc: &Flowchart, n: NodeId) -> Option<Self::Fact> {
        (n == fc.start()).then(|| Some(BTreeSet::new()))
    }

    fn join(&self, into: &mut Self::Fact, from: &Self::Fact) -> bool {
        match (into.as_mut(), from) {
            (_, None) => false,
            (None, Some(f)) => {
                *into = Some(f.clone());
                true
            }
            (Some(i), Some(f)) => {
                let before = i.len();
                i.extend(f.iter().copied());
                i.len() != before
            }
        }
    }

    fn flow(
        &self,
        fc: &Flowchart,
        n: NodeId,
        _edge: usize,
        _to: NodeId,
        fact: &Self::Fact,
    ) -> Option<Self::Fact> {
        let mut seen = fact.clone()?;
        if matches!(fc.node(n), Node::Decision { .. }) {
            seen.insert(n.0);
        }
        Some(Some(seen))
    }
}

/// A seed-derived permutation of the node table (Fisher–Yates over
/// SplitMix, no external RNG needed).
fn shuffled_order(fc: &Flowchart, seed: u64) -> Vec<NodeId> {
    let mut order: Vec<NodeId> = (0..fc.len()).map(NodeId).collect();
    let mut rng = SplitMix::new(seed);
    for i in (1..order.len()).rev() {
        let j = (rng.next_u64() % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    order
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The ported taint analyses agree exactly — entry environments and
    /// scoped PC included — with the pre-port hand-rolled worklist.
    #[test]
    fn port_matches_reference(seed in 0u64..10_000) {
        let fc = random_flowchart(seed, &GenConfig::default());
        for d in [PcDiscipline::Monotone, PcDiscipline::Scoped] {
            let new = analyze(&fc, d);
            let old = analyze_reference(&fc, d);
            prop_assert_eq!(&new.at_entry, &old.at_entry, "seed {} {:?}", seed, d);
            prop_assert_eq!(&new.scoped_pc, &old.scoped_pc, "seed {} {:?}", seed, d);
            for h in fc.halts() {
                prop_assert_eq!(new.halt_taint(h), old.halt_taint(h));
            }
        }
    }

    /// The least fixed point is iteration-order independent: random
    /// permutations of the worklist priority yield identical facts.
    #[test]
    fn fixed_point_is_order_independent(seed in 0u64..10_000, shuffle in 0u64..1000) {
        let fc = random_flowchart(seed, &GenConfig::default());
        let baseline = solve(&fc, &DecisionsSeen);
        let order = shuffled_order(&fc, shuffle);
        let permuted = solve_in_order(&fc, &DecisionsSeen, &order);
        prop_assert_eq!(&permuted.facts, &baseline.facts, "seed {} shuffle {}", seed, shuffle);
        // Reverse postorder is itself a valid order and must agree too.
        let rpo = reverse_postorder(&fc);
        prop_assert_eq!(&solve_in_order(&fc, &DecisionsSeen, &rpo).facts, &baseline.facts);
    }

    /// Convergence sanity: the solver's work is bounded well below the
    /// worst-case `nodes × height` even on adversarial orders.
    #[test]
    fn solver_converges_quickly(seed in 0u64..10_000) {
        let fc = random_flowchart(seed, &GenConfig::default());
        let sol = solve(&fc, &DecisionsSeen);
        let decisions = fc.iter().filter(|(_, n, _)| matches!(n, Node::Decision { .. })).count();
        // Height of the per-node lattice is |decisions| + 1; edges ≤ 2n.
        let bound = 2 * fc.len() * (decisions + 2);
        prop_assert!(sol.iterations <= bound, "{} transfer steps > bound {}", sol.iterations, bound);
    }
}
