//! Capability-gated release: the only exit from the typed pipeline.

use crate::audit::{indexset_json, AuditLog};
use crate::capability::Capability;
use crate::proof::Proof;
use crate::verified::Verified;
use enf_core::{EnfError, Json, V};
use enf_flowchart::interp::ExecValue;

/// How a released value is rendered into its audit record. Implemented
/// for the engine's value shapes; embedders releasing their own types
/// implement it once.
pub trait Auditable {
    /// The canonical JSON form recorded on release.
    fn audit_json(&self) -> Json;
}

impl Auditable for V {
    fn audit_json(&self) -> Json {
        Json::Int(i128::from(*self))
    }
}

impl Auditable for ExecValue {
    fn audit_json(&self) -> Json {
        match self {
            ExecValue::Value(v) => Json::Int(i128::from(*v)),
            ExecValue::Diverged => Json::Null,
        }
    }
}

impl Auditable for String {
    fn audit_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl<T: Auditable> Auditable for Vec<T> {
    fn audit_json(&self) -> Json {
        Json::Arr(self.iter().map(Auditable::audit_json).collect())
    }
}

/// A release channel, gated by a [`Capability`] and wired to an audit
/// log.
///
/// `Sink::release` is the **only** way to read the value inside a
/// [`Verified`]: it consumes the proof object, appends a hash-chained
/// `release` record (channel, policy, program, proof discipline,
/// evidence, and the released value itself), and only then hands the raw
/// value back to the caller. Code without a capability cannot build a
/// sink; code without a sink cannot read verified data.
#[derive(Debug)]
pub struct Sink<'log> {
    cap: Capability,
    log: &'log mut AuditLog,
}

impl<'log> Sink<'log> {
    /// Builds a sink from the capability authorizing its channel.
    pub fn new(cap: Capability, log: &'log mut AuditLog) -> Sink<'log> {
        Sink { cap, log }
    }

    /// The channel this sink releases to.
    pub fn channel(&self) -> &str {
        self.cap.channel()
    }

    /// Releases a verified value: appends the audit record, then returns
    /// the raw value. The `Verified` is consumed — release is a move, not
    /// a peek.
    pub fn release<T: Auditable, P: Proof>(&mut self, v: Verified<T, P>) -> Result<T, EnfError> {
        let (value, arity, allow, program, evidence) = v.into_release();
        self.log.append(
            "release",
            vec![
                (
                    "channel".to_string(),
                    Json::Str(self.cap.channel().to_string()),
                ),
                ("proof".to_string(), Json::Str(P::NAME.to_string())),
                ("program".to_string(), Json::Str(format!("{program:016x}"))),
                ("arity".to_string(), Json::Int(arity as i128)),
                ("allow".to_string(), indexset_json(&allow)),
                ("evidence".to_string(), evidence.to_json()),
                ("value".to_string(), value.audit_json()),
            ],
        )?;
        Ok(value)
    }

    /// Dissolves the sink, returning its capability for reuse.
    pub fn into_capability(self) -> Capability {
        self.cap
    }
}
