//! The [`Enforcer`]: every monitor-backed path from [`Tainted`] to
//! [`crate::Verified`].
//!
//! An `Enforcer` binds one program to one policy and offers exactly three
//! ways to turn tainted input into verified output, one per
//! [`crate::proof`] discipline:
//!
//! * [`Enforcer::certify`] — a static analysis certifies the program, and
//!   the returned [`Certificate`] runs it natively
//!   ([`crate::proof::Certified`]);
//! * [`Enforcer::surveil`] — the dynamic monitor (AST stepper or bytecode
//!   VM) tracks taints through one execution
//!   ([`crate::proof::Monitored`]);
//! * [`Enforcer::sweep`] — an exhaustive soundness sweep over the input
//!   domain yields a [`SoundnessWarrant`] whose runs attest under
//!   [`crate::proof::Swept`].
//!
//! Every path appends its verdict to the caller's [`AuditLog`] before any
//! `Verified` value is minted, so the audit trail is a superset of the
//! release history: nothing is attested, refused, or released silently.

use crate::audit::{indexset_json, AuditLog};
use crate::evidence::{sweep_fields, Evidence};
use crate::proof::{self, Proof};
use crate::tainted::Tainted;
use crate::verified::Verified;
use enf_core::checkpoint::{
    check_soundness_checkpointed, read_checkpoint_file, write_checkpoint_file, CheckpointCodec,
    SoundnessCheckpoint,
};
use enf_core::label::{Classification, IntransitiveFlow, Level};
use enf_core::{
    check_soundness_scheduled, fingerprint, try_check_soundness_with, validate_scheduled_witness,
    Allow, CancelToken, Coverage, EnfError, EvalConfig, Grid, Identity, IndexSet, Json, Mechanism,
    ScheduledReport, ScheduledWitness, Verdict, V,
};
use enf_flowchart::bytecode::Compiled;
use enf_flowchart::interp::ExecValue;
use enf_flowchart::{Flowchart, FlowchartProgram, LabeledProgram, NodeId};
use enf_static::certify::{certify, Analysis, Certification};
use enf_surveillance::dynamic::{run_surveillance, SurvConfig, SurvOutcome};
use enf_surveillance::vm::run_surveillance_vm;
use enf_surveillance::{HighWater, Surveillance, TimedMechanism, VmSurveillance};
use std::path::Path;

/// A failure of the typed pipeline, classified by blame.
#[derive(Debug)]
pub enum PolicyError {
    /// The embedder asked for something malformed (arity mismatch, policy
    /// index out of range, an unsupported mode combination).
    Usage(String),
    /// The engine itself failed (panicking subject, corrupt checkpoint,
    /// unwritable audit log).
    Engine(EnfError),
}

impl std::fmt::Display for PolicyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolicyError::Usage(m) => f.write_str(m),
            PolicyError::Engine(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PolicyError {}

impl From<EnfError> for PolicyError {
    fn from(e: EnfError) -> Self {
        PolicyError::Engine(e)
    }
}

/// The dynamic discipline an [`Enforcer`] monitors under (the three
/// mechanism families of the paper's M′ constructions).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Discipline {
    /// Plain surveillance: taints replace on assignment, checked at HALT.
    #[default]
    Surveillance,
    /// Observable time: the M′ wrapper that releases step counts.
    Timed,
    /// High-water accumulation: taints only grow, checked at every
    /// decision.
    HighWater,
}

impl Discipline {
    /// Machine-readable discipline name used in audit records.
    pub fn name(self) -> &'static str {
        match self {
            Discipline::Surveillance => "surveillance",
            Discipline::Timed => "timed",
            Discipline::HighWater => "highwater",
        }
    }
}

/// Which executor runs the dynamic disciplines. The engines are
/// differentially pinned bit-identical, so the choice only affects speed.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Engine {
    /// The flowchart AST stepper.
    Ast,
    /// The register-bytecode VM (the default).
    #[default]
    Vm,
}

impl Engine {
    /// Machine-readable engine name used in audit records.
    pub fn name(self) -> &'static str {
        match self {
            Engine::Ast => "ast",
            Engine::Vm => "vm",
        }
    }
}

/// Why a monitored run refused to release.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Refusal {
    /// The release check fired: the taint reaching the check site exceeds
    /// the policy.
    Violation {
        /// The node where the failing check fired.
        site: NodeId,
        /// The offending taint set at the check.
        taint: IndexSet,
        /// `taint \ allow` — the indices actually leaking.
        disallowed: IndexSet,
        /// Boxes executed up to and including the check.
        steps: u64,
    },
    /// The fuel bound ran out before any check could pass.
    OutOfFuel {
        /// The exhausted fuel bound.
        fuel: u64,
    },
}

/// Outcome of one monitored run: a [`Verified`] value or a [`Refusal`].
#[derive(Debug)]
pub enum RunVerdict<P: Proof> {
    /// The monitor accepted; the value awaits release through a
    /// [`crate::Sink`].
    Released(Verified<V, P>),
    /// The monitor refused; no value exists.
    Refused(Refusal),
}

/// Outcome of [`Enforcer::certify`].
#[derive(Debug)]
pub enum CertifyOutcome<'e> {
    /// The analysis certified the program; the certificate runs it
    /// natively.
    Certified(Certificate<'e>),
    /// The analysis rejected: some HALT may release the offending taint.
    Rejected {
        /// The static taint that exceeds the policy.
        taint: IndexSet,
    },
}

impl CertifyOutcome<'_> {
    /// Whether the program was certified.
    pub fn is_certified(&self) -> bool {
        matches!(self, CertifyOutcome::Certified(_))
    }

    /// The raw static verdict (for reporting).
    pub fn certification(&self) -> Certification {
        match self {
            CertifyOutcome::Certified(_) => Certification::Certified,
            CertifyOutcome::Rejected { taint } => Certification::Rejected { taint: *taint },
        }
    }
}

/// A static certificate: proof that the program may run unmonitored.
///
/// Obtained only from [`Enforcer::certify`] on a certified program; its
/// [`Certificate::run`] executes natively (no monitor in the loop) and
/// attests the result under [`crate::proof::Certified`].
#[derive(Debug)]
pub struct Certificate<'e> {
    enforcer: &'e Enforcer,
    analysis: Analysis,
}

impl Certificate<'_> {
    /// The analysis that certified.
    pub fn analysis(&self) -> Analysis {
        self.analysis
    }

    /// Runs the certified program natively on a tainted input and attests
    /// the released value. Divergence (fuel exhaustion) is itself a value
    /// of the total program and is attested as such.
    pub fn run(
        &self,
        input: Tainted<Vec<V>>,
        log: &mut AuditLog,
    ) -> Result<Verified<ExecValue, proof::Certified>, PolicyError> {
        let e = self.enforcer;
        e.check_arity(&input)?;
        use enf_core::Program as _;
        let value = e.program().eval(input.peek());
        let evidence = Evidence::Certificate {
            analysis: self.analysis,
        };
        e.append_attest(log, proof::Certified::NAME, &evidence)?;
        Ok(Verified::attest(
            value,
            e.arity,
            e.allow,
            e.fingerprint,
            evidence,
        ))
    }
}

/// Result of an exhaustive soundness sweep over `[-span, span]^k`.
///
/// Carries the coverage verdict and, when the sweep confirmed soundness
/// over the *whole* domain, a [`SoundnessWarrant`] for attesting runs.
#[derive(Debug)]
pub struct SweepOutcome<'e> {
    checked: usize,
    total: usize,
    verdict: Verdict,
    warrant: Option<SoundnessWarrant<'e>>,
}

impl<'e> SweepOutcome<'e> {
    /// Inputs actually evaluated before the sweep ended.
    pub fn checked(&self) -> usize {
        self.checked
    }

    /// Size of the declared input domain.
    pub fn total(&self) -> usize {
        self.total
    }

    /// The sweep verdict: confirmed sound, refuted, or cut short.
    pub fn verdict(&self) -> Verdict {
        self.verdict
    }

    /// The warrant, if the sweep confirmed full coverage.
    pub fn warrant(self) -> Option<SoundnessWarrant<'e>> {
        self.warrant
    }
}

/// Proof that the mechanism was swept sound over its whole domain.
///
/// Only a [`SweepOutcome`] with a `Confirmed` verdict carries one; its
/// [`SoundnessWarrant::run`] monitors an execution and attests under
/// [`crate::proof::Swept`] with [`Evidence::Coverage`].
#[derive(Debug)]
pub struct SoundnessWarrant<'e> {
    enforcer: &'e Enforcer,
    checked: usize,
    total: usize,
}

impl SoundnessWarrant<'_> {
    /// Runs the proven-sound mechanism on a tainted input.
    pub fn run(
        &self,
        input: Tainted<Vec<V>>,
        log: &mut AuditLog,
    ) -> Result<RunVerdict<proof::Swept>, PolicyError> {
        self.enforcer
            .monitored(input, log, |steps| Evidence::Coverage {
                checked: self.checked,
                total: self.total,
                steps,
            })
    }
}

/// Result of a policy-schedule sweep ([`Enforcer::sweep_scheduled`]).
#[derive(Clone, Debug)]
pub enum ScheduledOutcome {
    /// Every enumerated schedule passed the anchored-class check.
    Sound {
        /// Number of schedules swept.
        schedules: usize,
        /// Number of inputs enumerated per schedule.
        inputs: usize,
    },
    /// Some schedule admits a leak.
    Unsound {
        /// The offending schedule and input pair.
        witness: ScheduledWitness<ExecValue>,
        /// Whether an independent replay reproduced the witness.
        validated: bool,
    },
}

impl ScheduledOutcome {
    /// Whether every schedule passed.
    pub fn is_sound(&self) -> bool {
        matches!(self, ScheduledOutcome::Sound { .. })
    }
}

/// One program bound to one policy: the factory for every verified value.
///
/// ```
/// use enf_policy::{AuditLog, Capability, Enforcer, RunVerdict, Sink, Tainted};
/// use enf_core::IndexSet;
///
/// let fc = enf_flowchart::parse("program(2) { y := x1 + 1; }").unwrap();
/// let mut log = AuditLog::in_memory();
/// let enforcer = Enforcer::new(fc, IndexSet::from_iter([1])).unwrap();
/// let cap = Capability::issue("stdout", &mut log).unwrap();
/// match enforcer.surveil(Tainted::new(vec![4, 7]), &mut log).unwrap() {
///     RunVerdict::Released(v) => {
///         let y = Sink::new(cap, &mut log).release(v).unwrap();
///         assert_eq!(y, 5);
///     }
///     RunVerdict::Refused(r) => panic!("refused: {r:?}"),
/// }
/// assert_eq!(log.len(), 3); // grant, attest, release
/// ```
#[derive(Clone, Debug)]
pub struct Enforcer {
    fc: Flowchart,
    allow: IndexSet,
    arity: usize,
    discipline: Discipline,
    engine: Engine,
    fuel: u64,
    fingerprint: u64,
    lattice: Option<LatticeBinding>,
}

/// The label-policy side of a lattice-bound [`Enforcer`]: the labeling,
/// the (possibly intransitive) flow relation, and the clearance the
/// policy is reduced at.
#[derive(Clone, Debug)]
struct LatticeBinding {
    classification: Classification<Level>,
    flow: IntransitiveFlow<Level>,
    clearance: Level,
}

impl Enforcer {
    /// Binds `fc` to the policy allowing `allow`. Rejects policy indices
    /// outside the program's arity.
    pub fn new(fc: Flowchart, allow: IndexSet) -> Result<Enforcer, PolicyError> {
        let arity = fc.arity();
        if let Some(i) = allow.iter().find(|i| *i == 0 || *i > arity) {
            return Err(PolicyError::Usage(format!(
                "policy index {i} outside 1..={arity}"
            )));
        }
        let fingerprint = fc.fingerprint();
        Ok(Enforcer {
            fc,
            allow,
            arity,
            discipline: Discipline::default(),
            engine: Engine::default(),
            fuel: 1_000_000,
            fingerprint,
            lattice: None,
        })
    }

    /// Binds a labeled program to its lattice policy at a clearance.
    ///
    /// The fixed-clearance reduction `J_c = { i : label(i) ⇝* c }` becomes
    /// the enforcer's allow-set, so every dynamic path (surveil, sweep)
    /// monitors against the induced policy, and [`Verified`] values carry
    /// it. The static path gains [`Enforcer::certify_lattice`], which runs
    /// the intransitive-flow certifier against the full labeling instead
    /// of the reduction.
    pub fn new_lattice(program: LabeledProgram, clearance: Level) -> Result<Enforcer, PolicyError> {
        let LabeledProgram {
            flowchart,
            classification,
            flow,
        } = program;
        if classification.arity() != flowchart.arity() {
            return Err(PolicyError::Usage(format!(
                "labeling covers {} inputs but the program takes {}",
                classification.arity(),
                flowchart.arity()
            )));
        }
        let allow = classification.readable_allow(&flow, &clearance);
        let mut e = Enforcer::new(flowchart, allow)?;
        e.lattice = Some(LatticeBinding {
            classification,
            flow,
            clearance,
        });
        Ok(e)
    }

    /// Selects the dynamic discipline (default: plain surveillance).
    pub fn with_discipline(mut self, discipline: Discipline) -> Enforcer {
        self.discipline = discipline;
        self
    }

    /// Selects the executor (default: the bytecode VM).
    pub fn with_engine(mut self, engine: Engine) -> Enforcer {
        self.engine = engine;
        self
    }

    /// Sets the fuel bound (default: 1 000 000 boxes).
    pub fn with_fuel(mut self, fuel: u64) -> Enforcer {
        self.fuel = fuel;
        self
    }

    /// The program's arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The allowed input indices.
    pub fn allow(&self) -> IndexSet {
        self.allow
    }

    /// The fuel bound.
    pub fn fuel(&self) -> u64 {
        self.fuel
    }

    /// The active discipline.
    pub fn discipline(&self) -> Discipline {
        self.discipline
    }

    /// The active engine.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// The bound program's fingerprint (see `Flowchart::fingerprint`).
    pub fn program_fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The clearance of a lattice-bound enforcer
    /// ([`Enforcer::new_lattice`]), `None` for a plain allow-set binding.
    pub fn clearance(&self) -> Option<Level> {
        self.lattice.as_ref().map(|l| l.clearance)
    }

    fn program(&self) -> FlowchartProgram {
        FlowchartProgram::with_fuel(self.fc.clone(), self.fuel)
    }

    fn surv_config(&self) -> SurvConfig {
        let cfg = match self.discipline {
            Discipline::Surveillance => SurvConfig::surveillance(self.allow),
            Discipline::Timed => SurvConfig::timed(self.allow),
            Discipline::HighWater => SurvConfig::highwater(self.allow),
        };
        cfg.with_fuel(self.fuel)
    }

    fn check_arity(&self, input: &Tainted<Vec<V>>) -> Result<(), PolicyError> {
        if input.arity() != self.arity {
            return Err(PolicyError::Usage(format!(
                "input has {} values but the program takes {}",
                input.arity(),
                self.arity
            )));
        }
        Ok(())
    }

    /// The shared prefix of every pipeline record: program, policy, and
    /// mode.
    fn base_fields(&self) -> Vec<(String, Json)> {
        vec![
            (
                "program".to_string(),
                Json::Str(format!("{:016x}", self.fingerprint)),
            ),
            ("arity".to_string(), Json::Int(self.arity as i128)),
            ("allow".to_string(), indexset_json(&self.allow)),
            (
                "discipline".to_string(),
                Json::Str(self.discipline.name().to_string()),
            ),
            (
                "engine".to_string(),
                Json::Str(self.engine.name().to_string()),
            ),
        ]
    }

    fn append_attest(
        &self,
        log: &mut AuditLog,
        proof: &str,
        evidence: &Evidence,
    ) -> Result<(), EnfError> {
        let mut fields = self.base_fields();
        fields.push(("proof".to_string(), Json::Str(proof.to_string())));
        fields.push(("evidence".to_string(), evidence.to_json()));
        log.append("attest", fields)
    }

    fn append_refuse(&self, log: &mut AuditLog, refusal: &Refusal) -> Result<(), EnfError> {
        let mut fields = self.base_fields();
        match refusal {
            Refusal::Violation {
                site,
                taint,
                disallowed,
                steps,
            } => {
                fields.push(("outcome".to_string(), Json::Str("violation".to_string())));
                fields.push(("site".to_string(), Json::Int(site.0 as i128)));
                fields.push(("taint".to_string(), indexset_json(taint)));
                fields.push(("disallowed".to_string(), indexset_json(disallowed)));
                fields.push(("steps".to_string(), Json::Int(i128::from(*steps))));
            }
            Refusal::OutOfFuel { fuel } => {
                fields.push(("outcome".to_string(), Json::Str("out_of_fuel".to_string())));
                fields.push(("fuel".to_string(), Json::Int(i128::from(*fuel))));
            }
        }
        log.append("refuse", fields)
    }

    /// One monitored run: executes under the active discipline and engine,
    /// appends `attest` or `refuse`, and mints on acceptance.
    fn monitored<P: Proof>(
        &self,
        input: Tainted<Vec<V>>,
        log: &mut AuditLog,
        evidence: impl FnOnce(u64) -> Evidence,
    ) -> Result<RunVerdict<P>, PolicyError> {
        self.check_arity(&input)?;
        let cfg = self.surv_config();
        let outcome = match self.engine {
            Engine::Ast => run_surveillance(&self.fc, input.peek(), &cfg),
            Engine::Vm => run_surveillance_vm(&Compiled::new(&self.fc), input.peek(), &cfg),
        };
        match outcome {
            SurvOutcome::Accepted { y, steps } => {
                let evidence = evidence(steps);
                self.append_attest(log, P::NAME, &evidence)?;
                Ok(RunVerdict::Released(Verified::attest(
                    y,
                    self.arity,
                    self.allow,
                    self.fingerprint,
                    evidence,
                )))
            }
            SurvOutcome::Violation { site, taint, steps } => {
                let refusal = Refusal::Violation {
                    site,
                    taint,
                    disallowed: taint.difference(&self.allow),
                    steps,
                };
                self.append_refuse(log, &refusal)?;
                Ok(RunVerdict::Refused(refusal))
            }
            SurvOutcome::OutOfFuel => {
                let refusal = Refusal::OutOfFuel { fuel: self.fuel };
                self.append_refuse(log, &refusal)?;
                Ok(RunVerdict::Refused(refusal))
            }
        }
    }

    /// The monitored path: one run under surveillance, attesting under
    /// [`crate::proof::Monitored`] with [`Evidence::Trace`].
    pub fn surveil(
        &self,
        input: Tainted<Vec<V>>,
        log: &mut AuditLog,
    ) -> Result<RunVerdict<proof::Monitored>, PolicyError> {
        self.monitored(input, log, |steps| Evidence::Trace { steps })
    }

    /// The static path: runs `analysis` against the policy and records the
    /// verdict. A certified program yields a [`Certificate`] for native
    /// (unmonitored) attesting runs.
    pub fn certify(
        &self,
        analysis: Analysis,
        log: &mut AuditLog,
    ) -> Result<CertifyOutcome<'_>, PolicyError> {
        let cert = certify(&self.fc, self.allow, analysis);
        let mut fields = self.base_fields();
        fields.push((
            "analysis".to_string(),
            Json::Str(analysis.name().to_string()),
        ));
        fields.push((
            "verdict".to_string(),
            Json::Str(
                if cert.is_certified() {
                    "certified"
                } else {
                    "rejected"
                }
                .to_string(),
            ),
        ));
        if let Some(taint) = cert.taint() {
            fields.push(("taint".to_string(), indexset_json(&taint)));
        }
        log.append("certify", fields)?;
        Ok(match cert {
            Certification::Certified => CertifyOutcome::Certified(Certificate {
                enforcer: self,
                analysis,
            }),
            Certification::Rejected { taint } => CertifyOutcome::Rejected { taint },
        })
    }

    /// The lattice static path: runs the intransitive-flow certifier
    /// against the full labeling bound by [`Enforcer::new_lattice`] (not
    /// just the fixed-clearance reduction — sanctioned `declassify` boxes
    /// can certify programs every transitive analysis rejects). Records
    /// the labeling, flow edges, clearance and verdict in the audit trail;
    /// a certified program yields a [`Certificate`] whose runs attest
    /// under [`crate::proof::Certified`] with the `lattice` analysis.
    pub fn certify_lattice(&self, log: &mut AuditLog) -> Result<CertifyOutcome<'_>, PolicyError> {
        let Some(binding) = &self.lattice else {
            return Err(PolicyError::Usage(
                "certify_lattice needs a lattice binding (Enforcer::new_lattice)".to_string(),
            ));
        };
        let cert = enf_static::label::certify_lattice(
            &self.fc,
            &binding.classification,
            &binding.flow,
            &binding.clearance,
        );
        let mut fields = self.base_fields();
        fields.push((
            "analysis".to_string(),
            Json::Str(Analysis::LatticeCertified.name().to_string()),
        ));
        fields.push((
            "labels".to_string(),
            Json::Arr(
                binding
                    .classification
                    .labels()
                    .iter()
                    .map(|l| Json::Str(l.name().to_string()))
                    .collect(),
            ),
        ));
        fields.push((
            "flow".to_string(),
            Json::Arr(
                binding
                    .flow
                    .edges()
                    .iter()
                    .map(|(a, b)| {
                        Json::Arr(vec![
                            Json::Str(a.name().to_string()),
                            Json::Str(b.name().to_string()),
                        ])
                    })
                    .collect(),
            ),
        ));
        fields.push((
            "clearance".to_string(),
            Json::Str(binding.clearance.name().to_string()),
        ));
        fields.push((
            "verdict".to_string(),
            Json::Str(
                if cert.is_certified() {
                    "certified"
                } else {
                    "rejected"
                }
                .to_string(),
            ),
        ));
        if let Some(taint) = cert.taint() {
            fields.push(("taint".to_string(), indexset_json(&taint)));
        }
        log.append("certify", fields)?;
        Ok(match cert {
            Certification::Certified => CertifyOutcome::Certified(Certificate {
                enforcer: self,
                analysis: Analysis::LatticeCertified,
            }),
            Certification::Rejected { taint } => CertifyOutcome::Rejected { taint },
        })
    }

    fn grid(&self, span: i64) -> Grid {
        Grid::hypercube(self.arity, -span..=span)
    }

    fn policy(&self) -> Allow {
        Allow::from_set(self.arity, self.allow)
    }

    fn append_sweep(
        &self,
        log: &mut AuditLog,
        mode: &str,
        span: i64,
        extra: Vec<(String, Json)>,
    ) -> Result<(), EnfError> {
        let mut fields = self.base_fields();
        fields.push(("mode".to_string(), Json::Str(mode.to_string())));
        fields.push(("span".to_string(), Json::Int(i128::from(span))));
        fields.extend(extra);
        log.append("sweep", fields)
    }

    fn sweep_outcome(&self, coverage: Coverage<()>) -> SweepOutcome<'_> {
        let warrant = (coverage.verdict == Verdict::Confirmed).then_some(SoundnessWarrant {
            enforcer: self,
            checked: coverage.checked,
            total: coverage.total,
        });
        SweepOutcome {
            checked: coverage.checked,
            total: coverage.total,
            verdict: coverage.verdict,
            warrant,
        }
    }

    /// The exhaustive path: checks mechanism soundness over
    /// `[-span, span]^k` under the active discipline and engine. A
    /// confirmed sweep yields a [`SoundnessWarrant`].
    pub fn sweep(
        &self,
        span: i64,
        eval: &EvalConfig,
        ctl: &CancelToken,
        log: &mut AuditLog,
    ) -> Result<SweepOutcome<'_>, PolicyError> {
        let grid = self.grid(span);
        let policy = self.policy();
        let coverage = match self.discipline {
            Discipline::Timed => {
                let m = TimedMechanism::new(self.fc.clone(), self.allow).with_fuel(self.fuel);
                coverage_of(&Identity::new(&m), &policy, &grid, eval, ctl)?
            }
            Discipline::HighWater => match self.engine {
                Engine::Vm => coverage_of(
                    &VmSurveillance::highwater(self.program(), self.allow),
                    &policy,
                    &grid,
                    eval,
                    ctl,
                )?,
                Engine::Ast => coverage_of(
                    &HighWater::new(self.program(), self.allow),
                    &policy,
                    &grid,
                    eval,
                    ctl,
                )?,
            },
            Discipline::Surveillance => match self.engine {
                Engine::Vm => coverage_of(
                    &VmSurveillance::new(self.program(), self.allow),
                    &policy,
                    &grid,
                    eval,
                    ctl,
                )?,
                Engine::Ast => coverage_of(
                    &Surveillance::new(self.program(), self.allow),
                    &policy,
                    &grid,
                    eval,
                    ctl,
                )?,
            },
        };
        self.append_sweep(
            log,
            "fixed",
            span,
            sweep_fields(coverage.checked, coverage.total, coverage.verdict),
        )?;
        Ok(self.sweep_outcome(coverage))
    }

    /// The exhaustive path with fault tolerance: persists progress every
    /// `block` inputs to `checkpoint_path` and resumes from `resume_path`.
    /// `salt` ties checkpoints to this exact sweep (see [`check_salt`]).
    #[allow(clippy::too_many_arguments)]
    pub fn sweep_checkpointed(
        &self,
        span: i64,
        eval: &EvalConfig,
        ctl: &CancelToken,
        salt: u64,
        block: usize,
        resume_path: Option<&Path>,
        checkpoint_path: Option<&Path>,
        log: &mut AuditLog,
    ) -> Result<SweepOutcome<'_>, PolicyError> {
        let grid = self.grid(span);
        let policy = self.policy();
        let coverage = match self.discipline {
            Discipline::Timed => {
                return Err(PolicyError::Usage(
                    "timed sweeps cannot be checkpointed (their output shape has no codec)"
                        .to_string(),
                ))
            }
            Discipline::HighWater => match self.engine {
                Engine::Vm => checkpointed_coverage(
                    &VmSurveillance::highwater(self.program(), self.allow),
                    &policy,
                    &grid,
                    eval,
                    ctl,
                    salt,
                    block,
                    resume_path,
                    checkpoint_path,
                )?,
                Engine::Ast => checkpointed_coverage(
                    &HighWater::new(self.program(), self.allow),
                    &policy,
                    &grid,
                    eval,
                    ctl,
                    salt,
                    block,
                    resume_path,
                    checkpoint_path,
                )?,
            },
            Discipline::Surveillance => match self.engine {
                Engine::Vm => checkpointed_coverage(
                    &VmSurveillance::new(self.program(), self.allow),
                    &policy,
                    &grid,
                    eval,
                    ctl,
                    salt,
                    block,
                    resume_path,
                    checkpoint_path,
                )?,
                Engine::Ast => checkpointed_coverage(
                    &Surveillance::new(self.program(), self.allow),
                    &policy,
                    &grid,
                    eval,
                    ctl,
                    salt,
                    block,
                    resume_path,
                    checkpoint_path,
                )?,
            },
        };
        self.append_sweep(
            log,
            "checkpointed",
            span,
            sweep_fields(coverage.checked, coverage.total, coverage.verdict),
        )?;
        Ok(self.sweep_outcome(coverage))
    }

    /// The scheduled oracle: soundness under every bounded policy schedule
    /// (at most `cap` of the canonical enumeration). Runs on the stepper;
    /// an unsound schedule's witness is independently replay-validated.
    pub fn sweep_scheduled(
        &self,
        span: i64,
        eval: &EvalConfig,
        cap: Option<usize>,
        log: &mut AuditLog,
    ) -> Result<ScheduledOutcome, PolicyError> {
        let program = self.program();
        let report =
            check_soundness_scheduled(&program, &self.policy(), &self.grid(span), eval, cap);
        let outcome = match report {
            ScheduledReport::Sound { schedules, inputs } => {
                ScheduledOutcome::Sound { schedules, inputs }
            }
            ScheduledReport::Unsound(witness) => {
                let validated = validate_scheduled_witness(&program, &witness);
                ScheduledOutcome::Unsound { witness, validated }
            }
        };
        let extra = match &outcome {
            ScheduledOutcome::Sound { schedules, inputs } => vec![
                ("verdict".to_string(), Json::Str("sound".to_string())),
                ("schedules".to_string(), Json::Int(*schedules as i128)),
                ("inputs".to_string(), Json::Int(*inputs as i128)),
            ],
            ScheduledOutcome::Unsound { witness, validated } => vec![
                ("verdict".to_string(), Json::Str("unsound".to_string())),
                (
                    "schedule_index".to_string(),
                    Json::Int(witness.schedule_index as i128),
                ),
                ("validated".to_string(), Json::Bool(*validated)),
            ],
        };
        self.append_sweep(log, "scheduled", span, extra)?;
        Ok(outcome)
    }
}

/// Runs the fault-tolerant soundness sweep, keeping only coverage.
fn coverage_of<M>(
    mechanism: &M,
    policy: &Allow,
    grid: &Grid,
    eval: &EvalConfig,
    ctl: &CancelToken,
) -> Result<Coverage<()>, EnfError>
where
    M: Mechanism + Sync,
    M::Out: Eq + std::hash::Hash + Send,
{
    Ok(try_check_soundness_with(mechanism, policy, grid, false, eval, ctl)?.map(|_| ()))
}

/// Runs the checkpointed soundness sweep, resuming and persisting through
/// the atomic checkpoint files.
#[allow(clippy::too_many_arguments)]
fn checkpointed_coverage<M>(
    mechanism: &M,
    policy: &Allow,
    grid: &Grid,
    eval: &EvalConfig,
    ctl: &CancelToken,
    salt: u64,
    block: usize,
    resume_path: Option<&Path>,
    checkpoint_path: Option<&Path>,
) -> Result<Coverage<()>, EnfError>
where
    M: Mechanism<Out = ExecValue> + Sync,
{
    let resume = match resume_path {
        Some(p) => {
            let doc = read_checkpoint_file(p)?;
            Some(SoundnessCheckpoint::from_json(&ExecCodec, &doc)?)
        }
        None => None,
    };
    let mut sink = |ckpt: &SoundnessCheckpoint<ExecValue, Vec<V>>| match checkpoint_path {
        Some(p) => write_checkpoint_file(p, &ckpt.to_json(&ExecCodec)),
        None => Ok(()),
    };
    let coverage = check_soundness_checkpointed(
        mechanism,
        policy,
        grid,
        false,
        eval,
        ctl,
        salt,
        block,
        resume.as_ref(),
        &mut sink,
    )?;
    Ok(coverage.map(|_| ()))
}

/// Fingerprint salt for checkpointed sweeps: hashes the program text and
/// every sweep parameter, so a checkpoint resumed under a different
/// program, policy, grid, fuel, or mechanism variant is rejected instead
/// of silently merged. The engine is deliberately absent — the two
/// engines are bit-identical, so checkpoints are interchangeable.
pub fn check_salt(src: &str, allow: IndexSet, span: i64, fuel: u64, highwater: bool) -> u64 {
    let mut words: Vec<u64> = src.bytes().map(u64::from).collect();
    words.extend(allow.iter().map(|i| i as u64));
    words.push(u64::MAX); // separator between the index list and params
    words.push(span as u64);
    words.push(fuel);
    words.push(u64::from(highwater));
    fingerprint(&words)
}

/// Checkpoint codec for the dynamic mechanisms' output shape:
/// [`ExecValue`] outputs and `Vec<V>` policy views.
struct ExecCodec;

impl CheckpointCodec<ExecValue, Vec<V>> for ExecCodec {
    fn encode_out(&self, out: &ExecValue) -> Json {
        match out {
            ExecValue::Value(v) => Json::Int(i128::from(*v)),
            ExecValue::Diverged => Json::Null,
        }
    }

    fn decode_out(&self, json: &Json) -> Result<ExecValue, String> {
        match json {
            Json::Null => Ok(ExecValue::Diverged),
            _ => json
                .as_int()
                .and_then(|n| V::try_from(n).ok())
                .map(ExecValue::Value)
                .ok_or_else(|| "expected integer output or null".to_string()),
        }
    }

    fn encode_view(&self, view: &Vec<V>) -> Json {
        Json::Arr(view.iter().map(|v| Json::Int(i128::from(*v))).collect())
    }

    fn decode_view(&self, json: &Json) -> Result<Vec<V>, String> {
        json.as_arr()
            .ok_or_else(|| "expected view array".to_string())?
            .iter()
            .map(|item| {
                item.as_int()
                    .and_then(|n| V::try_from(n).ok())
                    .ok_or_else(|| "expected integer view element".to_string())
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::verify_chain;
    use crate::capability::Capability;
    use crate::sink::Sink;
    use enf_flowchart::parse;

    const LEAKY: &str = "program(2) { y := x1 + x2; }";

    fn enforcer(src: &str, allow: &[usize]) -> Enforcer {
        let fc = parse(src).unwrap();
        Enforcer::new(fc, IndexSet::from_iter(allow.iter().copied())).unwrap()
    }

    fn release<P: Proof>(verdict: RunVerdict<P>, log: &mut AuditLog) -> V {
        match verdict {
            RunVerdict::Released(v) => {
                let cap = Capability::issue("test", log).unwrap();
                Sink::new(cap, log).release(v).unwrap()
            }
            RunVerdict::Refused(r) => panic!("refused: {r:?}"),
        }
    }

    #[test]
    fn policy_outside_arity_is_rejected() {
        let fc = parse(LEAKY).unwrap();
        assert!(matches!(
            Enforcer::new(fc, IndexSet::from_iter([3])),
            Err(PolicyError::Usage(_))
        ));
    }

    #[test]
    fn arity_mismatch_is_usage() {
        let e = enforcer(LEAKY, &[1, 2]);
        let mut log = AuditLog::in_memory();
        assert!(matches!(
            e.surveil(Tainted::new(vec![1]), &mut log),
            Err(PolicyError::Usage(_))
        ));
    }

    #[test]
    fn surveil_releases_under_full_policy() {
        let e = enforcer(LEAKY, &[1, 2]);
        let mut log = AuditLog::in_memory();
        let verdict = e.surveil(Tainted::new(vec![4, 7]), &mut log).unwrap();
        assert_eq!(release(verdict, &mut log), 11);
        assert!(verify_chain(&log.render()).is_intact());
        let kinds: Vec<_> = log
            .lines()
            .iter()
            .map(|l| {
                enf_core::json::parse(l)
                    .unwrap()
                    .get("kind")
                    .and_then(Json::as_str)
                    .unwrap()
                    .to_string()
            })
            .collect();
        assert_eq!(kinds, ["attest", "grant", "release"]);
    }

    #[test]
    fn surveil_refuses_a_leak_and_records_it() {
        let e = enforcer(LEAKY, &[1]);
        let mut log = AuditLog::in_memory();
        match e.surveil(Tainted::new(vec![4, 7]), &mut log).unwrap() {
            RunVerdict::Refused(Refusal::Violation {
                taint, disallowed, ..
            }) => {
                assert!(taint.contains(2));
                assert!(disallowed.contains(2));
            }
            other => panic!("expected violation, got {other:?}"),
        }
        assert_eq!(log.len(), 1);
        assert!(log.lines()[0].contains("\"kind\":\"refuse\""));
    }

    #[test]
    fn engines_agree_on_the_verdict_and_audit_shape() {
        for allow in [&[1_usize, 2][..], &[1][..]] {
            let mut logs = Vec::new();
            for engine in [Engine::Ast, Engine::Vm] {
                let e = enforcer(LEAKY, allow).with_engine(engine);
                let mut log = AuditLog::in_memory();
                let _ = e.surveil(Tainted::new(vec![2, 3]), &mut log).unwrap();
                // Engine name differs by construction; blank it out to
                // compare the rest of the record byte-for-byte.
                logs.push(log.render().replace("\"ast\"", "\"vm\""));
            }
            // Hashes differ (the engine field is hashed); compare kinds
            // and verdict-bearing fields instead.
            let strip = |s: &str| {
                s.lines()
                    .map(|l| {
                        let j = enf_core::json::parse(l).unwrap();
                        format!(
                            "{:?}/{:?}/{:?}",
                            j.get("kind").and_then(Json::as_str),
                            j.get("outcome").and_then(Json::as_str),
                            j.get("evidence").map(Json::render)
                        )
                    })
                    .collect::<Vec<_>>()
            };
            assert_eq!(strip(&logs[0]), strip(&logs[1]));
        }
    }

    #[test]
    fn certificate_runs_natively_and_attests() {
        let e = enforcer(LEAKY, &[1, 2]);
        let mut log = AuditLog::in_memory();
        let outcome = e.certify(Analysis::Surveillance, &mut log).unwrap();
        let cert = match outcome {
            CertifyOutcome::Certified(c) => c,
            CertifyOutcome::Rejected { taint } => panic!("rejected with taint {taint}"),
        };
        let v = cert.run(Tainted::new(vec![4, 7]), &mut log).unwrap();
        assert_eq!(v.evidence().kind(), "certificate");
        let cap = Capability::issue("test", &mut log).unwrap();
        let y = Sink::new(cap, &mut log).release(v).unwrap();
        assert_eq!(y, ExecValue::Value(11));
        assert!(verify_chain(&log.render()).is_intact());
    }

    #[test]
    fn rejected_program_yields_no_certificate() {
        let e = enforcer(LEAKY, &[1]);
        let mut log = AuditLog::in_memory();
        match e.certify(Analysis::Surveillance, &mut log).unwrap() {
            CertifyOutcome::Rejected { taint } => assert!(taint.contains(2)),
            CertifyOutcome::Certified(_) => panic!("leaky program certified"),
        }
        assert!(log.lines()[0].contains("\"verdict\":\"rejected\""));
    }

    #[test]
    fn sweep_warrant_attests_with_coverage_evidence() {
        let e = enforcer(LEAKY, &[1, 2]);
        let mut log = AuditLog::in_memory();
        let outcome = e
            .sweep(2, &EvalConfig::default(), &CancelToken::new(), &mut log)
            .unwrap();
        assert_eq!(outcome.verdict(), Verdict::Confirmed);
        let warrant = outcome.warrant().expect("confirmed sweep has a warrant");
        let verdict = warrant.run(Tainted::new(vec![1, 2]), &mut log).unwrap();
        let y = release(verdict, &mut log);
        assert_eq!(y, 3);
        let release_line = log.lines().last().unwrap();
        assert!(release_line.contains("\"kind\":\"coverage\""));
        assert!(verify_chain(&log.render()).is_intact());
    }

    #[test]
    fn unsound_sweep_has_no_warrant() {
        // Surveillance of y := x1 + x2 under allow(1) refuses everywhere —
        // use a program sound on some inputs but not others.
        let e = enforcer(
            "program(2) { if x2 > 0 { y := x1; } else { y := x2; } }",
            &[1],
        );
        let mut log = AuditLog::in_memory();
        let outcome = e
            .sweep(2, &EvalConfig::default(), &CancelToken::new(), &mut log)
            .unwrap();
        if outcome.verdict() != Verdict::Confirmed {
            assert!(outcome.warrant().is_none());
        }
    }

    #[test]
    fn lattice_certificate_releases_the_declared_bit() {
        // The full lattice pipeline: password_release binds at clearance
        // unclassified, the intransitive certifier accepts the sanctioned
        // one-bit release, and the certificate mints a Verified value the
        // sink can let out.
        let lp = enf_flowchart::corpus::password_release_labeled();
        let e = Enforcer::new_lattice(lp, Level::Unclassified).unwrap();
        assert_eq!(e.clearance(), Some(Level::Unclassified));
        // The induced reduction closes over the release edge: both inputs
        // are readable at the bottom clearance.
        assert_eq!(e.allow(), IndexSet::from_iter([1, 2]));
        let mut log = AuditLog::in_memory();
        let cert = match e.certify_lattice(&mut log).unwrap() {
            CertifyOutcome::Certified(c) => c,
            CertifyOutcome::Rejected { taint } => panic!("rejected with taint {taint}"),
        };
        assert_eq!(cert.analysis(), Analysis::LatticeCertified);
        let v = cert.run(Tainted::new(vec![7, 7]), &mut log).unwrap();
        let cap = Capability::issue("test", &mut log).unwrap();
        let y = Sink::new(cap, &mut log).release(v).unwrap();
        assert_eq!(y, ExecValue::Value(1));
        assert!(verify_chain(&log.render()).is_intact());
        assert!(log.lines()[0].contains("\"analysis\":\"lattice\""));
        assert!(log.lines()[0].contains("\"clearance\":\"unclassified\""));
    }

    #[test]
    fn lattice_rejection_names_the_unmediated_index() {
        // Same program without the release edge: the declassify box is
        // unsanctioned, so certification fails and no certificate exists.
        let lp = enf_flowchart::parse_labeled(
            "program(2)
             labels { x1: secret; }
             { r1 := ite(x1 == x2, 1, 0); declassify(r1: 1 ~>); y := r1; }",
        )
        .unwrap();
        let e = Enforcer::new_lattice(lp, Level::Unclassified).unwrap();
        assert_eq!(e.allow(), IndexSet::from_iter([2]));
        let mut log = AuditLog::in_memory();
        match e.certify_lattice(&mut log).unwrap() {
            CertifyOutcome::Rejected { taint } => assert_eq!(taint, IndexSet::from_iter([1])),
            CertifyOutcome::Certified(_) => panic!("unsanctioned release certified"),
        }
    }

    #[test]
    fn certify_lattice_without_binding_is_usage() {
        let e = enforcer(LEAKY, &[1, 2]);
        let mut log = AuditLog::in_memory();
        assert!(matches!(
            e.certify_lattice(&mut log),
            Err(PolicyError::Usage(_))
        ));
    }

    #[test]
    fn scheduled_sweep_reports_soundness() {
        let e = enforcer(LEAKY, &[1, 2]);
        let mut log = AuditLog::in_memory();
        let outcome = e
            .sweep_scheduled(1, &EvalConfig::default(), Some(4), &mut log)
            .unwrap();
        assert!(outcome.is_sound());
        assert!(log.lines()[0].contains("\"mode\":\"scheduled\""));
    }
}
