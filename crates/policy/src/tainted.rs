//! Untrusted inputs: the `Tainted<T>` entry point of the typed pipeline.

use enf_core::V;

/// A value that entered the system from outside and has not passed any
/// monitor.
///
/// `Tainted<T>` is deliberately opaque: there is no `Deref`, no getter,
/// and no `map` — the only way anything flows out of it is through a
/// monitor-backed path on [`crate::Enforcer`] (static certification, a
/// monitored run, or an exhaustive soundness sweep), each of which
/// produces a [`crate::Verified`] value carrying its evidence. The
/// [`crate::ingest`] deserializers land here and nowhere else.
///
/// ```compile_fail
/// // Tainted is opaque: the wrapped value has no public accessor.
/// let t = enf_policy::Tainted::new(41_i64);
/// let _: i64 = t.0;
/// ```
pub struct Tainted<T> {
    value: T,
}

impl<T> Tainted<T> {
    /// Wraps an untrusted value. Tainting is always safe — it only ever
    /// *removes* privileges — so the constructor is public.
    pub fn new(value: T) -> Tainted<T> {
        Tainted { value }
    }

    /// Monitor-internal read access. Crate-private: enforcement code may
    /// inspect tainted data, embedders may not.
    pub(crate) fn peek(&self) -> &T {
        &self.value
    }
}

impl Tainted<Vec<V>> {
    /// The arity of a tainted input tuple. Tuple *length* is shape
    /// metadata the embedder already knows (it sized the request), not
    /// information about the values, so exposing it is harmless and lets
    /// callers report arity mismatches before running the monitor.
    pub fn arity(&self) -> usize {
        self.value.len()
    }
}

impl<T> std::fmt::Debug for Tainted<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never render the value: tainted data must not leak through
        // logging either.
        f.write_str("Tainted(<unverified>)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn debug_redacts() {
        let t = Tainted::new(42);
        assert_eq!(format!("{t:?}"), "Tainted(<unverified>)");
    }

    #[test]
    fn arity_is_visible_for_tuples() {
        let t = Tainted::new(vec![1 as V, 2, 3]);
        assert_eq!(t.arity(), 3);
    }
}
