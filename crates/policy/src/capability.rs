//! Release authority: sealed `Capability` tokens.

use crate::audit::AuditLog;
use enf_core::{EnfError, Json};

/// The authority to release verified values through a [`crate::Sink`] to
/// one named channel.
///
/// Capabilities are typed proof objects, not flags: a `Capability` cannot
/// be constructed from fields, cloned, or deserialized —
///
/// ```compile_fail,E0451
/// let c = enf_policy::Capability { channel: "stdout".to_string() };
/// ```
///
/// ```compile_fail,E0308
/// // No Clone impl: `c.clone()` only reborrows the reference.
/// fn dup(c: &enf_policy::Capability) -> enf_policy::Capability { c.clone() }
/// ```
///
/// The one mint is [`Capability::issue`], which **requires an audit log**
/// and appends a `grant` record before handing the token out. Authority
/// therefore flows explicitly through the call graph (a library function
/// that releases data must be *passed* a capability by its caller), and
/// every capability in existence is named in some audit trail.
#[derive(Debug)]
pub struct Capability {
    channel: String,
}

impl Capability {
    /// Mints the capability to release on `channel`, recording the grant.
    pub fn issue(channel: &str, log: &mut AuditLog) -> Result<Capability, EnfError> {
        log.append(
            "grant",
            vec![("channel".to_string(), Json::Str(channel.to_string()))],
        )?;
        Ok(Capability {
            channel: channel.to_string(),
        })
    }

    /// The channel this capability authorizes.
    pub fn channel(&self) -> &str {
        &self.channel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::verify_chain;

    #[test]
    fn issue_leaves_a_grant_record() {
        let mut log = AuditLog::in_memory();
        let cap = Capability::issue("stdout", &mut log).unwrap();
        assert_eq!(cap.channel(), "stdout");
        assert_eq!(log.len(), 1);
        assert!(log.lines()[0].contains("\"kind\":\"grant\""));
        assert!(verify_chain(&log.render()).is_intact());
    }
}
