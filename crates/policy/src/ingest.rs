//! Deserialization into the pipeline: every parser lands in [`Tainted`].
//!
//! There is deliberately no path from bytes to [`crate::Verified`] — data
//! arriving from outside is untrusted by construction, so the ingest
//! functions only ever mint `Tainted` wrappers. Conversions *between*
//! tainted shapes (JSON document → input tuple) happen inside this crate,
//! where monitor code may peek; the taint is preserved end to end.

use crate::tainted::Tainted;
use enf_core::{Json, V};

/// Parses a JSON document into a tainted value. The text is untrusted, so
/// the parse lands in [`Tainted`]; convert with [`tuple_from_json`].
pub fn tainted_json(text: &str) -> Result<Tainted<Json>, String> {
    enf_core::json::parse(text).map(Tainted::new)
}

/// Extracts a tainted input tuple from a tainted JSON array of integers.
/// Taint-preserving: the document never leaves the wrapper.
pub fn tuple_from_json(doc: &Tainted<Json>) -> Result<Tainted<Vec<V>>, String> {
    let arr = doc
        .peek()
        .as_arr()
        .ok_or_else(|| "expected a JSON array of integers".to_string())?;
    let vals = arr
        .iter()
        .enumerate()
        .map(|(i, item)| {
            item.as_int()
                .and_then(|n| V::try_from(n).ok())
                .ok_or_else(|| format!("element {i} is not an integer input"))
        })
        .collect::<Result<Vec<V>, String>>()?;
    Ok(Tainted::new(vals))
}

/// Parses a comma-separated input tuple (the CLI's `--input` syntax: an
/// empty string is the empty tuple, elements may carry whitespace).
pub fn tainted_csv(spec: &str) -> Result<Tainted<Vec<V>>, std::num::ParseIntError> {
    let vals: Result<Vec<V>, _> = if spec.trim().is_empty() {
        Ok(Vec::new())
    } else {
        spec.split(',').map(|p| p.trim().parse::<V>()).collect()
    };
    vals.map(Tainted::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_roundtrip() {
        assert_eq!(tainted_csv("3, 4").unwrap().arity(), 2);
        assert_eq!(tainted_csv("").unwrap().arity(), 0);
        assert!(tainted_csv("3,x").is_err());
    }

    #[test]
    fn json_tuple_conversion_preserves_taint() {
        let doc = tainted_json("[1, 2, 3]").unwrap();
        let tuple = tuple_from_json(&doc).unwrap();
        assert_eq!(tuple.arity(), 3);
        assert_eq!(format!("{tuple:?}"), "Tainted(<unverified>)");
    }

    #[test]
    fn json_tuple_rejects_non_arrays_and_non_integers() {
        let doc = tainted_json("{\"a\":1}").unwrap();
        assert!(tuple_from_json(&doc).is_err());
        let doc = tainted_json("[1, \"two\"]").unwrap();
        assert!(tuple_from_json(&doc).unwrap_err().contains("element 1"));
    }
}
