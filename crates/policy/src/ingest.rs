//! Deserialization into the pipeline: every parser lands in [`Tainted`].
//!
//! There is deliberately no path from bytes to [`crate::Verified`] — data
//! arriving from outside is untrusted by construction, so the ingest
//! functions only ever mint `Tainted` wrappers. Conversions *between*
//! tainted shapes (JSON document → input tuple) happen inside this crate,
//! where monitor code may peek; the taint is preserved end to end.
//!
//! This module is the server's untrusted input path, so it is hardened
//! fail-closed: malformed, oversized, or non-UTF-8 input returns a
//! structured [`IngestError`] — never a panic, never an unbounded
//! allocation. Raw socket bytes enter through [`tainted_json_bytes`] /
//! [`tainted_csv_bytes`], which bound the input *before* decoding it.

use crate::tainted::Tainted;
use enf_core::{Json, V};
use std::fmt;

/// Largest document (bytes) the ingest path will even look at. Anything
/// larger is rejected up front with [`IngestError::Oversized`], before
/// UTF-8 validation or parsing touch it.
pub const MAX_INGEST_BYTES: usize = 1 << 20;

/// Largest input tuple the ingest path will mint. Real programs have a
/// handful of inputs; a million-element tuple is an attack, not a request.
pub const MAX_TUPLE_ARITY: usize = 4096;

/// Why untrusted input was refused at the ingest boundary.
///
/// Every variant is a *refusal*, not a fault: the input never becomes a
/// [`Tainted`] value, and the caller can render the reason to the client
/// without leaking anything but the offending position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IngestError {
    /// The document exceeds [`MAX_INGEST_BYTES`] (or a caller-supplied
    /// bound); it was rejected before being decoded.
    Oversized {
        /// The enforced limit in bytes.
        limit: usize,
        /// The document's actual size in bytes.
        actual: usize,
    },
    /// The bytes are not valid UTF-8.
    NotUtf8 {
        /// Length of the valid prefix, in bytes.
        valid_up_to: usize,
    },
    /// The text failed to parse (JSON syntax error, bad integer literal).
    Syntax {
        /// Parser-provided description.
        detail: String,
    },
    /// A tuple document was not a JSON array.
    NotAnArray,
    /// Tuple element `index` is not a representable integer input.
    BadElement {
        /// Zero-based element position.
        index: usize,
    },
    /// The tuple has more than [`MAX_TUPLE_ARITY`] elements.
    TooManyElements {
        /// The enforced element limit.
        limit: usize,
        /// The tuple's actual element count.
        actual: usize,
    },
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Oversized { limit, actual } => {
                write!(f, "input is {actual} bytes, limit is {limit}")
            }
            IngestError::NotUtf8 { valid_up_to } => {
                write!(
                    f,
                    "input is not valid UTF-8 (valid up to byte {valid_up_to})"
                )
            }
            IngestError::Syntax { detail } => write!(f, "malformed input: {detail}"),
            IngestError::NotAnArray => write!(f, "expected a JSON array of integers"),
            IngestError::BadElement { index } => {
                write!(f, "element {index} is not an integer input")
            }
            IngestError::TooManyElements { limit, actual } => {
                write!(f, "tuple has {actual} elements, limit is {limit}")
            }
        }
    }
}

impl std::error::Error for IngestError {}

/// Rejects oversized documents before anything decodes them.
fn check_size(len: usize) -> Result<(), IngestError> {
    if len > MAX_INGEST_BYTES {
        Err(IngestError::Oversized {
            limit: MAX_INGEST_BYTES,
            actual: len,
        })
    } else {
        Ok(())
    }
}

/// Parses a JSON document into a tainted value. The text is untrusted, so
/// the parse lands in [`Tainted`]; convert with [`tuple_from_json`].
pub fn tainted_json(text: &str) -> Result<Tainted<Json>, IngestError> {
    check_size(text.len())?;
    enf_core::json::parse(text)
        .map(Tainted::new)
        .map_err(|detail| IngestError::Syntax { detail })
}

/// [`tainted_json`] on raw bytes — the wire-facing entry point. Size is
/// checked before UTF-8 validation, UTF-8 before parsing; the first
/// violated bound names the refusal.
pub fn tainted_json_bytes(bytes: &[u8]) -> Result<Tainted<Json>, IngestError> {
    check_size(bytes.len())?;
    let text = std::str::from_utf8(bytes).map_err(|e| IngestError::NotUtf8 {
        valid_up_to: e.valid_up_to(),
    })?;
    tainted_json(text)
}

/// Extracts a tainted input tuple from a tainted JSON array of integers.
/// Taint-preserving: the document never leaves the wrapper.
pub fn tuple_from_json(doc: &Tainted<Json>) -> Result<Tainted<Vec<V>>, IngestError> {
    let arr = doc.peek().as_arr().ok_or(IngestError::NotAnArray)?;
    if arr.len() > MAX_TUPLE_ARITY {
        return Err(IngestError::TooManyElements {
            limit: MAX_TUPLE_ARITY,
            actual: arr.len(),
        });
    }
    let vals = arr
        .iter()
        .enumerate()
        .map(|(i, item)| {
            item.as_int()
                .and_then(|n| V::try_from(n).ok())
                .ok_or(IngestError::BadElement { index: i })
        })
        .collect::<Result<Vec<V>, IngestError>>()?;
    Ok(Tainted::new(vals))
}

/// Parses a comma-separated input tuple (the CLI's `--input` syntax: an
/// empty string is the empty tuple, elements may carry whitespace).
pub fn tainted_csv(spec: &str) -> Result<Tainted<Vec<V>>, IngestError> {
    check_size(spec.len())?;
    if spec.trim().is_empty() {
        return Ok(Tainted::new(Vec::new()));
    }
    let mut vals = Vec::new();
    for (i, part) in spec.split(',').enumerate() {
        if vals.len() >= MAX_TUPLE_ARITY {
            return Err(IngestError::TooManyElements {
                limit: MAX_TUPLE_ARITY,
                actual: spec.split(',').count(),
            });
        }
        let v = part.trim().parse::<V>().map_err(|_| IngestError::Syntax {
            detail: format!("element {i} is not an integer: {:?}", part.trim()),
        })?;
        vals.push(v);
    }
    Ok(Tainted::new(vals))
}

/// [`tainted_csv`] on raw bytes — the wire-facing entry point.
pub fn tainted_csv_bytes(bytes: &[u8]) -> Result<Tainted<Vec<V>>, IngestError> {
    check_size(bytes.len())?;
    let text = std::str::from_utf8(bytes).map_err(|e| IngestError::NotUtf8 {
        valid_up_to: e.valid_up_to(),
    })?;
    tainted_csv(text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn csv_roundtrip() {
        assert_eq!(tainted_csv("3, 4").unwrap().arity(), 2);
        assert_eq!(tainted_csv("").unwrap().arity(), 0);
        assert!(matches!(
            tainted_csv("3,x"),
            Err(IngestError::Syntax { .. })
        ));
    }

    #[test]
    fn json_tuple_conversion_preserves_taint() {
        let doc = tainted_json("[1, 2, 3]").unwrap();
        let tuple = tuple_from_json(&doc).unwrap();
        assert_eq!(tuple.arity(), 3);
        assert_eq!(format!("{tuple:?}"), "Tainted(<unverified>)");
    }

    #[test]
    fn json_tuple_rejects_non_arrays_and_non_integers() {
        let doc = tainted_json("{\"a\":1}").unwrap();
        assert_eq!(tuple_from_json(&doc).unwrap_err(), IngestError::NotAnArray);
        let doc = tainted_json("[1, \"two\"]").unwrap();
        assert_eq!(
            tuple_from_json(&doc).unwrap_err(),
            IngestError::BadElement { index: 1 }
        );
    }

    #[test]
    fn oversized_input_is_rejected_before_parsing() {
        let big = "9".repeat(MAX_INGEST_BYTES + 1);
        assert!(matches!(
            tainted_csv(&big),
            Err(IngestError::Oversized { .. })
        ));
        assert!(matches!(
            tainted_json(&big),
            Err(IngestError::Oversized { .. })
        ));
        assert!(matches!(
            tainted_json_bytes(big.as_bytes()),
            Err(IngestError::Oversized { .. })
        ));
    }

    #[test]
    fn non_utf8_bytes_are_refused_with_position() {
        let bytes = [b'[', b'1', 0xFF, b']'];
        assert_eq!(
            tainted_json_bytes(&bytes).unwrap_err(),
            IngestError::NotUtf8 { valid_up_to: 2 }
        );
        assert_eq!(
            tainted_csv_bytes(&bytes).unwrap_err(),
            IngestError::NotUtf8 { valid_up_to: 2 }
        );
    }

    #[test]
    fn huge_tuples_are_refused() {
        let spec = vec!["1"; MAX_TUPLE_ARITY + 1].join(",");
        assert!(matches!(
            tainted_csv(&spec),
            Err(IngestError::TooManyElements { .. })
        ));
        let json = format!("[{}]", vec!["1"; MAX_TUPLE_ARITY + 1].join(","));
        let doc = tainted_json(&json).unwrap();
        assert_eq!(
            tuple_from_json(&doc).unwrap_err(),
            IngestError::TooManyElements {
                limit: MAX_TUPLE_ARITY,
                actual: MAX_TUPLE_ARITY + 1
            }
        );
    }

    #[test]
    fn out_of_range_integers_are_bad_elements_not_panics() {
        // i128 values outside V's range must refuse, not wrap or panic.
        let doc = tainted_json("[99999999999999999999999999]");
        // The hand-rolled parser may refuse at syntax level or the
        // conversion at element level; either way it's a structured error.
        match doc {
            Ok(d) => assert!(tuple_from_json(&d).is_err()),
            Err(e) => assert!(matches!(e, IngestError::Syntax { .. })),
        }
    }

    proptest! {
        /// Random byte soup: the wire-facing entry points must return a
        /// structured error or a valid tainted value — never panic.
        #[test]
        fn byte_soup_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
            match tainted_json_bytes(&bytes) {
                Ok(doc) => { let _ = tuple_from_json(&doc); }
                Err(e) => { let _ = e.to_string(); }
            }
            match tainted_csv_bytes(&bytes) {
                Ok(t) => prop_assert!(t.arity() <= MAX_TUPLE_ARITY),
                Err(e) => { let _ = e.to_string(); }
            }
        }

        /// Printable-garbage strings through the str entry points: same
        /// contract, exercising the parser deeper than raw bytes (which
        /// usually fail UTF-8 first).
        #[test]
        fn string_soup_never_panics(s in "\\PC*") {
            match tainted_json(&s) {
                Ok(doc) => { let _ = tuple_from_json(&doc); }
                Err(e) => { let _ = e.to_string(); }
            }
            let _ = tainted_csv(&s);
        }

        /// Well-formed integer arrays round-trip: bytes → JSON → tuple
        /// preserves every element (within V's range).
        #[test]
        fn integer_arrays_roundtrip(vals in proptest::collection::vec(any::<i32>(), 0..16)) {
            let json = format!(
                "[{}]",
                vals.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(",")
            );
            let doc = tainted_json_bytes(json.as_bytes()).expect("valid json");
            let tuple = tuple_from_json(&doc).expect("valid tuple");
            prop_assert_eq!(tuple.arity(), vals.len());
        }
    }
}
