//! Typed enforcement embedding: security policies as Rust types.
//!
//! This crate is the embedding surface of the enforcement toolkit. Where
//! the engine crates answer *"is this mechanism sound?"*, `enf_policy`
//! makes the answer load-bearing: untrusted data enters as [`Tainted`],
//! the only paths to [`Verified`] are monitor-backed, and the only way to
//! read a verified value is through a capability-gated [`Sink`] that
//! appends a hash-chained record to a tamper-evident [`AuditLog`]. The
//! type system enforces, at compile time, what Jones & Lipton's monitor
//! enforces at run time: no release without a passed check.
//!
//! # The pipeline
//!
//! ```text
//! bytes ──ingest──▶ Tainted<T> ──Enforcer──▶ Verified<T, P> ──Sink──▶ T
//!                                   │                          │
//!                                   └── audit: attest/refuse   └── audit: release
//! ```
//!
//! Three proof disciplines mint `Verified` values, one per variant of
//! [`Evidence`]:
//!
//! * **[`Enforcer::certify`]** — a static analysis certifies the program,
//!   and the [`Certificate`] runs it natively
//!   ([`proof::Certified`] / [`Evidence::Certificate`]);
//! * **[`Enforcer::surveil`]** — the dynamic monitor tracks taints through
//!   one run ([`proof::Monitored`] / [`Evidence::Trace`]);
//! * **[`Enforcer::sweep`]** — an exhaustive soundness sweep yields a
//!   [`SoundnessWarrant`] ([`proof::Swept`] / [`Evidence::Coverage`]).
//!
//! # Quickstart
//!
//! ```
//! use enf_policy::{ingest, AuditLog, Capability, Enforcer, RunVerdict, Sink};
//! use enf_core::IndexSet;
//!
//! // A program that reveals only its first input; policy allows index 1.
//! let fc = enf_flowchart::parse("program(2) { y := x1 * 2; }").unwrap();
//! let enforcer = Enforcer::new(fc, IndexSet::from_iter([1])).unwrap();
//!
//! // Untrusted bytes land tainted; authority is minted against the log.
//! let mut log = AuditLog::in_memory();
//! let input = ingest::tainted_csv("21, 999").unwrap();
//! let cap = Capability::issue("stdout", &mut log).unwrap();
//!
//! // The monitor attests, the sink releases, the log remembers.
//! let verdict = enforcer.surveil(input, &mut log).unwrap();
//! let RunVerdict::Released(v) = verdict else { panic!("refused") };
//! let y = Sink::new(cap, &mut log).release(v).unwrap();
//! assert_eq!(y, 42);
//! assert!(enf_policy::verify_chain(&log.render()).is_intact());
//! ```
//!
//! # Unforgeability
//!
//! The guarantees are structural, checked by the compiler:
//!
//! * [`Tainted`] has no accessor — tainted data cannot be read outside
//!   the monitor;
//! * [`Verified`] has a crate-private constructor, no `Clone`, and no
//!   value accessor — it cannot be forged, duplicated, or peeked;
//! * there is **no deserialization** into `Verified` or [`Capability`]:
//!   a serialized claim of verification is just bytes, and bytes land in
//!   `Tainted` —
//!
//! ```compile_fail,E0599
//! // No path from a parsed document to a Verified value.
//! let doc = enf_policy::ingest::tainted_json("{\"verified\": 41}").unwrap();
//! let v: enf_policy::Verified<i64, enf_policy::proof::Monitored> =
//!     enf_policy::Verified::from_json(doc);
//! ```
//!
//! * the [`proof::Proof`] trait is sealed — no fourth discipline can be
//!   invented outside this crate;
//! * [`Capability`] is minted only by [`Capability::issue`], which records
//!   the grant, so authority flows explicitly and auditably.

pub mod audit;
pub mod capability;
pub mod enforcer;
pub mod evidence;
pub mod ingest;
pub mod proof;
pub mod sink;
pub mod tainted;
pub mod verified;

pub use audit::{verify_chain, AuditLog, ChainVerdict, FlushPolicy, GENESIS};
pub use capability::Capability;
pub use enforcer::{
    check_salt, Certificate, CertifyOutcome, Discipline, Enforcer, Engine, PolicyError, Refusal,
    RunVerdict, ScheduledOutcome, SoundnessWarrant, SweepOutcome,
};
pub use evidence::Evidence;
pub use ingest::{
    tainted_csv, tainted_csv_bytes, tainted_json, tainted_json_bytes, tuple_from_json, IngestError,
};
pub use sink::{Auditable, Sink};
pub use tainted::Tainted;
pub use verified::Verified;
