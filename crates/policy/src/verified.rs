//! Monitor-attested values: `Verified<T, P>`.

use crate::evidence::Evidence;
use crate::proof::Proof;
use enf_core::IndexSet;
use std::marker::PhantomData;

/// A value the monitor has attested against a policy, under the proof
/// discipline `P`.
///
/// `Verified` is unforgeable by construction:
///
/// * the only constructor is crate-private — the three monitor-backed
///   paths on [`crate::Enforcer`] are the only mints;
/// * it does not implement `Clone`, `Copy`, or any deserialization, so a
///   verified value cannot be duplicated or conjured from bytes;
/// * the wrapped value has no accessor — the *only* way to read it is to
///   move the whole `Verified` through a capability-gated
///   [`crate::Sink`], which appends a release record to the audit trail
///   before handing the value back.
///
/// What *is* readable is metadata: the policy it was checked against,
/// the program fingerprint, and the [`Evidence`] for the attestation.
///
/// ```compile_fail,E0451
/// // No public constructor: the fields are private.
/// use enf_policy::{proof, Evidence, Verified};
/// let v = Verified::<i64, proof::Monitored> { value: 41 };
/// ```
///
/// ```compile_fail,E0308
/// // No Clone: a verified value cannot be duplicated into existence —
/// // `v.clone()` only reborrows the reference.
/// fn dup(
///     v: &enf_policy::Verified<i64, enf_policy::proof::Monitored>,
/// ) -> enf_policy::Verified<i64, enf_policy::proof::Monitored> {
///     v.clone()
/// }
/// ```
pub struct Verified<T, P: Proof> {
    value: T,
    policy_arity: usize,
    policy_allow: IndexSet,
    program: u64,
    evidence: Evidence,
    _proof: PhantomData<P>,
}

impl<T, P: Proof> Verified<T, P> {
    /// The one mint. Crate-private: only the enforcement paths attest.
    pub(crate) fn attest(
        value: T,
        policy_arity: usize,
        policy_allow: IndexSet,
        program: u64,
        evidence: Evidence,
    ) -> Verified<T, P> {
        Verified {
            value,
            policy_arity,
            policy_allow,
            program,
            evidence,
            _proof: PhantomData,
        }
    }

    /// The evidence behind the attestation (metadata only).
    pub fn evidence(&self) -> &Evidence {
        &self.evidence
    }

    /// The allowed index set of the policy this value was checked
    /// against.
    pub fn policy_allow(&self) -> IndexSet {
        self.policy_allow
    }

    /// The arity of the policy (and program).
    pub fn policy_arity(&self) -> usize {
        self.policy_arity
    }

    /// The fingerprint of the program that computed the value (see
    /// `Flowchart::fingerprint`).
    pub fn program_fingerprint(&self) -> u64 {
        self.program
    }

    /// Disassembles for release. Crate-private: [`crate::Sink::release`]
    /// is the only caller, so every extraction leaves an audit record.
    pub(crate) fn into_release(self) -> (T, usize, IndexSet, u64, Evidence) {
        (
            self.value,
            self.policy_arity,
            self.policy_allow,
            self.program,
            self.evidence,
        )
    }
}

impl<T, P: Proof> std::fmt::Debug for Verified<T, P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Metadata only: the guarded value must not leak through logging
        // — release through a Sink is the one way out.
        f.debug_struct("Verified")
            .field("proof", &P::NAME)
            .field("policy_allow", &self.policy_allow)
            .field("evidence", &self.evidence)
            .finish_non_exhaustive()
    }
}
