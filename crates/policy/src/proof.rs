//! Sealed proof disciplines: the `P` in [`crate::Verified<T, P>`].
//!
//! Each marker names one monitor-backed path from `Tainted` to
//! `Verified`. The [`Proof`] trait is sealed — implementing it outside
//! this crate is a compile error, so no embedding can invent a fourth
//! path:
//!
//! ```compile_fail
//! struct Forged;
//! impl enf_policy::proof::Proof for Forged {}
//! ```

mod sealed {
    pub trait Sealed {}
}

/// A monitor-backed verification discipline. Sealed: only the three
/// disciplines below exist, and only this crate can attest under them.
pub trait Proof: sealed::Sealed {
    /// Machine-readable discipline name used in audit records.
    const NAME: &'static str;
}

/// Verified by a static certificate: one of the [`enf_static`] analyses
/// proved every HALT of the program inside the policy, so the value was
/// computed by a native (unmonitored) run of a certified program.
#[derive(Debug)]
pub enum Certified {}

/// Verified by a monitored run: the surveillance monitor (AST stepper or
/// bytecode VM) tracked taints through this exact execution and the
/// release check passed.
#[derive(Debug)]
pub enum Monitored {}

/// Verified by an exhaustive sweep: `check_soundness` confirmed the
/// mechanism sound over the whole declared input domain, and the value
/// came from a monitored run of that proven-sound mechanism.
#[derive(Debug)]
pub enum Swept {}

impl sealed::Sealed for Certified {}
impl sealed::Sealed for Monitored {}
impl sealed::Sealed for Swept {}

impl Proof for Certified {
    const NAME: &'static str = "certified";
}
impl Proof for Monitored {
    const NAME: &'static str = "monitored";
}
impl Proof for Swept {
    const NAME: &'static str = "swept";
}
