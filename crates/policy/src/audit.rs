//! The tamper-evident audit trail: deterministic, hash-chained JSONL.
//!
//! Every capability grant, certification, attestation, refusal, sweep and
//! release in the typed pipeline appends one record to an [`AuditLog`].
//! Records are canonical [`enf_core::json`] objects rendered on a single
//! line, and each record carries
//!
//! * `seq` — its position in the log (dense from 0),
//! * `prev` — the hash of the preceding record (a genesis constant for
//!   record 0), and
//! * `hash` — the FNV-1a fingerprint of the record's own canonical
//!   rendering *without* the `hash` field, chained through `prev`.
//!
//! Because the writer is deterministic (no timestamps, no randomness, and
//! the engine's verdicts are bit-identical for every thread count), a
//! pipeline run twice produces byte-identical logs — and because every
//! record's hash covers its predecessor's, any edit, deletion, insertion
//! or reordering breaks the chain at or before the tampered record.
//! [`verify_chain`] replays the whole chain and reports the first break.
//!
//! Persistence reuses the checkpoint codec's atomic discipline
//! ([`enf_core::atomic_write_text`]: write a sibling temporary file, then
//! rename over the target), so a crash mid-append leaves the previous
//! intact log on disk, never a torn one.

use enf_core::{atomic_write_text, EnfError, Json};
use std::path::PathBuf;

/// `prev` of the first record: the FNV-1a fingerprint of the empty word
/// sequence, rendered like every other hash.
pub const GENESIS: u64 = fingerprint_bytes("");

/// FNV-1a over a string's bytes, via the same [`enf_core::fingerprint`]
/// primitive the checkpoint format uses.
const fn fingerprint_bytes(s: &str) -> u64 {
    // `enf_core::fingerprint` folds u64 words; replicate its byte folding
    // here so hashing a rendered record needs no intermediate Vec.
    let bytes = s.as_bytes();
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut i = 0;
    while i < bytes.len() {
        hash ^= bytes[i] as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        i += 1;
    }
    hash
}

/// The chain hash of a record: FNV-1a over its canonical rendering with
/// the `hash` field absent. `prev` is part of the rendering, so the hash
/// transitively covers the whole log prefix.
fn chain_hash(body_render: &str) -> u64 {
    fingerprint_bytes(body_render)
}

/// 16-digit lowercase hex, the wire form of every hash in the log.
pub fn hash_hex(h: u64) -> String {
    format!("{h:016x}")
}

/// When a file-backed log writes its bytes out.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FlushPolicy {
    /// Persist after every appended record (atomic tmp+rename each time).
    /// The durable default: the on-disk log is always a complete,
    /// verifiable chain ending at most one record behind the writer.
    EveryRecord,
    /// Persist only on [`AuditLog::persist`] (and best-effort on drop).
    /// For batch embedders that release many values per transaction.
    Manual,
}

/// An append-only, hash-chained audit log.
///
/// In-memory by default; [`AuditLog::create`] / [`AuditLog::resume`]
/// attach a JSONL file persisted with the atomic tmp+rename discipline.
/// Records are appended only by the typed pipeline (grants, attestations,
/// refusals, sweeps, releases) and by [`AuditLog::note`]; there is no way
/// to append an arbitrary record with a forged chain position.
#[derive(Debug)]
pub struct AuditLog {
    lines: Vec<String>,
    head: u64,
    path: Option<PathBuf>,
    flush: FlushPolicy,
    dirty: bool,
}

impl AuditLog {
    /// A fresh in-memory log (no file attached).
    pub fn in_memory() -> AuditLog {
        AuditLog {
            lines: Vec::new(),
            head: GENESIS,
            path: None,
            flush: FlushPolicy::EveryRecord,
            dirty: false,
        }
    }

    /// A fresh file-backed log at `path`, persisted per `flush`. The file
    /// is created (or truncated) immediately so a zero-record run still
    /// leaves a verifiable empty log behind.
    pub fn create(path: impl Into<PathBuf>, flush: FlushPolicy) -> Result<AuditLog, EnfError> {
        let mut log = AuditLog::in_memory();
        log.path = Some(path.into());
        log.flush = flush;
        log.persist()?;
        Ok(log)
    }

    /// Reopens an existing log at `path` and continues its chain. The
    /// existing contents are verified first; a tampered or torn log is
    /// refused — appending to a broken chain would launder the break. A
    /// missing file starts an empty log.
    pub fn resume(path: impl Into<PathBuf>, flush: FlushPolicy) -> Result<AuditLog, EnfError> {
        let path = path.into();
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => {
                return Err(EnfError::Checkpoint {
                    reason: format!("cannot read audit log {}: {e}", path.display()),
                })
            }
        };
        match verify_chain(&text) {
            ChainVerdict::Intact { records, head } => {
                let lines = text.lines().map(str::to_string).collect::<Vec<_>>();
                debug_assert_eq!(lines.len(), records);
                Ok(AuditLog {
                    lines,
                    head,
                    path: Some(path),
                    flush,
                    dirty: false,
                })
            }
            ChainVerdict::Tampered { line, reason, .. } => Err(EnfError::Checkpoint {
                reason: format!(
                    "audit log {} fails verification at record {line}: {reason}",
                    path.display()
                ),
            }),
        }
    }

    /// Number of records in the log.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// Whether the log has no records yet.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// The chain head: the hash of the last record ([`GENESIS`] when
    /// empty).
    pub fn head(&self) -> u64 {
        self.head
    }

    /// The full JSONL rendering — one canonical record per line, trailing
    /// newline after the last (an empty log renders as the empty string).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for line in &self.lines {
            out.push_str(line);
            out.push('\n');
        }
        out
    }

    /// The rendered records, one canonical JSON line each.
    pub fn lines(&self) -> &[String] {
        &self.lines
    }

    /// Appends a record. `fields` follow `seq`/`prev`/`kind` in the
    /// rendered object; the chain hash is computed and appended last.
    pub(crate) fn append(
        &mut self,
        kind: &str,
        fields: Vec<(String, Json)>,
    ) -> Result<(), EnfError> {
        let mut obj = vec![
            ("seq".to_string(), Json::Int(self.lines.len() as i128)),
            ("prev".to_string(), Json::Str(hash_hex(self.head))),
            ("kind".to_string(), Json::Str(kind.to_string())),
        ];
        obj.extend(fields);
        let body = Json::Obj(obj.clone()).render();
        let hash = chain_hash(&body);
        obj.push(("hash".to_string(), Json::Str(hash_hex(hash))));
        self.lines.push(Json::Obj(obj).render());
        self.head = hash;
        self.dirty = true;
        if self.flush == FlushPolicy::EveryRecord {
            self.persist()?;
        }
        Ok(())
    }

    /// An embedder annotation record (`kind: "note"`). The only
    /// caller-authored record kind; everything else is appended by the
    /// pipeline itself.
    pub fn note(&mut self, message: &str) -> Result<(), EnfError> {
        self.append(
            "note",
            vec![("message".to_string(), Json::Str(message.to_string()))],
        )
    }

    /// Writes the log to its file (atomic tmp+rename). A no-op for
    /// in-memory logs.
    pub fn persist(&mut self) -> Result<(), EnfError> {
        if let Some(path) = &self.path {
            atomic_write_text(path, &self.render())?;
        }
        self.dirty = false;
        Ok(())
    }
}

impl Drop for AuditLog {
    fn drop(&mut self) {
        // Best effort: a Manual-flush log dropped without persist() should
        // not silently lose its tail. Errors are unreportable here.
        if self.dirty && self.path.is_some() {
            let _ = self.persist();
        }
    }
}

/// Outcome of replaying an audit log's hash chain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChainVerdict {
    /// Every record parses canonically and the chain closes.
    Intact {
        /// Number of verified records.
        records: usize,
        /// The chain head (hash of the last record, [`GENESIS`] if none).
        head: u64,
    },
    /// The chain breaks: some record is missing, altered, reordered,
    /// malformed, or the file ends mid-record.
    Tampered {
        /// Records verified intact before the break.
        intact: usize,
        /// 1-based line number of the offending record.
        line: usize,
        /// What failed.
        reason: String,
    },
}

impl ChainVerdict {
    /// Whether the whole log verified.
    pub fn is_intact(&self) -> bool {
        matches!(self, ChainVerdict::Intact { .. })
    }
}

/// Replays an audit log's hash chain from the raw file text.
///
/// A record verifies only if it is the *canonical* rendering of its
/// parsed content (so whitespace-preserving edits are caught), its `seq`
/// is its line position, its `prev` equals the running chain head, and
/// its `hash` recomputes from the body. The scan stops at the first
/// failure; everything before it is reported intact.
pub fn verify_chain(text: &str) -> ChainVerdict {
    let mut head = GENESIS;
    let mut intact = 0usize;
    let mut rest = text;
    while !rest.is_empty() {
        let line_no = intact + 1;
        let tampered = |reason: String| ChainVerdict::Tampered {
            intact,
            line: line_no,
            reason,
        };
        let (line, tail) = match rest.split_once('\n') {
            Some((line, tail)) => (line, tail),
            None => {
                return tampered(format!(
                    "truncated record: {} trailing bytes with no newline",
                    rest.len()
                ))
            }
        };
        let parsed = match enf_core::json::parse(line) {
            Ok(parsed) => parsed,
            Err(e) => return tampered(format!("malformed JSON: {e}")),
        };
        let fields = match &parsed {
            Json::Obj(fields) => fields,
            _ => return tampered("record is not an object".to_string()),
        };
        if parsed.render() != line {
            return tampered("record is not in canonical form".to_string());
        }
        match fields.last() {
            Some((key, _)) if key == "hash" => {}
            _ => return tampered("missing hash field".to_string()),
        }
        let seq = parsed.get("seq").and_then(Json::as_usize);
        if seq != Some(intact) {
            return tampered(format!(
                "sequence break: expected seq {intact}, found {}",
                match seq {
                    Some(s) => s.to_string(),
                    None => "none".to_string(),
                }
            ));
        }
        let prev = parsed.get("prev").and_then(Json::as_str).unwrap_or("");
        if prev != hash_hex(head) {
            return tampered(format!(
                "chain break: prev {prev} does not match head {}",
                hash_hex(head)
            ));
        }
        let body = Json::Obj(fields[..fields.len() - 1].to_vec()).render();
        let expected = chain_hash(&body);
        let stored = parsed.get("hash").and_then(Json::as_str).unwrap_or("");
        if stored != hash_hex(expected) {
            return tampered(format!(
                "hash mismatch: stored {stored}, recomputed {}",
                hash_hex(expected)
            ));
        }
        head = expected;
        intact += 1;
        rest = tail;
    }
    ChainVerdict::Intact {
        records: intact,
        head,
    }
}

/// Renders an [`enf_core::IndexSet`] as a JSON array of indices, the
/// audit wire form of a policy or taint set.
pub(crate) fn indexset_json(set: &enf_core::IndexSet) -> Json {
    Json::Arr(set.iter().map(|i| Json::Int(i as i128)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AuditLog {
        let mut log = AuditLog::in_memory();
        log.note("first").unwrap();
        log.note("second").unwrap();
        log.note("third").unwrap();
        log
    }

    #[test]
    fn chain_verifies_and_is_deterministic() {
        let a = sample();
        let b = sample();
        assert_eq!(a.render(), b.render());
        match verify_chain(&a.render()) {
            ChainVerdict::Intact { records, head } => {
                assert_eq!(records, 3);
                assert_eq!(head, a.head());
            }
            tampered => panic!("intact log flagged: {tampered:?}"),
        }
    }

    #[test]
    fn empty_log_is_intact() {
        assert_eq!(
            verify_chain(""),
            ChainVerdict::Intact {
                records: 0,
                head: GENESIS
            }
        );
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let text = sample().render();
        let bytes = text.as_bytes();
        for i in 0..bytes.len() {
            let mut flipped = bytes.to_vec();
            flipped[i] ^= 0x20; // keeps most characters printable
            if flipped == bytes {
                continue;
            }
            if let Ok(s) = String::from_utf8(flipped) {
                assert!(
                    !verify_chain(&s).is_intact(),
                    "flip at byte {i} went undetected"
                );
            }
        }
    }

    #[test]
    fn deleting_or_swapping_records_breaks_the_chain() {
        let log = sample();
        let lines: Vec<&str> = log.lines().iter().map(String::as_str).collect();
        let drop_middle = format!("{}\n{}\n", lines[0], lines[2]);
        assert!(!verify_chain(&drop_middle).is_intact());
        let swapped = format!("{}\n{}\n{}\n", lines[1], lines[0], lines[2]);
        assert!(!verify_chain(&swapped).is_intact());
        let truncated_tail = format!("{}\n{}\n", lines[0], lines[1]);
        // A clean prefix is a valid (shorter) log — truncation of whole
        // records is only detectable against an external head.
        assert!(verify_chain(&truncated_tail).is_intact());
    }

    #[test]
    fn torn_tail_is_flagged() {
        let text = sample().render();
        let torn = &text[..text.len() - 10];
        match verify_chain(torn) {
            ChainVerdict::Tampered { intact, line, .. } => {
                assert_eq!(intact, 2);
                assert_eq!(line, 3);
            }
            other => panic!("torn log verified: {other:?}"),
        }
    }

    #[test]
    fn reformatted_record_is_not_canonical() {
        let log = sample();
        let lines = log.lines();
        // Same JSON content, extra whitespace: parses fine, fails the
        // canonical-form check.
        let spaced = lines[0].replace(':', ": ");
        let text = format!("{}\n{}\n{}\n", spaced, lines[1], lines[2]);
        match verify_chain(&text) {
            ChainVerdict::Tampered { line, reason, .. } => {
                assert_eq!(line, 1);
                assert!(reason.contains("canonical"));
            }
            other => panic!("reformatted log verified: {other:?}"),
        }
    }

    #[test]
    fn file_roundtrip_and_resume() {
        let dir = std::env::temp_dir().join(format!("enf_policy_audit_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.jsonl");
        {
            let mut log = AuditLog::create(&path, FlushPolicy::EveryRecord).unwrap();
            log.note("persisted").unwrap();
        }
        let mut log = AuditLog::resume(&path, FlushPolicy::EveryRecord).unwrap();
        assert_eq!(log.len(), 1);
        log.note("appended").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(verify_chain(&text).is_intact());
        assert_eq!(text.lines().count(), 2);
        // Tampered file refuses to resume.
        std::fs::write(&path, text.replace("persisted", "altered")).unwrap();
        assert!(AuditLog::resume(&path, FlushPolicy::EveryRecord).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
