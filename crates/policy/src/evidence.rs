//! The `Evidence` a `Verified` value carries: why the monitor let it out.

use enf_core::{Json, Verdict};
use enf_static::certify::Analysis;

/// Why a [`crate::Verified`] value was attested — one variant per
/// monitor-backed path, mirroring the [`crate::proof`] markers. Evidence
/// is metadata: reading it never reveals the guarded value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Evidence {
    /// A static certificate: `analysis` certified the program against the
    /// policy at compile time, so the run was native.
    Certificate {
        /// The analysis that certified.
        analysis: Analysis,
    },
    /// A monitored run: the dynamic release check passed after `steps`
    /// executed boxes.
    Trace {
        /// Boxes the monitor executed up to and including the check.
        steps: u64,
    },
    /// An exhaustive soundness sweep confirmed the mechanism over the
    /// whole domain, then a monitored run released this value.
    Coverage {
        /// Inputs checked (equals `total` — only full coverage attests).
        checked: usize,
        /// Domain size.
        total: usize,
        /// Boxes the attesting monitored run executed.
        steps: u64,
    },
}

impl Evidence {
    /// Machine-readable evidence kind, stable across releases.
    pub fn kind(&self) -> &'static str {
        match self {
            Evidence::Certificate { .. } => "certificate",
            Evidence::Trace { .. } => "trace",
            Evidence::Coverage { .. } => "coverage",
        }
    }

    /// Boxes the attesting monitored run executed (`None` for static
    /// certificates, whose runs are native).
    pub fn steps(&self) -> Option<u64> {
        match self {
            Evidence::Certificate { .. } => None,
            Evidence::Trace { steps } | Evidence::Coverage { steps, .. } => Some(*steps),
        }
    }

    /// Audit wire form (a canonical JSON object).
    pub fn to_json(&self) -> Json {
        let mut fields = vec![("kind".to_string(), Json::Str(self.kind().to_string()))];
        match self {
            Evidence::Certificate { analysis } => {
                fields.push((
                    "analysis".to_string(),
                    Json::Str(analysis.name().to_string()),
                ));
            }
            Evidence::Trace { steps } => {
                fields.push(("steps".to_string(), Json::Int(i128::from(*steps))));
            }
            Evidence::Coverage {
                checked,
                total,
                steps,
            } => {
                fields.push(("checked".to_string(), Json::Int(*checked as i128)));
                fields.push(("total".to_string(), Json::Int(*total as i128)));
                fields.push(("steps".to_string(), Json::Int(i128::from(*steps))));
            }
        }
        Json::Obj(fields)
    }
}

/// The audit wire form of a sweep verdict (shared by the plain,
/// checkpointed and scheduled sweeps).
pub(crate) fn sweep_fields(checked: usize, total: usize, verdict: Verdict) -> Vec<(String, Json)> {
    vec![
        ("checked".to_string(), Json::Int(checked as i128)),
        ("total".to_string(), Json::Int(total as i128)),
        ("verdict".to_string(), Json::Str(verdict.tag().to_string())),
    ]
}
