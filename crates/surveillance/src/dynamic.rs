//! The taint-tracking interpreter realizing the surveillance mechanism.
//!
//! One engine covers the paper's three dynamic mechanisms, selected by two
//! knobs:
//!
//! * [`Style`]: `Replace` (surveillance — assignment *replaces* the target's
//!   taint, enabling "forgetting") or `Accumulate` (high-water mark — taints
//!   only ever grow);
//! * [`CheckAt`]: `Halt` (Theorem 3's M: check `ȳ ∪ C̄ ⊆ J` at HALT) or
//!   `EveryDecision` (Theorem 3′'s M′: additionally check `C̄ ⊆ J` at each
//!   decision and abort immediately, which keeps the mechanism sound when
//!   running time — and even termination — is observable).
//!
//! # Divergence
//!
//! A run that exhausts its fuel reports [`SurvOutcome::OutOfFuel`]; the
//! mechanism adapters map it to the program's own `Diverged` output. For
//! `CheckAt::Halt` this opens the classic *termination channel* (a loop
//! guarded by denied data diverges or halts depending on the secret), so
//! Theorem 3 soundness is stated — and property-tested — for terminating
//! programs. `CheckAt::EveryDecision` closes the channel: a loop guard
//! tainted with denied data is killed before it can branch.

use crate::monitor::TaintMonitor;
use crate::state::TaintState;
use enf_core::{IndexSet, Schedule, V};
use enf_flowchart::graph::{Flowchart, Node, NodeId, PolicySpec, Succ};
use enf_flowchart::interp::Store;
use enf_flowchart::stepper::Stepper;

/// Assignment taint discipline.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Style {
    /// Surveillance: `v̄ ← w̄1 ∪ … ∪ w̄s ∪ C̄` (the old `v̄` is forgotten).
    Replace,
    /// High-water mark: `v̄ ← v̄ ∪ w̄1 ∪ … ∪ w̄s ∪ C̄`.
    Accumulate,
}

/// Where the release check happens.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CheckAt {
    /// Only at HALT (Theorem 3's M; time must be unobservable).
    Halt,
    /// At every decision box as well, aborting immediately (Theorem 3′'s
    /// M′; sound under observable time).
    EveryDecision,
}

/// Configuration of a surveillance run.
#[derive(Clone, Copy, Debug)]
pub struct SurvConfig {
    /// The allowed index set `J` of the policy `allow(J)`.
    pub allowed: IndexSet,
    /// Assignment discipline.
    pub style: Style,
    /// Check placement.
    pub check: CheckAt,
    /// Fuel bound on executed boxes.
    pub fuel: u64,
}

impl SurvConfig {
    /// Surveillance M for `allow(J)` (Theorem 3).
    pub fn surveillance(allowed: IndexSet) -> Self {
        SurvConfig {
            allowed,
            style: Style::Replace,
            check: CheckAt::Halt,
            fuel: 1_000_000,
        }
    }

    /// Timed surveillance M′ for `allow(J)` (Theorem 3′).
    pub fn timed(allowed: IndexSet) -> Self {
        SurvConfig {
            allowed,
            style: Style::Replace,
            check: CheckAt::EveryDecision,
            fuel: 1_000_000,
        }
    }

    /// High-water mark M_h for `allow(J)`.
    pub fn highwater(allowed: IndexSet) -> Self {
        SurvConfig {
            allowed,
            style: Style::Accumulate,
            check: CheckAt::Halt,
            fuel: 1_000_000,
        }
    }

    /// Replaces the fuel bound.
    #[must_use]
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = fuel;
        self
    }
}

/// Result of a surveillance run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SurvOutcome {
    /// The check passed; the program output is released.
    Accepted {
        /// The released value of `y`.
        y: V,
        /// Boxes executed by the *mechanism* (original boxes; the
        /// instrumented flowchart form has its own, larger count).
        steps: u64,
    },
    /// A check failed; the output is suppressed.
    Violation {
        /// Where the failing check fired (a decision box for
        /// `CheckAt::EveryDecision` aborts, a HALT box otherwise).
        site: NodeId,
        /// The offending taint set (`C̄` at a decision, `ȳ ∪ C̄` at HALT).
        taint: IndexSet,
        /// Boxes executed up to and including the check.
        steps: u64,
    },
    /// Fuel exhausted before any check fired.
    OutOfFuel,
}

impl SurvOutcome {
    /// The released value, if accepted.
    pub fn accepted(&self) -> Option<V> {
        match self {
            SurvOutcome::Accepted { y, .. } => Some(*y),
            _ => None,
        }
    }

    /// Whether the run ended in a violation.
    pub fn is_violation(&self) -> bool {
        matches!(self, SurvOutcome::Violation { .. })
    }

    /// Boxes executed before the run ended, when it ended at a check
    /// (`None` for [`SurvOutcome::OutOfFuel`], whose step count is the
    /// caller's fuel bound).
    pub fn steps(&self) -> Option<u64> {
        match self {
            SurvOutcome::Accepted { steps, .. } | SurvOutcome::Violation { steps, .. } => {
                Some(*steps)
            }
            SurvOutcome::OutOfFuel => None,
        }
    }

    /// Machine-readable lowercase tag, stable across releases — audit
    /// records and the trace JSONL verdict line key on it.
    pub fn tag(&self) -> &'static str {
        match self {
            SurvOutcome::Accepted { .. } => "accepted",
            SurvOutcome::Violation { .. } => "violation",
            SurvOutcome::OutOfFuel => "out_of_fuel",
        }
    }
}

/// Runs a flowchart under the surveillance discipline.
///
/// # Examples
///
/// ```
/// use enf_core::IndexSet;
/// use enf_flowchart::parse;
/// use enf_surveillance::dynamic::{run_surveillance, SurvConfig};
///
/// // y := x1 under allow(2): the output is tainted {1} ⊄ {2}.
/// let fc = parse("program(2) { y := x1; }").unwrap();
/// let out = run_surveillance(&fc, &[5, 0], &SurvConfig::surveillance(IndexSet::single(2)));
/// assert!(out.is_violation());
/// ```
pub fn run_surveillance(fc: &Flowchart, inputs: &[V], cfg: &SurvConfig) -> SurvOutcome {
    Stepper::new(fc)
        .with_fuel(cfg.fuel)
        .run(inputs, &mut TaintMonitor::new(fc, *cfg))
}

/// Runs a flowchart under the surveillance discipline with an external
/// policy schedule resolving `setpolicy p{i}` slot boxes. The schedule's
/// initial policy replaces `cfg.allowed` as the starting active set.
pub fn run_surveillance_scheduled(
    fc: &Flowchart,
    inputs: &[V],
    cfg: &SurvConfig,
    schedule: &Schedule,
) -> SurvOutcome {
    Stepper::new(fc).with_fuel(cfg.fuel).run(
        inputs,
        &mut TaintMonitor::new(fc, *cfg).with_schedule(schedule.clone()),
    )
}

/// The seed's hand-rolled surveillance loop, kept verbatim as the
/// differential oracle for the stepper-based engine.
///
/// [`run_surveillance`] is the supported entry point; this one exists so
/// property tests can pin the refactor bit-for-bit — outcome, step count
/// and violation site must match on every run (see
/// `tests/stepper_differential.rs`). Do not "improve" this function: its
/// value is that it does not change.
pub fn run_reference(fc: &Flowchart, inputs: &[V], cfg: &SurvConfig) -> SurvOutcome {
    let mut store = Store::init(fc, inputs);
    let mut taints = TaintState::init(fc.arity(), fc.max_reg());
    let mut allowed = cfg.allowed;
    let mut at = fc.start();
    let mut steps: u64 = 0;
    loop {
        if steps >= cfg.fuel {
            return SurvOutcome::OutOfFuel;
        }
        steps += 1;
        match fc.node(at) {
            Node::Start => {
                at = match fc.succ(at) {
                    Succ::One(n) => n,
                    _ => unreachable!("validated START"),
                };
            }
            Node::Assign { var, expr } => {
                // Transformation (2): v̄ ← w̄1 ∪ … ∪ w̄s ∪ C̄ (∪ v̄ for
                // the high-water discipline), then the value update.
                let mut t = taints.expr_taint(expr).union(&taints.pc);
                if cfg.style == Style::Accumulate {
                    t.union_with(&taints.get(*var));
                }
                taints.set(*var, t);
                let v = expr.eval(&|w| store.get(w));
                store.set(*var, v);
                at = match fc.succ(at) {
                    Succ::One(n) => n,
                    _ => unreachable!("validated assignment"),
                };
            }
            Node::Decision { pred } => {
                // Transformation (3): C̄ ← C̄ ∪ w̄1 ∪ … ∪ w̄s.
                let t = taints.pred_taint(pred);
                taints.pc.union_with(&t);
                if cfg.check == CheckAt::EveryDecision && !taints.pc.is_subset(&allowed) {
                    // Theorem 3′: abort before the disallowed test is taken.
                    return SurvOutcome::Violation {
                        site: at,
                        taint: taints.pc,
                        steps,
                    };
                }
                let taken = pred.eval(&|w| store.get(w));
                at = match fc.succ(at) {
                    Succ::Cond { then_, else_ } => {
                        if taken {
                            then_
                        } else {
                            else_
                        }
                    }
                    _ => unreachable!("validated decision"),
                };
            }
            Node::SetPolicy { spec } => {
                // The active allowed set is replaced; slot boxes resolve to
                // allow() here (this reference loop has no schedule).
                allowed = match spec {
                    PolicySpec::Concrete(s) => *s,
                    PolicySpec::Slot(_) => IndexSet::empty(),
                };
                at = match fc.succ(at) {
                    Succ::One(n) => n,
                    _ => unreachable!("validated setpolicy"),
                };
            }
            Node::Declassify { var, from, to } => {
                // Relabel v̄ ← (v̄ \ A) ∪ B; the store is untouched.
                let t = taints.get(*var);
                taints.set(*var, t.difference(from).union(to));
                at = match fc.succ(at) {
                    Succ::One(n) => n,
                    _ => unreachable!("validated declassify"),
                };
            }
            Node::Halt => {
                // Transformation (4): release y only if ȳ ∪ C̄ ⊆ J.
                let t = taints.halt_taint();
                if t.is_subset(&allowed) {
                    return SurvOutcome::Accepted {
                        y: store.output(),
                        steps,
                    };
                }
                return SurvOutcome::Violation {
                    site: at,
                    taint: t,
                    steps,
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enf_flowchart::parse;

    fn surv(src: &str, inputs: &[V], allowed: &[usize]) -> SurvOutcome {
        let fc = parse(src).unwrap();
        run_surveillance(
            &fc,
            inputs,
            &SurvConfig::surveillance(allowed.iter().copied().collect()),
        )
    }

    #[test]
    fn allowed_direct_flow_accepts() {
        let out = surv("program(2) { y := x2 + 1; }", &[9, 4], &[2]);
        assert_eq!(out.accepted(), Some(5));
    }

    #[test]
    fn denied_direct_flow_violates() {
        let out = surv("program(2) { y := x1; }", &[9, 4], &[2]);
        assert!(out.is_violation());
    }

    #[test]
    fn constants_are_untainted() {
        let out = surv("program(2) { y := 7; }", &[9, 4], &[]);
        assert_eq!(out.accepted(), Some(7));
    }

    #[test]
    fn implicit_flow_through_pc_is_caught() {
        // y never reads x1, but the branch does: C̄ = {1} at HALT.
        let src = "program(1) { if x1 == 0 { y := 0; } else { y := 1; } }";
        assert!(surv(src, &[0], &[]).is_violation());
        assert!(surv(src, &[1], &[]).is_violation());
    }

    #[test]
    fn forgetting_clears_old_taint() {
        // y := x1 then y := 0 under a branch on x2: final ȳ = {2} (the PC),
        // x1 is forgotten.
        let src = "program(2) { y := x1; if x2 == 0 { y := 0; } }";
        assert_eq!(surv(src, &[9, 0], &[2]).accepted(), Some(0));
        // On the other path y keeps x1's taint.
        assert!(surv(src, &[9, 5], &[2]).is_violation());
    }

    #[test]
    fn pc_taint_is_monotone_through_join_points() {
        // The paper's C̄ never shrinks: after a branch on x1 rejoins, an
        // assignment of a constant still picks up {1}.
        let src = "program(2) { if x1 == 0 { r1 := 1; } else { r1 := 2; } y := 7; }";
        assert!(surv(src, &[0, 0], &[2]).is_violation());
        assert!(surv(src, &[3, 0], &[2]).is_violation());
    }

    #[test]
    fn violation_reports_site_and_taint() {
        let fc = parse("program(1) { y := x1; }").unwrap();
        match run_surveillance(&fc, &[3], &SurvConfig::surveillance(IndexSet::empty())) {
            SurvOutcome::Violation { site, taint, .. } => {
                assert_eq!(fc.node(site), &enf_flowchart::graph::Node::Halt);
                assert_eq!(taint, IndexSet::single(1));
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn ite_expression_taints_with_selector() {
        // Example 8 transformed: the ite carries both taints on every run.
        let src = "program(2) { y := ite(x2 == 1, 1, x1); }";
        assert!(surv(src, &[5, 1], &[2]).is_violation());
        assert!(surv(src, &[5, 0], &[2]).is_violation());
    }

    #[test]
    fn ite_on_register_frees_pc() {
        // Example 7 transformed: taint flows into r1 but never into y or C̄.
        let src = "program(2) { r1 := ite(x1 == 1, 1, 2); y := 1; }";
        assert_eq!(surv(src, &[1, 0], &[2]).accepted(), Some(1));
        assert_eq!(surv(src, &[9, 0], &[2]).accepted(), Some(1));
    }

    #[test]
    fn timed_check_aborts_at_decision() {
        let fc = parse("program(1) { if x1 == 0 { y := 0; } else { y := 0; } }").unwrap();
        let cfg = SurvConfig::timed(IndexSet::empty());
        let a = run_surveillance(&fc, &[0], &cfg);
        let b = run_surveillance(&fc, &[5], &cfg);
        // Both runs die at the same decision after the same number of
        // steps: nothing, including time, distinguishes them.
        assert_eq!(a, b);
        match a {
            SurvOutcome::Violation { steps, .. } => assert_eq!(steps, 2),
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn timed_check_closes_the_termination_channel() {
        // while x1 != 0 {} — under CheckAt::Halt the x1 = 0 run violates at
        // HALT while x1 ≠ 0 diverges (a leak); under EveryDecision both die
        // identically at the guard.
        let fc = parse("program(1) { while x1 != 0 { skip; } y := 1; }").unwrap();
        let halt_cfg = SurvConfig::surveillance(IndexSet::empty()).with_fuel(500);
        let zero = run_surveillance(&fc, &[0], &halt_cfg);
        let nonzero = run_surveillance(&fc, &[1], &halt_cfg);
        assert!(zero.is_violation());
        assert_eq!(nonzero, SurvOutcome::OutOfFuel);
        let timed_cfg = SurvConfig::timed(IndexSet::empty()).with_fuel(500);
        assert_eq!(
            run_surveillance(&fc, &[0], &timed_cfg),
            run_surveillance(&fc, &[1], &timed_cfg)
        );
    }

    #[test]
    fn highwater_never_forgets() {
        let src = "program(2) { y := x1; if x2 == 0 { y := 0; } }";
        let fc = parse(src).unwrap();
        let cfg = SurvConfig::highwater(IndexSet::single(2));
        assert!(run_surveillance(&fc, &[9, 0], &cfg).is_violation());
        assert!(run_surveillance(&fc, &[9, 5], &cfg).is_violation());
    }

    #[test]
    fn highwater_accepts_clean_programs() {
        let fc = parse("program(2) { y := x2 * 2; }").unwrap();
        let cfg = SurvConfig::highwater(IndexSet::single(2));
        assert_eq!(run_surveillance(&fc, &[9, 3], &cfg).accepted(), Some(6));
    }

    #[test]
    fn fuel_exhaustion_reported() {
        let fc = parse("program(0) { while true { skip; } }").unwrap();
        let cfg = SurvConfig::surveillance(IndexSet::empty()).with_fuel(50);
        assert_eq!(run_surveillance(&fc, &[], &cfg), SurvOutcome::OutOfFuel);
    }

    #[test]
    fn allowed_decision_passes_timed_check() {
        let fc = parse("program(2) { if x2 == 0 { y := 1; } else { y := 2; } }").unwrap();
        let cfg = SurvConfig::timed(IndexSet::single(2));
        assert_eq!(run_surveillance(&fc, &[9, 0], &cfg).accepted(), Some(1));
        assert_eq!(run_surveillance(&fc, &[9, 3], &cfg).accepted(), Some(2));
    }

    #[test]
    fn assigning_to_input_retaints_it() {
        // x1 := x2 makes later reads of x1 carry {2} (plus nothing else).
        let src = "program(2) { x1 := x2; y := x1; }";
        assert_eq!(surv(src, &[9, 4], &[2]).accepted(), Some(4));
    }
}
