//! The paper's literal construction: the mechanism *as a flowchart*.
//!
//! Section 3 builds the surveillance mechanism M from a program Q by four
//! source-to-source transformations:
//!
//! 1. after START, initialize each surveillance variable (`x̄i ← {i}`,
//!    everything else `∅` — which is the flowchart's initial 0 already);
//! 2. before each assignment `v ← E(w1, …, ws)`, insert
//!    `v̄ ← w̄1 ∪ … ∪ w̄s ∪ C̄`;
//! 3. before each decision on `B(w1, …, ws)`, insert
//!    `C̄ ← C̄ ∪ w̄1 ∪ … ∪ w̄s`;
//! 4. replace each HALT by the check `ȳ ∪ C̄ ⊆ J`, releasing `y` on
//!    success and the violation notice Λ otherwise.
//!
//! Surveillance variables live in ordinary registers above the program's
//! own, holding index sets as bitmasks; unions are `|` and the subset check
//! `t ⊆ J` is `(t & ¬J) == 0`. The result is a genuine [`Flowchart`] — it
//! can be printed, exported to DOT, interpreted, and (in `enf-static`)
//! analyzed like any other program. A violation is signalled by *which*
//! HALT box the run reaches, keeping the notice set disjoint from the
//! output range as the paper requires.
//!
//! The timed variant (Theorem 3′) additionally guards every decision with
//! the check `C̄ ⊆ J`, aborting to the violation HALT before a disallowed
//! test can influence control.

use enf_core::Program;
use enf_core::{IndexSet, MechOutput, Mechanism, Notice, Timed, TimedProgram, V};
use enf_flowchart::ast::{bor_all, Expr, Pred, Var};
use enf_flowchart::builder::Builder;
use enf_flowchart::graph::{Flowchart, Node, NodeId, PolicySpec, Succ};
use enf_flowchart::interp::{run, ExecConfig, ExecValue, Outcome};
use enf_flowchart::program::FlowchartProgram;
use std::collections::HashSet;
use std::sync::Arc;

/// Largest arity the bitmask encoding supports (bit 63 would collide with
/// the sign bit of the register holding the mask).
pub const MAX_INSTRUMENT_ARITY: usize = 62;

/// Register layout of an instrumented flowchart.
#[derive(Clone, Copy, Debug)]
pub struct RegLayout {
    /// Registers `1..=orig_regs` belong to the original program.
    pub orig_regs: usize,
    /// Number of inputs `k`.
    pub arity: usize,
}

impl RegLayout {
    /// The register holding `v̄` for an original variable `v`.
    pub fn taint_of(&self, var: Var) -> Var {
        match var {
            Var::Input(i) => Var::Reg(self.orig_regs + i),
            Var::Reg(j) => Var::Reg(self.orig_regs + self.arity + j),
            Var::Out => Var::Reg(self.orig_regs + self.arity + self.orig_regs + 1),
        }
    }

    /// The register holding the program counter's `C̄`.
    pub fn pc(&self) -> Var {
        Var::Reg(self.orig_regs + self.arity + self.orig_regs + 2)
    }

    /// The register holding the active allowed mask `J̄`. Only materialized
    /// for dynamic-policy programs (ones with `setpolicy`/`declassify`
    /// boxes); fixed-policy instrumentation bakes `J` into constants.
    pub fn policy(&self) -> Var {
        Var::Reg(self.orig_regs + self.arity + self.orig_regs + 3)
    }
}

/// An instrumented mechanism: a flowchart plus the ids of its violation
/// HALT boxes.
#[derive(Clone, Debug)]
pub struct Instrumented {
    flowchart: Arc<Flowchart>,
    violation_halts: HashSet<NodeId>,
    layout: RegLayout,
    allowed: IndexSet,
    fuel: u64,
    timed: bool,
}

fn mask_const(set: IndexSet) -> Expr {
    Expr::Const(set.to_bits() as V)
}

fn taint_rhs(layout: &RegLayout, vars: &[Var]) -> Expr {
    bor_all(
        vars.iter().map(|v| Expr::Var(layout.taint_of(*v))),
        Expr::Var(layout.pc()),
    )
}

/// The subset check `t ⊆ J`, i.e. `(t & ¬J) == 0` with `¬J` taken within
/// `{1, …, k}`.
fn subset_check(arity: usize, taint: Expr, allowed: IndexSet) -> Pred {
    let not_j = IndexSet::full(arity).difference(&allowed);
    Pred::eq(
        Expr::BAnd(Box::new(taint), Box::new(mask_const(not_j))),
        Expr::c(0),
    )
}

/// The subset check `t ⊆ J̄` with the allowed set in a register:
/// `(t & (FULL − J̄)) == 0`. `FULL − J̄` is the complement within
/// `{1, …, k}` — sound because `J̄` only ever holds masks ⊆ FULL.
fn subset_check_dyn(arity: usize, taint: Expr, policy_reg: Var) -> Pred {
    Pred::eq(
        Expr::BAnd(
            Box::new(taint),
            Box::new(Expr::Sub(
                Box::new(mask_const(IndexSet::full(arity))),
                Box::new(Expr::Var(policy_reg)),
            )),
        ),
        Expr::c(0),
    )
}

/// Applies the paper's transformations (1)–(4) to `fc` for the policy
/// `allow(J)`; `timed` additionally applies the Theorem 3′ decision guard.
///
/// # Panics
///
/// Panics if the arity exceeds [`MAX_INSTRUMENT_ARITY`].
pub fn instrument(fc: &Flowchart, allowed: IndexSet, timed: bool) -> Instrumented {
    instrument_with(fc, allowed, timed, false)
}

/// Like [`instrument`] but with a high-water-mark taint discipline when
/// `accumulate` is set: assignments union the target's old taint instead of
/// replacing it (see [`crate::highwater`]).
pub fn instrument_with(
    fc: &Flowchart,
    allowed: IndexSet,
    timed: bool,
    accumulate: bool,
) -> Instrumented {
    assert!(
        fc.arity() <= MAX_INSTRUMENT_ARITY,
        "arity {} exceeds the bitmask encoding's limit",
        fc.arity()
    );
    let layout = RegLayout {
        orig_regs: fc.max_reg(),
        arity: fc.arity(),
    };
    // Dynamic-policy programs carry the allowed set in register `J̄`;
    // fixed-policy programs keep the paper's constant-mask construction,
    // byte for byte.
    let dynamic = fc.has_policy_nodes();
    let check = |taint: Expr| {
        if dynamic {
            subset_check_dyn(fc.arity(), taint, layout.policy())
        } else {
            subset_check(fc.arity(), taint, allowed)
        }
    };
    let mut b = Builder::new(fc.arity());
    let mut violation_halts = HashSet::new();

    // One shared violation path. Reaching its HALT *is* the notice Λ; the
    // scrub of `y` before it realizes transformation (4)'s "output Λ" —
    // without it, the mechanism *as a bare flowchart* would still carry
    // denied data in `y` at the violation HALT (see the self-application
    // tests).
    let scrub = b.assign(Var::Out, Expr::Const(0));
    let viol_halt = b.halt();
    b.wire(scrub, viol_halt);
    let viol = scrub;
    violation_halts.insert(viol_halt);

    // Per-node clusters: entry node and, for single-successor nodes, the
    // tail to wire to the successor's entry.
    let mut entry = vec![NodeId(0); fc.len()];
    let mut tail: Vec<Option<NodeId>> = vec![None; fc.len()];
    let mut branch: Vec<Option<NodeId>> = vec![None; fc.len()];

    for (id, node, _) in fc.iter() {
        match node {
            Node::Start => {
                // Transformation (1): x̄i ← {i}; other surveillance
                // variables start at 0 = ∅ by the language semantics. A
                // dynamic-policy program additionally seeds J̄ with the
                // initial allowed set.
                let mut prev: Option<NodeId> = None;
                let mut first: Option<NodeId> = None;
                let mut inits: Vec<(Var, Expr)> = (1..=fc.arity())
                    .map(|i| {
                        (
                            layout.taint_of(Var::Input(i)),
                            mask_const(IndexSet::single(i)),
                        )
                    })
                    .collect();
                if dynamic {
                    inits.push((layout.policy(), mask_const(allowed)));
                }
                for (var, expr) in inits {
                    let a = b.assign(var, expr);
                    if let Some(p) = prev {
                        b.wire(p, a);
                    } else {
                        first = Some(a);
                    }
                    prev = Some(a);
                }
                match (first, prev) {
                    (Some(f), Some(l)) => {
                        entry[id.0] = f;
                        tail[id.0] = Some(l);
                    }
                    _ => {
                        // Zero-arity program: START's cluster is empty; use
                        // the builder's START node itself as the tail.
                        entry[id.0] = NodeId(0);
                        tail[id.0] = Some(NodeId(0));
                    }
                }
            }
            Node::Assign { var, expr } => {
                // Transformation (2); the high-water variant also unions
                // the target's previous taint.
                let mut rhs = taint_rhs(&layout, &expr.vars());
                if accumulate {
                    rhs = Expr::BOr(Box::new(rhs), Box::new(Expr::Var(layout.taint_of(*var))));
                }
                let t = b.assign(layout.taint_of(*var), rhs);
                let a = b.assign(*var, expr.clone());
                b.wire(t, a);
                entry[id.0] = t;
                tail[id.0] = Some(a);
            }
            Node::Decision { pred } => {
                // Transformation (3).
                let upd = b.assign(layout.pc(), taint_rhs(&layout, &pred.vars()));
                let dec = b.decision(pred.clone());
                if timed {
                    // Theorem 3′ guard: abort before testing if C̄ ⊄ J.
                    let guard = b.decision(check(Expr::Var(layout.pc())));
                    b.wire(upd, guard);
                    b.wire_cond(guard, dec, viol);
                } else {
                    b.wire(upd, dec);
                }
                entry[id.0] = upd;
                branch[id.0] = Some(dec);
            }
            Node::Halt => {
                // Transformation (4): release y only if (ȳ | C̄) ⊆ J.
                let chk = b.decision(check(Expr::BOr(
                    Box::new(Expr::Var(layout.taint_of(Var::Out))),
                    Box::new(Expr::Var(layout.pc())),
                )));
                let ok = b.halt();
                b.wire_cond(chk, ok, viol);
                entry[id.0] = chk;
            }
            Node::SetPolicy { spec } => {
                // `setpolicy` compiles to one assignment into J̄. Unbound
                // slots resolve to allow() — the most restrictive reading,
                // matching the unscheduled dynamic monitor.
                let mask = match spec {
                    PolicySpec::Concrete(s) => *s,
                    PolicySpec::Slot(_) => IndexSet::empty(),
                };
                let a = b.assign(layout.policy(), mask_const(mask));
                entry[id.0] = a;
                tail[id.0] = Some(a);
            }
            Node::Declassify { var, from, to } => {
                // `declassify(v: A ~> B)` relabels: v̄ ← (v̄ \ A) ∪ B.
                let keep = IndexSet::full(fc.arity()).difference(from);
                let rhs = Expr::BOr(
                    Box::new(Expr::BAnd(
                        Box::new(Expr::Var(layout.taint_of(*var))),
                        Box::new(mask_const(keep)),
                    )),
                    Box::new(mask_const(*to)),
                );
                let a = b.assign(layout.taint_of(*var), rhs);
                entry[id.0] = a;
                tail[id.0] = Some(a);
            }
        }
    }

    // Wire clusters together following the original edges. The builder's
    // START points at the original START's cluster entry... which is the
    // START cluster itself; wire START to the input-init chain, then the
    // chain to the original successor.
    for (id, node, succ) in fc.iter() {
        match (node, succ) {
            (Node::Start, Succ::One(next)) => {
                let cluster_entry = entry[id.0];
                if cluster_entry == NodeId(0) {
                    // Zero-arity: START wires straight to the successor.
                    b.wire_start(entry[next.0]);
                } else {
                    b.wire_start(cluster_entry);
                    b.wire(tail[id.0].expect("start tail"), entry[next.0]);
                }
            }
            (Node::Assign { .. }, Succ::One(next))
            | (Node::SetPolicy { .. }, Succ::One(next))
            | (Node::Declassify { .. }, Succ::One(next)) => {
                b.wire(tail[id.0].expect("assign tail"), entry[next.0]);
            }
            (Node::Decision { .. }, Succ::Cond { then_, else_ }) => {
                let dec = branch[id.0].expect("decision node");
                b.wire_cond(dec, entry[then_.0], entry[else_.0]);
            }
            (Node::Halt, Succ::None) => {}
            _ => unreachable!("validated flowchart shapes"),
        }
    }

    let flowchart = b.finish().expect("instrumented flowchart must validate");
    Instrumented {
        flowchart: Arc::new(flowchart),
        violation_halts,
        layout,
        allowed,
        fuel: ExecConfig::default().fuel,
        timed,
    }
}

impl Instrumented {
    /// The mechanism as a plain flowchart.
    pub fn flowchart(&self) -> &Flowchart {
        &self.flowchart
    }

    /// Whether the Theorem 3′ decision guards were inserted.
    pub fn is_timed(&self) -> bool {
        self.timed
    }

    /// The register layout mapping original variables to their
    /// surveillance registers.
    pub fn layout(&self) -> RegLayout {
        self.layout
    }

    /// The allowed set `J`.
    pub fn allowed(&self) -> IndexSet {
        self.allowed
    }

    /// Replaces the fuel bound used when running the mechanism.
    #[must_use]
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = fuel;
        self
    }

    /// Whether a given HALT node signals a violation.
    pub fn is_violation_halt(&self, id: NodeId) -> bool {
        self.violation_halts.contains(&id)
    }

    /// Runs the instrumented flowchart, interpreting which HALT was reached.
    pub fn run_mech(&self, input: &[V]) -> MechOutput<ExecValue> {
        match run(&self.flowchart, input, &ExecConfig::with_fuel(self.fuel)) {
            Outcome::Halted(h) => {
                if self.violation_halts.contains(&h.halt) {
                    MechOutput::Violation(Notice::lambda())
                } else {
                    MechOutput::Value(ExecValue::Value(h.y))
                }
            }
            Outcome::OutOfFuel => MechOutput::Value(ExecValue::Diverged),
        }
    }
}

impl Mechanism for Instrumented {
    type Out = ExecValue;

    fn arity(&self) -> usize {
        self.flowchart.arity()
    }

    fn run(&self, input: &[V]) -> MechOutput<ExecValue> {
        self.run_mech(input)
    }
}

/// The instrumented mechanism viewed as a *program* whose output includes
/// its own running time — the object Theorem 3′ makes claims about.
impl Program for Instrumented {
    type Out = Timed<MechOutput<ExecValue>>;

    fn arity(&self) -> usize {
        self.flowchart.arity()
    }

    fn eval(&self, input: &[V]) -> Timed<MechOutput<ExecValue>> {
        match run(&self.flowchart, input, &ExecConfig::with_fuel(self.fuel)) {
            Outcome::Halted(h) => {
                let out = if self.violation_halts.contains(&h.halt) {
                    MechOutput::Violation(Notice::lambda())
                } else {
                    MechOutput::Value(ExecValue::Value(h.y))
                };
                Timed::new(out, h.steps)
            }
            Outcome::OutOfFuel => Timed::new(MechOutput::Value(ExecValue::Diverged), self.fuel),
        }
    }
}

impl TimedProgram for Instrumented {
    fn eval_timed(&self, input: &[V]) -> Timed<Self::Out> {
        let t = self.eval(input);
        let steps = t.steps;
        Timed::new(t, steps)
    }
}

/// Convenience: instrument a [`FlowchartProgram`], inheriting its fuel.
pub fn instrument_program(p: &FlowchartProgram, allowed: IndexSet, timed: bool) -> Instrumented {
    instrument(p.flowchart(), allowed, timed).with_fuel(p.fuel())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic::{run_surveillance, SurvConfig, SurvOutcome};
    use enf_core::{check_soundness, Grid, Identity, InputDomain, Policy as _};
    use enf_flowchart::corpus;
    use enf_flowchart::generate::{random_flowchart, GenConfig};
    use enf_flowchart::parse;

    #[test]
    fn instrumented_is_a_valid_flowchart() {
        let fc = parse("program(2) { if x1 == 0 { y := x2; } else { y := 1; } }").unwrap();
        let m = instrument(&fc, IndexSet::single(2), false);
        assert!(m.flowchart().validate().is_ok());
        // Instrumentation roughly doubles the graph plus init/check boxes.
        assert!(m.flowchart().len() > fc.len());
    }

    #[test]
    fn instrumented_agrees_with_dynamic_on_corpus() {
        for pp in corpus::all() {
            let inst = instrument(&pp.flowchart, pp.policy.allowed(), false);
            let cfg = SurvConfig::surveillance(pp.policy.allowed());
            let g = Grid::hypercube(pp.policy.arity(), 0..=3);
            for a in g.iter_inputs() {
                let dynamic = match run_surveillance(&pp.flowchart, &a, &cfg) {
                    SurvOutcome::Accepted { y, .. } => MechOutput::Value(ExecValue::Value(y)),
                    SurvOutcome::Violation { .. } => MechOutput::Violation(Notice::lambda()),
                    SurvOutcome::OutOfFuel => MechOutput::Value(ExecValue::Diverged),
                };
                assert_eq!(
                    inst.run_mech(&a),
                    dynamic,
                    "{}: divergence between instrumented and dynamic at {a:?}",
                    pp.name
                );
            }
        }
    }

    #[test]
    fn instrumented_agrees_with_dynamic_on_random_programs() {
        let gen_cfg = GenConfig::default();
        for seed in 0..40 {
            let fc = random_flowchart(seed, &gen_cfg);
            for j in [IndexSet::empty(), IndexSet::single(1), IndexSet::full(2)] {
                let inst = instrument(&fc, j, false);
                let cfg = SurvConfig::surveillance(j);
                let g = Grid::hypercube(2, -1..=1);
                for a in g.iter_inputs() {
                    let dynamic = match run_surveillance(&fc, &a, &cfg) {
                        SurvOutcome::Accepted { y, .. } => MechOutput::Value(ExecValue::Value(y)),
                        SurvOutcome::Violation { .. } => MechOutput::Violation(Notice::lambda()),
                        SurvOutcome::OutOfFuel => MechOutput::Value(ExecValue::Diverged),
                    };
                    assert_eq!(
                        inst.run_mech(&a),
                        dynamic,
                        "seed {seed}, J = {j}, input {a:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn timed_instrumented_agrees_with_timed_dynamic() {
        let gen_cfg = GenConfig::default();
        for seed in 0..25 {
            let fc = random_flowchart(seed, &gen_cfg);
            let j = IndexSet::single(1);
            let inst = instrument(&fc, j, true);
            let cfg = SurvConfig::timed(j);
            let g = Grid::hypercube(2, -1..=1);
            for a in g.iter_inputs() {
                let dynamic_accepts = run_surveillance(&fc, &a, &cfg).accepted();
                let inst_out = inst.run_mech(&a);
                match dynamic_accepts {
                    Some(y) => assert_eq!(
                        inst_out,
                        MechOutput::Value(ExecValue::Value(y)),
                        "seed {seed} input {a:?}"
                    ),
                    None => assert!(
                        !matches!(inst_out, MechOutput::Value(ExecValue::Value(_))),
                        "seed {seed} input {a:?}"
                    ),
                }
            }
        }
    }

    #[test]
    fn theorem_3_prime_timed_instrumented_sound_with_observable_time() {
        // The timed instrumented mechanism, viewed as a program whose
        // output includes its own step count, factors through allow(J).
        let pp = corpus::timing_constant();
        let inst = instrument(&pp.flowchart, pp.policy.allowed(), true).with_fuel(10_000);
        let g = Grid::hypercube(1, 0..=6);
        let as_program = Identity::new(&inst);
        assert!(
            check_soundness(&as_program, &pp.policy, &g, false).is_sound(),
            "timed instrumented mechanism leaked through its own running time"
        );
    }

    #[test]
    fn untimed_instrumented_leaks_time_on_timing_constant() {
        // Contrast for Theorem 3: the HALT-check mechanism's running time
        // still tracks the secret loop count.
        let pp = corpus::timing_constant();
        let inst = instrument(&pp.flowchart, pp.policy.allowed(), false).with_fuel(10_000);
        let g = Grid::hypercube(1, 0..=6);
        let as_program = Identity::new(&inst);
        assert!(!check_soundness(&as_program, &pp.policy, &g, false).is_sound());
    }

    #[test]
    fn zero_arity_program_instruments() {
        let fc = parse("program(0) { y := 5; }").unwrap();
        let m = instrument(&fc, IndexSet::empty(), false);
        assert_eq!(m.run_mech(&[]), MechOutput::Value(ExecValue::Value(5)));
    }

    #[test]
    fn violation_halt_is_distinguishable() {
        let fc = parse("program(1) { y := x1; }").unwrap();
        let m = instrument(&fc, IndexSet::empty(), false);
        match run(m.flowchart(), &[3], &ExecConfig::default()) {
            Outcome::Halted(h) => assert!(m.is_violation_halt(h.halt)),
            Outcome::OutOfFuel => panic!("diverged"),
        }
    }

    #[test]
    fn layout_registers_do_not_collide() {
        let fc = parse("program(2) { r1 := x1; r2 := x2; y := r1; }").unwrap();
        let m = instrument(&fc, IndexSet::full(2), false);
        let l = m.layout();
        let mut seen = std::collections::HashSet::new();
        for v in [
            l.taint_of(Var::Input(1)),
            l.taint_of(Var::Input(2)),
            l.taint_of(Var::Reg(1)),
            l.taint_of(Var::Reg(2)),
            l.taint_of(Var::Out),
            l.pc(),
        ] {
            assert!(seen.insert(v), "register collision at {v}");
            if let Var::Reg(j) = v {
                assert!(j > 2, "surveillance register overlaps original: r{j}");
            }
        }
    }

    #[test]
    fn violation_path_scrubs_y() {
        // Transformation (4) outputs Λ, not the partial y: the bare
        // flowchart must not carry denied data to the violation HALT.
        let fc = parse("program(1) { y := x1; }").unwrap();
        let m = instrument(&fc, IndexSet::empty(), false);
        match run(m.flowchart(), &[42], &ExecConfig::default()) {
            Outcome::Halted(h) => {
                assert!(m.is_violation_halt(h.halt));
                assert_eq!(h.y, 0, "partial y leaked to the violation HALT");
            }
            Outcome::OutOfFuel => panic!("diverged"),
        }
    }

    #[test]
    fn bare_mechanism_is_sound_as_a_program() {
        // Self-application: the instrumented mechanism, run as an ordinary
        // flowchart (its output just the final y), factors through the
        // policy it enforces — scrubbing makes the notice the constant 0,
        // at the price of Fenton-style overlap with genuine outputs.
        use enf_flowchart::program::FlowchartProgram;
        let gen_cfg = GenConfig::default();
        for seed in 900..940u64 {
            let fc = random_flowchart(seed, &gen_cfg);
            for j in [IndexSet::empty(), IndexSet::single(1), IndexSet::single(2)] {
                let inst = instrument(&fc, j, false);
                let bare = FlowchartProgram::new(inst.flowchart().clone());
                let policy = enf_core::Allow::from_set(2, j);
                let g = Grid::hypercube(2, -1..=1);
                assert!(
                    check_soundness(&Identity::new(bare), &policy, &g, false).is_sound(),
                    "seed {seed}, J = {j}: bare mechanism leaked"
                );
            }
        }
    }

    #[test]
    fn meta_surveillance_trusts_the_scrubbed_mechanism() {
        // Watch the watchman: run surveillance over the instrumented
        // mechanism's own flowchart. Because the violation path scrubs y,
        // the bare mechanism is a policy-respecting program, and the
        // meta-mechanism can release its output — including the runs the
        // inner mechanism suppressed, whose observable is the clean 0.
        // Whatever the meta level releases must equal the bare output.
        let fc = parse("program(2) { y := x1; if x2 == 0 { y := 0; } }").unwrap();
        let j = IndexSet::single(2);
        let inst = instrument(&fc, j, false);
        let cfg = SurvConfig::surveillance(j);
        let g = Grid::hypercube(2, -2..=2);
        let mut released = 0;
        for a in g.iter_inputs() {
            if let Some(y) = run_surveillance(inst.flowchart(), &a, &cfg).accepted() {
                released += 1;
                let bare = match run(inst.flowchart(), &a, &ExecConfig::default()) {
                    Outcome::Halted(h) => h.y,
                    Outcome::OutOfFuel => panic!("diverged"),
                };
                assert_eq!(y, bare, "meta release altered the output at {a:?}");
            }
        }
        // On this program every run is meta-clean: decisions test only x2
        // and taint registers hold input-independent constants.
        assert_eq!(released, g.iter_inputs().count());
    }

    #[test]
    fn dynamic_policy_instrumented_agrees_with_monitor() {
        // setpolicy/declassify programs: the literal construction must track
        // the dynamic monitor box for box (unbound slots read allow()).
        let programs = [
            "program(2) { r1 := x1; setpolicy allow(1); y := r1; }",
            "program(2) { setpolicy allow(1, 2); y := x1 + x2; setpolicy allow(); }",
            "program(2) { r1 := x1; declassify(r1: 1 ~>); y := r1 + x2; }",
            "program(2) { r1 := x1 + x2; declassify(r1: 1 ~> 2); y := r1; }",
            "program(2) { setpolicy p1; y := x1; }",
            "program(2) { if x2 == 0 { setpolicy allow(1); } y := x1; }",
        ];
        for src in programs {
            let fc = parse(src).unwrap();
            for j in [IndexSet::empty(), IndexSet::single(1), IndexSet::full(2)] {
                let inst = instrument(&fc, j, false);
                let cfg = SurvConfig::surveillance(j);
                let g = Grid::hypercube(2, -1..=2);
                for a in g.iter_inputs() {
                    let dynamic = match run_surveillance(&fc, &a, &cfg) {
                        SurvOutcome::Accepted { y, .. } => MechOutput::Value(ExecValue::Value(y)),
                        SurvOutcome::Violation { .. } => MechOutput::Violation(Notice::lambda()),
                        SurvOutcome::OutOfFuel => MechOutput::Value(ExecValue::Diverged),
                    };
                    assert_eq!(inst.run_mech(&a), dynamic, "{src}: J = {j}, input {a:?}");
                }
            }
        }
    }

    #[test]
    fn policy_free_instrumentation_is_unchanged_by_dynamic_support() {
        // The J̄ register is only materialized for programs with policy
        // boxes; a policy-free program's instrumented graph must not
        // mention it.
        let fc = parse("program(2) { if x1 == 0 { y := x2; } else { y := 1; } }").unwrap();
        let m = instrument(&fc, IndexSet::single(2), false);
        let policy_reg = m.layout().policy();
        for (_, node, _) in m.flowchart().iter() {
            if let Node::Assign { var, .. } = node {
                assert_ne!(*var, policy_reg, "policy register leaked into static path");
            }
        }
    }

    #[test]
    #[should_panic(expected = "exceeds the bitmask encoding")]
    fn arity_63_rejected() {
        // Build a 63-ary program via the structured API.
        use enf_flowchart::structured::{lower, Stmt, StructuredProgram};
        let p = StructuredProgram::new(63, vec![Stmt::Assign(Var::Out, Expr::x(63))]);
        let fc = lower(&p).unwrap();
        let _ = instrument(&fc, IndexSet::empty(), false);
    }
}
