//! The surveillance protection mechanism (Jones & Lipton, Section 3) and
//! its relatives.
//!
//! The surveillance mechanism associates with every variable `v` a
//! *surveillance variable* `v̄` — the set of input indices that "may have
//! effected the current value of v in some way" — and one for the program
//! counter, `C̄`. Taints propagate on assignment (`v̄ ← w̄1 ∪ … ∪ w̄s ∪ C̄`)
//! and on branch (`C̄ ← C̄ ∪ w̄1 ∪ … ∪ w̄s`); the output is released at HALT
//! only if `ȳ ∪ C̄ ⊆ J` for the policy `allow(J)`.
//!
//! Two faithful realizations are provided and tested against each other:
//!
//! * [`dynamic`] — a taint-tracking interpreter;
//! * [`mod@instrument`] — the paper's literal source-to-source construction:
//!   the mechanism *is another flowchart* over the original variables plus
//!   bitmask-encoded surveillance registers.
//!
//! Variants:
//!
//! * [`highwater`] — the high-water-mark baseline `M_h` (no forgetting:
//!   assignment accumulates instead of replacing), which Section 4 proves
//!   strictly less complete than surveillance;
//! * [`timed`] — the Theorem 3′ mechanism `M′` that checks `C̄ ⊆ J` at
//!   every decision box and aborts immediately, remaining sound even when
//!   running time is observable;
//! * [`mod@explain`] — owner-facing violation explanations: the carrier chain
//!   of assignments and branches through which an offending input reached
//!   the failed check;
//! * [`mls`] — multi-level-security labels (Denning's lattice model, the
//!   paper's reference \[2\]) compiled down to `allow(J)` per clearance;
//! * [`monitor`] — the disciplines above as pluggable observers on the
//!   shared `enf_flowchart` stepper, plus the structured per-step
//!   [`monitor::TraceEvent`] stream behind `explain` and `enforce trace`;
//! * [`vm`] — the same disciplines fused onto the register-bytecode VM
//!   (`enf_flowchart::bytecode`): per-instruction precompiled taint
//!   sources, bit-identical verdicts, an order of magnitude faster.

#![warn(missing_docs)]

pub mod dynamic;
pub mod explain;
pub mod highwater;
pub mod instrument;
pub mod mechanism;
pub mod mls;
pub mod monitor;
pub mod state;
pub mod timed;
pub mod vm;

pub use dynamic::{run_reference, run_surveillance, CheckAt, Style, SurvConfig, SurvOutcome};
pub use explain::{explain, Explanation, FlowEvent};
pub use instrument::{instrument, Instrumented};
pub use mechanism::{HighWater, Surveillance};
pub use monitor::{run_trace, EventMonitor, TaintMonitor, TraceEvent, TraceKind};
pub use state::TaintState;
pub use timed::TimedMechanism;
pub use vm::{explain_vm, run_surveillance_vm, run_trace_vm, VmSurveillance};
