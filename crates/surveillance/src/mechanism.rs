//! `enf_core::Mechanism` adapters for the dynamic disciplines.
//!
//! [`Surveillance`] is the paper's M (or M′ with `timed`), [`HighWater`]
//! the baseline M_h. Both protect a [`FlowchartProgram`] whose output range
//! is [`ExecValue`] (value or totalized divergence); a run of the mechanism
//! that itself diverges mirrors the program and returns
//! `Value(ExecValue::Diverged)`.

use crate::dynamic::{run_surveillance, SurvConfig, SurvOutcome};
use enf_core::{IndexSet, MechOutput, Mechanism, Notice, V};
use enf_flowchart::interp::ExecValue;
use enf_flowchart::program::FlowchartProgram;

pub(crate) fn to_mech_output(out: SurvOutcome) -> MechOutput<ExecValue> {
    match out {
        SurvOutcome::Accepted { y, .. } => MechOutput::Value(ExecValue::Value(y)),
        SurvOutcome::Violation { .. } => MechOutput::Violation(Notice::lambda()),
        SurvOutcome::OutOfFuel => MechOutput::Value(ExecValue::Diverged),
    }
}

/// The surveillance protection mechanism for a flowchart and `allow(J)`.
#[derive(Clone, Debug)]
pub struct Surveillance {
    program: FlowchartProgram,
    cfg: SurvConfig,
}

impl Surveillance {
    /// Theorem 3's M: check at HALT; sound when running time is not
    /// observable (and the program terminates on the probed domain).
    pub fn new(program: FlowchartProgram, allowed: IndexSet) -> Self {
        let cfg = SurvConfig::surveillance(allowed).with_fuel(program.fuel());
        Surveillance { program, cfg }
    }

    /// Theorem 3′'s M′: additionally check at every decision box; sound
    /// even when running time is observable.
    pub fn timed(program: FlowchartProgram, allowed: IndexSet) -> Self {
        let cfg = SurvConfig::timed(allowed).with_fuel(program.fuel());
        Surveillance { program, cfg }
    }

    /// The protected program.
    pub fn program(&self) -> &FlowchartProgram {
        &self.program
    }

    /// The run configuration.
    pub fn config(&self) -> &SurvConfig {
        &self.cfg
    }

    /// Runs and returns the full surveillance outcome (with violation site
    /// and taint), not just the mechanism output.
    pub fn run_detailed(&self, input: &[V]) -> SurvOutcome {
        run_surveillance(self.program.flowchart(), input, &self.cfg)
    }
}

impl Mechanism for Surveillance {
    type Out = ExecValue;

    fn arity(&self) -> usize {
        self.program.arity()
    }

    fn run(&self, input: &[V]) -> MechOutput<ExecValue> {
        to_mech_output(self.run_detailed(input))
    }
}

use enf_core::Program as _;

/// The high-water-mark mechanism M_h for a flowchart and `allow(J)`.
#[derive(Clone, Debug)]
pub struct HighWater {
    program: FlowchartProgram,
    cfg: SurvConfig,
}

impl HighWater {
    /// Builds M_h: like surveillance but taints never shrink.
    pub fn new(program: FlowchartProgram, allowed: IndexSet) -> Self {
        let cfg = SurvConfig::highwater(allowed).with_fuel(program.fuel());
        HighWater { program, cfg }
    }

    /// The protected program.
    pub fn program(&self) -> &FlowchartProgram {
        &self.program
    }
}

impl Mechanism for HighWater {
    type Out = ExecValue;

    fn arity(&self) -> usize {
        self.program.arity()
    }

    fn run(&self, input: &[V]) -> MechOutput<ExecValue> {
        to_mech_output(run_surveillance(self.program.flowchart(), input, &self.cfg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enf_core::{
        check_protection, check_soundness, compare, Allow, Grid, Identity, MechOrdering,
        Policy as _,
    };
    use enf_flowchart::corpus;
    use enf_flowchart::parse;

    fn program(src: &str) -> FlowchartProgram {
        FlowchartProgram::new(parse(src).unwrap())
    }

    #[test]
    fn surveillance_is_a_protection_mechanism() {
        let p = program("program(2) { if x2 == 0 { y := x1; } else { y := x2; } }");
        let m = Surveillance::new(p.clone(), IndexSet::single(2));
        let g = Grid::hypercube(2, -2..=2);
        assert!(check_protection(&m, &p, &g).is_ok());
    }

    #[test]
    fn theorem_3_surveillance_sound_on_corpus() {
        for pp in corpus::all() {
            let fc = pp.flowchart.clone();
            // Theorem 3 is a fixed-policy statement. Programs with policy
            // boxes are governed by the *final* active policy, so their
            // soundness is judged by the scheduled oracle
            // (`check_soundness_scheduled`), not the fixed-policy one.
            if fc.has_policy_nodes() {
                continue;
            }
            let p = FlowchartProgram::new(fc);
            let m = Surveillance::new(p, pp.policy.allowed());
            // Probe naturals to stay in the terminating region of the
            // timing_constant program.
            let g = Grid::hypercube(pp.policy.arity(), 0..=4);
            assert!(
                check_soundness(&m, &pp.policy, &g, false).is_sound(),
                "surveillance unsound on {}",
                pp.name
            );
        }
    }

    #[test]
    fn theorem_3_highwater_sound_on_corpus() {
        for pp in corpus::all() {
            // Fixed-policy statement; see the surveillance sweep above.
            if pp.flowchart.has_policy_nodes() {
                continue;
            }
            let p = FlowchartProgram::new(pp.flowchart.clone());
            let m = HighWater::new(p, pp.policy.allowed());
            let g = Grid::hypercube(pp.policy.arity(), 0..=4);
            assert!(
                check_soundness(&m, &pp.policy, &g, false).is_sound(),
                "high-water unsound on {}",
                pp.name
            );
        }
    }

    #[test]
    fn section_4_surveillance_beats_highwater_on_forgetting() {
        let pp = corpus::forgetting();
        let p = FlowchartProgram::new(pp.flowchart);
        let j = pp.policy.allowed();
        let ms = Surveillance::new(p.clone(), j);
        let mh = HighWater::new(p, j);
        let g = Grid::hypercube(2, -3..=3);
        let r = compare(&ms, &mh, &g);
        assert_eq!(r.ordering, MechOrdering::FirstMore);
        // The paper's exact claim: M_h always Λ; M_s accepts iff x2 == 0.
        assert_eq!(r.accepted_second, 0);
        for a in enf_core::InputDomain::iter_inputs(&g) {
            assert_eq!(ms.run(&a).is_value(), a[1] == 0, "at {a:?}");
        }
    }

    #[test]
    fn surveillance_always_at_least_as_complete_as_highwater() {
        for pp in corpus::all() {
            let p = FlowchartProgram::new(pp.flowchart.clone());
            let j = pp.policy.allowed();
            let ms = Surveillance::new(p.clone(), j);
            let mh = HighWater::new(p, j);
            let g = Grid::hypercube(pp.policy.arity(), 0..=4);
            let r = compare(&ms, &mh, &g);
            assert!(r.first_as_complete(), "M_s < M_h on {}", pp.name);
        }
    }

    #[test]
    fn section_4_surveillance_not_maximal() {
        let pp = corpus::nonmaximal();
        let p = FlowchartProgram::new(pp.flowchart);
        let ms = Surveillance::new(p.clone(), pp.policy.allowed());
        let g = Grid::hypercube(2, -2..=2);
        // M_s always violates …
        for a in enf_core::InputDomain::iter_inputs(&g) {
            assert!(ms.run(&a).is_violation());
        }
        // … but Q as its own mechanism is sound: M_s is not maximal.
        let id = Identity::new(p);
        assert!(check_soundness(&id, &pp.policy, &g, false).is_sound());
        let r = compare(&id, &ms, &g);
        assert_eq!(r.ordering, MechOrdering::FirstMore);
    }

    #[test]
    fn example_7_transform_reaches_maximal() {
        let before = corpus::example7();
        let after = corpus::example7_transformed();
        let g = Grid::hypercube(2, -2..=2);
        let m_before = Surveillance::new(
            FlowchartProgram::new(before.flowchart),
            before.policy.allowed(),
        );
        let m_after = Surveillance::new(
            FlowchartProgram::new(after.flowchart),
            after.policy.allowed(),
        );
        for a in enf_core::InputDomain::iter_inputs(&g) {
            assert!(m_before.run(&a).is_violation(), "before accepts {a:?}");
            assert_eq!(
                m_after.run(&a),
                MechOutput::Value(ExecValue::Value(1)),
                "after not accepting {a:?}"
            );
        }
    }

    #[test]
    fn example_8_transform_strictly_hurts() {
        let before = corpus::example8();
        let after = corpus::example8_transformed();
        let g = Grid::hypercube(2, -2..=2);
        let m = Surveillance::new(
            FlowchartProgram::new(before.flowchart),
            before.policy.allowed(),
        );
        let m_t = Surveillance::new(
            FlowchartProgram::new(after.flowchart),
            after.policy.allowed(),
        );
        // M accepts exactly when x2 == 1 …
        for a in enf_core::InputDomain::iter_inputs(&g) {
            assert_eq!(m.run(&a).is_value(), a[1] == 1, "at {a:?}");
        }
        // … and the transformed mechanism never accepts: M > M′.
        let r = compare(&m, &m_t, &g);
        assert_eq!(r.ordering, MechOrdering::FirstMore);
        assert_eq!(r.accepted_second, 0);
    }

    #[test]
    fn timed_mechanism_also_protection_and_sound_untimed() {
        let p = program("program(2) { if x2 == 0 { y := 1; } else { y := 2; } }");
        let m = Surveillance::timed(p.clone(), IndexSet::single(2));
        let g = Grid::hypercube(2, -2..=2);
        assert!(check_protection(&m, &p, &g).is_ok());
        assert!(check_soundness(&m, &Allow::new(2, [2]), &g, false).is_sound());
    }

    #[test]
    fn timed_less_complete_than_untimed_on_forgetting_like_shapes() {
        // M′ kills a denied branch even when surveillance would later
        // forget: there exist programs with M_s > M′.
        let p = program("program(2) { if x1 == 0 { r1 := 1; } else { r1 := 2; } y := x2; }");
        // Under allow(1, 2) nothing is denied — both accept; use allow(2).
        let j = IndexSet::single(2);
        let ms = Surveillance::new(p.clone(), j);
        let mt = Surveillance::timed(p, j);
        let g = Grid::hypercube(2, -2..=2);
        // Here both always violate (PC taint persists to HALT) — M_s == M′.
        let r = compare(&ms, &mt, &g);
        assert_eq!(r.ordering, MechOrdering::Equal);
        // But on a program whose denied branch is *after* the output is
        // fixed, the HALT check still fails for M_s while M′ fails earlier;
        // acceptance sets agree. The real gap needs forgetting of C̄, which
        // the paper's C̄ never does — so M_s ≥ M′ should hold generally.
        let p2 = program("program(2) { y := x2; if x1 == 0 { r1 := 1; } }");
        let ms2 = Surveillance::new(p2.clone(), j);
        let mt2 = Surveillance::timed(p2, j);
        let r2 = compare(&ms2, &mt2, &g);
        assert!(r2.first_as_complete());
    }

    #[test]
    fn divergence_mirrors_program() {
        let fc = parse("program(1) { while x1 != 0 { skip; } y := 1; }").unwrap();
        let p = FlowchartProgram::with_fuel(fc, 100);
        let m = Surveillance::new(p, IndexSet::single(1));
        assert_eq!(m.run(&[0]), MechOutput::Value(ExecValue::Value(1)));
        assert_eq!(m.run(&[5]), MechOutput::Value(ExecValue::Diverged));
    }
}
