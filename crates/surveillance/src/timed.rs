//! Theorem 3′: the mechanism as a timed observable.
//!
//! When running time is observable, the right object of study is the
//! mechanism-as-program: its output is the pair (result-or-notice, steps),
//! and soundness means *that pair* factors through the policy view.
//! [`TimedMechanism`] wraps the dynamic engine accordingly; the
//! instrumented flowchart of [`mod@crate::instrument`] provides the same view
//! through its own `Program` impl (with the literal flowchart's step
//! count).
//!
//! Theorem 3′'s content, checkable here: with the per-decision guard the
//! pair is constant on every `allow(J)`-class; without it, the step count
//! (or even termination) can vary within a class — a covert channel.

use crate::dynamic::{run_surveillance, SurvConfig, SurvOutcome};
use enf_core::{IndexSet, MechOutput, Notice, Program, Timed, V};
use enf_flowchart::graph::Flowchart;
use enf_flowchart::interp::ExecValue;
use std::sync::Arc;

/// A surveillance run exposed as a program whose output includes the
/// mechanism's own running time.
#[derive(Clone, Debug)]
pub struct TimedMechanism {
    fc: Arc<Flowchart>,
    cfg: SurvConfig,
}

impl TimedMechanism {
    /// Theorem 3′'s M′ (per-decision checks) as a timed observable.
    pub fn new(fc: Flowchart, allowed: IndexSet) -> Self {
        TimedMechanism {
            fc: Arc::new(fc),
            cfg: SurvConfig::timed(allowed),
        }
    }

    /// Theorem 3's M (HALT-only check) as a timed observable — the thing
    /// Theorem 3 does *not* claim is sound; provided for the contrast
    /// experiments.
    pub fn halt_checked(fc: Flowchart, allowed: IndexSet) -> Self {
        TimedMechanism {
            fc: Arc::new(fc),
            cfg: SurvConfig::surveillance(allowed),
        }
    }

    /// Replaces the fuel bound.
    #[must_use]
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.cfg = self.cfg.with_fuel(fuel);
        self
    }

    /// The run configuration in use.
    pub fn config(&self) -> &SurvConfig {
        &self.cfg
    }
}

impl Program for TimedMechanism {
    type Out = Timed<MechOutput<ExecValue>>;

    fn arity(&self) -> usize {
        self.fc.arity()
    }

    fn eval(&self, input: &[V]) -> Timed<MechOutput<ExecValue>> {
        match run_surveillance(&self.fc, input, &self.cfg) {
            SurvOutcome::Accepted { y, steps } => {
                Timed::new(MechOutput::Value(ExecValue::Value(y)), steps)
            }
            SurvOutcome::Violation { steps, .. } => {
                Timed::new(MechOutput::Violation(Notice::lambda()), steps)
            }
            SurvOutcome::OutOfFuel => {
                Timed::new(MechOutput::Value(ExecValue::Diverged), self.cfg.fuel)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enf_core::{check_soundness, Allow, Grid, Identity};
    use enf_flowchart::corpus;
    use enf_flowchart::generate::{random_flowchart, GenConfig};
    use enf_flowchart::parse;

    fn sound(tm: &TimedMechanism, policy: &Allow, grid: &Grid) -> bool {
        check_soundness(&Identity::new(tm), policy, grid, false).is_sound()
    }

    #[test]
    fn theorem_3_prime_on_timing_constant() {
        let pp = corpus::timing_constant();
        let g = Grid::hypercube(1, 0..=6);
        let m_prime = TimedMechanism::new(pp.flowchart.clone(), pp.policy.allowed());
        assert!(sound(&m_prime, &pp.policy, &g), "M′ must be sound");
        let m = TimedMechanism::halt_checked(pp.flowchart, pp.policy.allowed());
        assert!(!sound(&m, &pp.policy, &g), "M leaks via its running time");
    }

    #[test]
    fn theorem_3_prime_property_over_random_programs() {
        // M′'s (output, steps) pair must be constant on every policy class
        // for random terminating programs and several policies.
        let gen_cfg = GenConfig::default();
        let g = Grid::hypercube(2, -1..=1);
        for seed in 300..360 {
            let fc = random_flowchart(seed, &gen_cfg);
            for j in [IndexSet::empty(), IndexSet::single(1), IndexSet::single(2)] {
                let policy = Allow::from_set(2, j);
                let m = TimedMechanism::new(fc.clone(), j);
                assert!(
                    sound(&m, &policy, &g),
                    "M′ unsound on seed {seed} with J = {j}"
                );
            }
        }
    }

    #[test]
    fn theorem_3_prime_closes_termination_channel() {
        let fc = parse("program(1) { while x1 != 0 { skip; } y := 1; }").unwrap();
        let g = Grid::hypercube(1, 0..=4);
        let policy = Allow::none(1);
        let m_prime = TimedMechanism::new(fc.clone(), IndexSet::empty()).with_fuel(500);
        assert!(sound(&m_prime, &policy, &g));
        let m = TimedMechanism::halt_checked(fc, IndexSet::empty()).with_fuel(500);
        assert!(!sound(&m, &policy, &g));
    }

    #[test]
    fn m_prime_accepts_fully_allowed_programs() {
        let fc = parse("program(2) { if x1 > x2 { y := x1; } else { y := x2; } }").unwrap();
        let m = TimedMechanism::new(fc, IndexSet::full(2));
        let out = m.eval(&[3, 5]);
        assert_eq!(out.value, MechOutput::Value(ExecValue::Value(5)));
        assert!(out.steps > 0);
    }

    #[test]
    fn violation_time_is_class_constant_not_global() {
        // Different *allowed* prefixes may reach the failing check at
        // different times — that is fine; only within-class variation is a
        // leak.
        let fc = parse(
            "program(2) {
                r1 := x2;
                while r1 > 0 { r1 := r1 - 1; }
                if x1 == 0 { y := 1; } else { y := 2; }
            }",
        )
        .unwrap();
        let policy = Allow::new(2, [2]);
        let g = Grid::new(vec![0..=3, 0..=3]);
        let m = TimedMechanism::new(fc, IndexSet::single(2));
        assert!(sound(&m, &policy, &g));
        // And the violation step count genuinely differs across classes.
        let t0 = m.eval(&[0, 0]).steps;
        let t3 = m.eval(&[0, 3]).steps;
        assert_ne!(t0, t3);
    }
}
