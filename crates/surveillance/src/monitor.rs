//! The surveillance disciplines as [`Monitor`]s on the shared stepper.
//!
//! [`TaintMonitor`] is the paper's transformation (1)–(4) expressed as an
//! observer: it keeps the surveillance variables, vetoes disallowed tests
//! at decision boxes (`CheckAt::EveryDecision`, Theorem 3′) and makes the
//! release decision at HALT (`ȳ ∪ C̄ ⊆ J`, Theorem 3). One implementation
//! covers all four `Style` × `CheckAt` configurations.
//!
//! [`EventMonitor`] is the observability half: it emits one structured
//! [`TraceEvent`] per executed box — taint deltas, the PC taint, the
//! branch taken — serializable to JSONL. Paired with the taint monitor
//! ([`run_trace`]) it yields the mechanism verdict *and* the full account
//! of how every taint got where it is, in a single pass; `explain`, the
//! CLI `trace` subcommand and `dot --taint` all draw from this one stream.

use crate::dynamic::{CheckAt, Style, SurvConfig, SurvOutcome};
use crate::explain::FlowEvent;
use crate::state::TaintState;
use enf_core::{IndexSet, Schedule, V};
use enf_flowchart::ast::{Expr, Pred, Var};
use enf_flowchart::graph::{Flowchart, Node, NodeId, PolicySpec};
use enf_flowchart::interp::Store;
use enf_flowchart::pretty::{declassify_to_string, expr_to_string, pred_to_string};
use enf_flowchart::stepper::{Monitor, Pair, Stepper};

/// The surveillance mechanism as a pluggable monitor.
///
/// Carries the taint state and the policy; the stepper carries the walk.
/// [`crate::dynamic::run_surveillance`] is the stepper with this monitor.
///
/// The *active* allowed set starts at `cfg.allowed` and is replaced by
/// every `setpolicy` box the run traverses: concrete boxes carry their own
/// set, slot boxes resolve against the governing [`Schedule`] (attach one
/// with [`TaintMonitor::with_schedule`]; without one, slots read as
/// `allow()`, the most restrictive choice). `declassify(v: A ~> B)` boxes
/// relabel `v̄ ← (v̄ \ A) ∪ B` — the store is untouched.
#[derive(Clone, Debug)]
pub struct TaintMonitor {
    cfg: SurvConfig,
    taints: TaintState,
    active: IndexSet,
    schedule: Option<Schedule>,
}

impl TaintMonitor {
    /// A monitor for `fc` under `cfg`, with freshly initialized
    /// surveillance variables (`x̄i = {i}`, everything else empty).
    pub fn new(fc: &Flowchart, cfg: SurvConfig) -> Self {
        TaintMonitor {
            cfg,
            taints: TaintState::init(fc.arity(), fc.max_reg()),
            active: cfg.allowed,
            schedule: None,
        }
    }

    /// Attaches the schedule that resolves `setpolicy p{i}` slot boxes.
    /// The schedule's initial policy replaces `cfg.allowed` as the
    /// starting active set.
    #[must_use]
    pub fn with_schedule(mut self, schedule: Schedule) -> Self {
        self.active = schedule.initial;
        self.schedule = Some(schedule);
        self
    }

    /// The current taint state (e.g. for rendering).
    pub fn taints(&self) -> &TaintState {
        &self.taints
    }

    /// The currently active allowed set (`cfg.allowed` until the first
    /// `setpolicy` box).
    pub fn active(&self) -> IndexSet {
        self.active
    }
}

impl Monitor for TaintMonitor {
    type Outcome = SurvOutcome;

    fn on_assign(&mut self, _step: u64, _at: NodeId, var: Var, expr: &Expr, _store: &Store) {
        // Transformation (2): v̄ ← w̄1 ∪ … ∪ w̄s ∪ C̄ (∪ v̄ for the
        // high-water discipline).
        let mut t = self.taints.expr_taint(expr).union(&self.taints.pc);
        if self.cfg.style == Style::Accumulate {
            t.union_with(&self.taints.get(var));
        }
        self.taints.set(var, t);
    }

    fn on_decision(
        &mut self,
        step: u64,
        at: NodeId,
        pred: &Pred,
        _store: &Store,
    ) -> Option<Self::Outcome> {
        // Transformation (3): C̄ ← C̄ ∪ w̄1 ∪ … ∪ w̄s.
        let t = self.taints.pred_taint(pred);
        self.taints.pc.union_with(&t);
        if self.cfg.check == CheckAt::EveryDecision && !self.taints.pc.is_subset(&self.active) {
            // Theorem 3′: abort before the disallowed test is taken.
            return Some(SurvOutcome::Violation {
                site: at,
                taint: self.taints.pc,
                steps: step,
            });
        }
        None
    }

    fn on_setpolicy(&mut self, _step: u64, _at: NodeId, spec: PolicySpec, _store: &Store) {
        self.active = match spec {
            PolicySpec::Concrete(s) => s,
            PolicySpec::Slot(i) => self
                .schedule
                .as_ref()
                .map(|s| s.slot(i))
                .unwrap_or(IndexSet::EMPTY),
        };
    }

    fn on_declassify(
        &mut self,
        _step: u64,
        _at: NodeId,
        var: Var,
        from: IndexSet,
        to: IndexSet,
        _store: &Store,
    ) {
        let t = self.taints.get(var);
        self.taints.set(var, t.difference(&from).union(&to));
    }

    fn on_halt(&mut self, step: u64, at: NodeId, store: &Store) -> Self::Outcome {
        // Transformation (4): release y only if ȳ ∪ C̄ ⊆ J — J being the
        // *currently active* allowed set.
        let t = self.taints.halt_taint();
        if t.is_subset(&self.active) {
            SurvOutcome::Accepted {
                y: store.output(),
                steps: step,
            }
        } else {
            SurvOutcome::Violation {
                site: at,
                taint: t,
                steps: step,
            }
        }
    }

    fn on_fuel(&mut self, _steps: u64) -> Self::Outcome {
        SurvOutcome::OutOfFuel
    }
}

/// What happened at one executed box, taint-wise.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TraceKind {
    /// The START box.
    Start,
    /// An assignment: the target's taint before and after
    /// transformation (2).
    Assign {
        /// The assigned variable.
        var: Var,
        /// Its taint before the assignment.
        before: IndexSet,
        /// Its taint after.
        after: IndexSet,
    },
    /// A decision: the PC taint before and after transformation (3).
    /// `taken` is `None` when the run was vetoed at this box before the
    /// predicate was evaluated (the Theorem 3′ abort).
    Branch {
        /// Which way the branch went, if it was taken at all.
        taken: Option<bool>,
        /// `C̄` before the decision.
        before: IndexSet,
        /// `C̄` after.
        after: IndexSet,
    },
    /// A `setpolicy` box. `active` is the allowed set after the change —
    /// `None` for a slot box, whose binding the event stream (a pure
    /// observer with no schedule) cannot know.
    SetPolicy {
        /// The new active allowed set, if statically known.
        active: Option<IndexSet>,
    },
    /// A `declassify` box: the variable's taint before and after the
    /// relabel `v̄ ← (v̄ \ A) ∪ B`.
    Declassify {
        /// The relabeled variable.
        var: Var,
        /// Its taint before.
        before: IndexSet,
        /// Its taint after.
        after: IndexSet,
    },
    /// A HALT box; `released` is the release-check set `ȳ ∪ C̄`.
    Halt {
        /// The set the release check inspects.
        released: IndexSet,
    },
}

/// One entry of the structured per-step trace stream.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TraceEvent {
    /// 1-based execution step (boxes executed, START and HALT included).
    pub step: u64,
    /// The executed node.
    pub node: NodeId,
    /// Human-readable description of the box (`START`, `y := x1 + 1`,
    /// `branch on x1 == 0`, `HALT`).
    pub what: String,
    /// The PC taint `C̄` after this step.
    pub pc: IndexSet,
    /// The box-specific taint delta.
    pub kind: TraceKind,
}

impl TraceEvent {
    /// The `explain`-style [`FlowEvent`], if this step changed a taint
    /// set. START, HALT and no-op steps yield `None` — exactly the events
    /// the carrier chain never needs.
    pub fn flow_event(&self) -> Option<FlowEvent> {
        let (before, after) = match &self.kind {
            TraceKind::Assign { before, after, .. }
            | TraceKind::Branch { before, after, .. }
            | TraceKind::Declassify { before, after, .. } => (*before, *after),
            TraceKind::Start | TraceKind::SetPolicy { .. } | TraceKind::Halt { .. } => return None,
        };
        (after != before).then(|| FlowEvent {
            step: self.step,
            site: self.node,
            what: self.what.clone(),
            before,
            after,
        })
    }

    /// Serializes the event as one JSON object (one JSONL line).
    pub fn to_json_line(&self) -> String {
        let head = format!(
            "{{\"step\": {}, \"node\": {}, \"what\": \"{}\", \"pc\": {}",
            self.step,
            self.node.0,
            json_escape(&self.what),
            json_set(&self.pc)
        );
        let tail = match &self.kind {
            TraceKind::Start => "\"kind\": \"start\"}".to_string(),
            TraceKind::Assign { var, before, after } => format!(
                "\"kind\": \"assign\", \"var\": \"{var}\", \"before\": {}, \"after\": {}}}",
                json_set(before),
                json_set(after)
            ),
            TraceKind::Branch {
                taken,
                before,
                after,
            } => format!(
                "\"kind\": \"branch\", \"taken\": {}, \"before\": {}, \"after\": {}}}",
                match taken {
                    Some(t) => t.to_string(),
                    None => "null".to_string(),
                },
                json_set(before),
                json_set(after)
            ),
            TraceKind::SetPolicy { active } => format!(
                "\"kind\": \"setpolicy\", \"active\": {}}}",
                match active {
                    Some(s) => json_set(s),
                    None => "null".to_string(),
                }
            ),
            TraceKind::Declassify { var, before, after } => format!(
                "\"kind\": \"declassify\", \"var\": \"{var}\", \"before\": {}, \"after\": {}}}",
                json_set(before),
                json_set(after)
            ),
            TraceKind::Halt { released } => {
                format!("\"kind\": \"halt\", \"released\": {}}}", json_set(released))
            }
        };
        format!("{head}, {tail}")
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_set(set: &IndexSet) -> String {
    let items: Vec<String> = set.iter().map(|i| i.to_string()).collect();
    format!("[{}]", items.join(", "))
}

/// Emits one [`TraceEvent`] per executed box.
///
/// The monitor keeps its own [`TaintState`] — it is a pure observer and
/// composes under [`Pair`] with any co-monitor without sharing state. Its
/// taint discipline must match the co-running mechanism's [`Style`] for
/// the deltas to agree with the verdict.
#[derive(Clone, Debug)]
pub struct EventMonitor {
    style: Style,
    taints: TaintState,
    events: Vec<TraceEvent>,
}

impl EventMonitor {
    /// An event monitor for `fc` under the given assignment discipline.
    pub fn new(fc: &Flowchart, style: Style) -> Self {
        EventMonitor {
            style,
            taints: TaintState::init(fc.arity(), fc.max_reg()),
            events: Vec::new(),
        }
    }
}

impl Monitor for EventMonitor {
    type Outcome = Vec<TraceEvent>;

    fn on_step(&mut self, step: u64, at: NodeId, node: &Node) {
        if matches!(node, Node::Start) {
            self.events.push(TraceEvent {
                step,
                node: at,
                what: "START".to_string(),
                pc: self.taints.pc,
                kind: TraceKind::Start,
            });
        }
    }

    fn on_assign(&mut self, step: u64, at: NodeId, var: Var, expr: &Expr, _store: &Store) {
        let before = self.taints.get(var);
        let mut t = self.taints.expr_taint(expr).union(&self.taints.pc);
        if self.style == Style::Accumulate {
            t.union_with(&before);
        }
        self.taints.set(var, t);
        self.events.push(TraceEvent {
            step,
            node: at,
            what: format!("{var} := {}", expr_to_string(expr)),
            pc: self.taints.pc,
            kind: TraceKind::Assign {
                var,
                before,
                after: t,
            },
        });
    }

    fn on_decision(
        &mut self,
        step: u64,
        at: NodeId,
        pred: &Pred,
        _store: &Store,
    ) -> Option<Self::Outcome> {
        let before = self.taints.pc;
        let t = self.taints.pred_taint(pred);
        self.taints.pc.union_with(&t);
        // `taken` is unknown yet: a co-monitor may veto this very box, in
        // which case the branch is never taken and the event keeps `None`.
        self.events.push(TraceEvent {
            step,
            node: at,
            what: format!("branch on {}", pred_to_string(pred)),
            pc: self.taints.pc,
            kind: TraceKind::Branch {
                taken: None,
                before,
                after: self.taints.pc,
            },
        });
        None
    }

    fn on_branch(&mut self, _step: u64, _at: NodeId, _pred: &Pred, taken: bool) {
        if let Some(TraceEvent {
            kind: TraceKind::Branch { taken: slot, .. },
            ..
        }) = self.events.last_mut()
        {
            *slot = Some(taken);
        }
    }

    fn on_setpolicy(&mut self, step: u64, at: NodeId, spec: PolicySpec, _store: &Store) {
        self.events.push(TraceEvent {
            step,
            node: at,
            what: format!("setpolicy {spec}"),
            pc: self.taints.pc,
            kind: TraceKind::SetPolicy {
                active: match spec {
                    PolicySpec::Concrete(s) => Some(s),
                    PolicySpec::Slot(_) => None,
                },
            },
        });
    }

    fn on_declassify(
        &mut self,
        step: u64,
        at: NodeId,
        var: Var,
        from: IndexSet,
        to: IndexSet,
        _store: &Store,
    ) {
        let before = self.taints.get(var);
        let after = before.difference(&from).union(&to);
        self.taints.set(var, after);
        self.events.push(TraceEvent {
            step,
            node: at,
            what: declassify_to_string(var, &from, &to),
            pc: self.taints.pc,
            kind: TraceKind::Declassify { var, before, after },
        });
    }

    fn on_halt(&mut self, step: u64, at: NodeId, _store: &Store) -> Self::Outcome {
        self.events.push(TraceEvent {
            step,
            node: at,
            what: "HALT".to_string(),
            pc: self.taints.pc,
            kind: TraceKind::Halt {
                released: self.taints.halt_taint(),
            },
        });
        std::mem::take(&mut self.events)
    }

    fn on_fuel(&mut self, _steps: u64) -> Self::Outcome {
        std::mem::take(&mut self.events)
    }
}

/// Runs the mechanism and the event stream in one pass: the verdict of
/// [`crate::dynamic::run_surveillance`] plus one [`TraceEvent`] per
/// executed box.
///
/// # Examples
///
/// ```
/// use enf_core::IndexSet;
/// use enf_flowchart::parse;
/// use enf_surveillance::dynamic::SurvConfig;
/// use enf_surveillance::monitor::run_trace;
///
/// let fc = parse("program(2) { y := x1; }").unwrap();
/// let (out, events) = run_trace(&fc, &[5, 0], &SurvConfig::surveillance(IndexSet::single(2)));
/// assert!(out.is_violation());
/// // START, the assignment, HALT.
/// assert_eq!(events.len(), 3);
/// ```
pub fn run_trace(fc: &Flowchart, inputs: &[V], cfg: &SurvConfig) -> (SurvOutcome, Vec<TraceEvent>) {
    Stepper::new(fc).with_fuel(cfg.fuel).run(
        inputs,
        &mut Pair(
            TaintMonitor::new(fc, *cfg),
            EventMonitor::new(fc, cfg.style),
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic::run_surveillance;
    use enf_flowchart::parse;

    #[test]
    fn trace_verdict_matches_mechanism() {
        let fc = parse("program(2) { y := x1; if x2 == 0 { y := 0; } }").unwrap();
        for inputs in [[9, 0], [9, 5]] {
            let cfg = SurvConfig::surveillance(IndexSet::single(2));
            let (out, _) = run_trace(&fc, &inputs, &cfg);
            assert_eq!(out, run_surveillance(&fc, &inputs, &cfg));
        }
    }

    #[test]
    fn trace_has_one_event_per_step() {
        let fc = parse("program(1) { if x1 == 0 { y := 1; } else { y := 2; } }").unwrap();
        let cfg = SurvConfig::surveillance(IndexSet::full(1));
        let (out, events) = run_trace(&fc, &[0], &cfg);
        match out {
            SurvOutcome::Accepted { steps, .. } => assert_eq!(events.len() as u64, steps),
            other => panic!("expected acceptance, got {other:?}"),
        }
        assert!(matches!(events[0].kind, TraceKind::Start));
        assert!(matches!(
            events.last().unwrap().kind,
            TraceKind::Halt { .. }
        ));
    }

    #[test]
    fn branch_event_records_the_taken_path() {
        let fc = parse("program(1) { if x1 == 0 { y := 1; } else { y := 2; } }").unwrap();
        let cfg = SurvConfig::surveillance(IndexSet::full(1));
        let (_, then_run) = run_trace(&fc, &[0], &cfg);
        let (_, else_run) = run_trace(&fc, &[7], &cfg);
        let taken = |evs: &[TraceEvent]| match evs.iter().find_map(|e| match e.kind {
            TraceKind::Branch { taken, .. } => Some(taken),
            _ => None,
        }) {
            Some(t) => t,
            None => panic!("no branch event"),
        };
        assert_eq!(taken(&then_run), Some(true));
        assert_eq!(taken(&else_run), Some(false));
    }

    #[test]
    fn vetoed_branch_keeps_taken_none() {
        let fc = parse("program(1) { if x1 == 0 { y := 1; } else { y := 2; } }").unwrap();
        let cfg = SurvConfig::timed(IndexSet::empty());
        let (out, events) = run_trace(&fc, &[0], &cfg);
        assert!(out.is_violation());
        match events.last().unwrap().kind {
            TraceKind::Branch { taken, .. } => assert_eq!(taken, None),
            ref other => panic!("expected a branch event, got {other:?}"),
        }
    }

    #[test]
    fn fuel_exhaustion_returns_events_so_far() {
        let fc = parse("program(0) { while true { skip; } }").unwrap();
        let cfg = SurvConfig::surveillance(IndexSet::empty()).with_fuel(10);
        let (out, events) = run_trace(&fc, &[], &cfg);
        assert_eq!(out, SurvOutcome::OutOfFuel);
        assert_eq!(events.len(), 10);
    }

    #[test]
    fn json_lines_are_well_formed() {
        let fc = parse("program(1) { if x1 == 0 { y := 1; } else { y := 2; } }").unwrap();
        let cfg = SurvConfig::surveillance(IndexSet::full(1));
        let (_, events) = run_trace(&fc, &[0], &cfg);
        for e in &events {
            let line = e.to_json_line();
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains("\"step\""), "{line}");
            assert!(line.contains("\"kind\""), "{line}");
        }
        let assign = events
            .iter()
            .find(|e| matches!(e.kind, TraceKind::Assign { .. }))
            .unwrap();
        assert!(assign.to_json_line().contains("\"kind\": \"assign\""));
    }

    #[test]
    fn json_escapes_control_characters() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_escape("\t\r"), "\\t\\r");
    }

    #[test]
    fn accumulate_event_deltas_keep_old_taint() {
        let fc = parse("program(2) { y := x1; y := x2; }").unwrap();
        let (_, events) = run_trace(&fc, &[1, 2], &SurvConfig::highwater(IndexSet::full(2)));
        let deltas: Vec<_> = events
            .iter()
            .filter_map(|e| match e.kind {
                TraceKind::Assign { before, after, .. } => Some((before, after)),
                _ => None,
            })
            .collect();
        assert_eq!(deltas[0], (IndexSet::empty(), IndexSet::single(1)));
        assert_eq!(
            deltas[1],
            (IndexSet::single(1), IndexSet::from_iter([1, 2]))
        );
    }
}
