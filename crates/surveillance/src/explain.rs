//! Violation explanations: *why* did the mechanism say Λ?
//!
//! A bare violation notice is (deliberately) uninformative — that is what
//! soundness demands of the *user-facing* output. The *owner* of the
//! program, however, is entitled to a full account, and debugging
//! mechanisms is exactly the pain point the paper flags for Fenton's
//! ambiguous notices ("this difficulty may make it particularly hard to
//! find program bugs that cause violation notices").
//!
//! [`explain`] runs the program once under the paired taint-and-event
//! monitors ([`crate::monitor::run_trace`]), keeps every taint-acquiring
//! event, and reconstructs the *carrier chain*: the sequence of
//! assignments and decisions through which each offending input index
//! reached the final check.

use crate::dynamic::{SurvConfig, SurvOutcome};
use crate::monitor::{run_trace, TraceEvent};
use enf_core::{IndexSet, V};
use enf_flowchart::graph::{Flowchart, NodeId};

/// One taint-acquiring event during a run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FlowEvent {
    /// Execution step at which it happened.
    pub step: u64,
    /// The node responsible.
    pub site: NodeId,
    /// Human-readable description of the event.
    pub what: String,
    /// Taint the target held before.
    pub before: IndexSet,
    /// Taint it holds after.
    pub after: IndexSet,
}

impl FlowEvent {
    /// Renders the event as one carrier-chain line. This format is shared
    /// by dynamic explanations ([`Explanation::render`]) and the static
    /// `flowlint` pass (where `step` is the node's reverse-postorder
    /// position rather than an execution step).
    pub fn render_line(&self) -> String {
        format!(
            "  step {:>3} at {}: {} [{} -> {}]",
            self.step, self.site, self.what, self.before, self.after
        )
    }
}

/// The full account of one run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Explanation {
    /// Whether the run was accepted.
    pub accepted: bool,
    /// The offending taint at the failed check (empty when accepted).
    pub offending: IndexSet,
    /// Every event that changed a taint set during the run.
    pub events: Vec<FlowEvent>,
}

impl Explanation {
    /// The events that contributed at least one offending index.
    pub fn carrier_chain(&self) -> Vec<&FlowEvent> {
        self.events
            .iter()
            .filter(|e| !e.after.intersection(&self.offending).is_empty())
            .collect()
    }

    /// Renders a human-readable report.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        if self.accepted {
            let _ = writeln!(s, "run accepted; no offending flows");
            return s;
        }
        let _ = writeln!(s, "violation: offending inputs {}", self.offending);
        let _ = writeln!(s, "carrier chain:");
        for e in self.carrier_chain() {
            let _ = writeln!(s, "{}", e.render_line());
        }
        s
    }
}

/// Runs the program once under the paired taint-and-event monitors,
/// keeping every taint change. The mechanism outcome matches
/// [`crate::dynamic::run_surveillance`] exactly; the explanation is the
/// extra.
pub fn explain(fc: &Flowchart, inputs: &[V], cfg: &SurvConfig) -> Explanation {
    let (out, events) = run_trace(fc, inputs, cfg);
    let (accepted, offending) = match out {
        SurvOutcome::Accepted { .. } => (true, IndexSet::empty()),
        SurvOutcome::Violation { taint, .. } => (false, taint.difference(&cfg.allowed)),
        SurvOutcome::OutOfFuel => (false, IndexSet::empty()),
    };
    Explanation {
        accepted,
        offending,
        events: events.iter().filter_map(TraceEvent::flow_event).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic::{run_surveillance, SurvOutcome};
    use enf_core::{Grid, InputDomain};
    use enf_flowchart::generate::{random_flowchart, GenConfig};
    use enf_flowchart::parse;

    #[test]
    fn accepted_runs_have_no_offenders() {
        let fc = parse("program(2) { y := x2; }").unwrap();
        let e = explain(&fc, &[9, 4], &SurvConfig::surveillance(IndexSet::single(2)));
        assert!(e.accepted);
        assert!(e.offending.is_empty());
        assert!(e.render().contains("accepted"));
    }

    #[test]
    fn direct_flow_chain_names_the_assignment() {
        let fc = parse("program(2) { r1 := x1; y := r1; }").unwrap();
        let e = explain(&fc, &[9, 4], &SurvConfig::surveillance(IndexSet::single(2)));
        assert!(!e.accepted);
        assert_eq!(e.offending, IndexSet::single(1));
        let chain = e.carrier_chain();
        assert_eq!(chain.len(), 2);
        assert!(chain[0].what.contains("r1 := x1"));
        assert!(chain[1].what.contains("y := r1"));
    }

    #[test]
    fn implicit_flow_chain_names_the_branch() {
        let fc = parse("program(1) { if x1 == 0 { y := 0; } else { y := 1; } }").unwrap();
        let e = explain(&fc, &[0], &SurvConfig::surveillance(IndexSet::empty()));
        assert!(!e.accepted);
        let chain = e.carrier_chain();
        assert!(chain.iter().any(|ev| ev.what.contains("branch on")));
        let rendered = e.render();
        assert!(rendered.contains("offending inputs {1}"));
        assert!(rendered.contains("branch on x1 == 0"));
    }

    #[test]
    fn forgetting_drops_events_from_the_chain() {
        // y := x1 then y := 0 under allowed branch: the final offending set
        // is empty (accepted); but run under allow() everything offends.
        let fc = parse("program(2) { y := x1; if x2 == 0 { y := 0; } }").unwrap();
        let ok = explain(&fc, &[9, 0], &SurvConfig::surveillance(IndexSet::single(2)));
        assert!(ok.accepted);
        // On the violating path the chain includes the initial stash.
        let bad = explain(&fc, &[9, 5], &SurvConfig::surveillance(IndexSet::single(2)));
        assert!(!bad.accepted);
        assert!(bad
            .carrier_chain()
            .iter()
            .any(|ev| ev.what.contains("y := x1")));
    }

    #[test]
    fn explanation_outcome_matches_mechanism() {
        let cfg_all = [
            SurvConfig::surveillance(IndexSet::single(1)),
            SurvConfig::timed(IndexSet::single(1)),
            SurvConfig::highwater(IndexSet::single(1)),
        ];
        let gen = GenConfig::default();
        for seed in 800..840u64 {
            let fc = random_flowchart(seed, &gen);
            for cfg in &cfg_all {
                for a in Grid::hypercube(2, -1..=1).iter_inputs() {
                    let e = explain(&fc, &a, cfg);
                    let m = run_surveillance(&fc, &a, cfg);
                    let accepted = matches!(m, SurvOutcome::Accepted { .. });
                    assert_eq!(
                        e.accepted, accepted,
                        "seed {seed}, cfg {cfg:?}, input {a:?}"
                    );
                    if let SurvOutcome::Violation { taint, .. } = m {
                        assert_eq!(e.offending, taint.difference(&cfg.allowed));
                    }
                }
            }
        }
    }

    #[test]
    fn timed_abort_explains_the_guard() {
        let fc = parse("program(1) { while x1 != 0 { skip; } y := 1; }").unwrap();
        let e = explain(
            &fc,
            &[3],
            &SurvConfig::timed(IndexSet::empty()).with_fuel(100),
        );
        assert!(!e.accepted);
        assert!(e.render().contains("branch on x1 != 0"));
    }
}
