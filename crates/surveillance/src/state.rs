//! Taint state: one surveillance variable per program variable plus the
//! program counter's `C̄`.

use enf_core::IndexSet;
use enf_flowchart::ast::{Expr, Pred, Var};

/// The surveillance variables of a run: `x̄1 … x̄k`, `r̄1 … r̄m`, `ȳ`, `C̄`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaintState {
    inputs: Vec<IndexSet>,
    regs: Vec<IndexSet>,
    out: IndexSet,
    /// The program counter's surveillance variable.
    pub pc: IndexSet,
}

impl TaintState {
    /// Initializes per the paper's transformation (1): `x̄i = {i}`, every
    /// other surveillance variable empty.
    pub fn init(arity: usize, regs: usize) -> Self {
        TaintState {
            inputs: (1..=arity).map(IndexSet::single).collect(),
            regs: vec![IndexSet::empty(); regs],
            out: IndexSet::empty(),
            pc: IndexSet::empty(),
        }
    }

    /// The surveillance variable of `var`.
    pub fn get(&self, var: Var) -> IndexSet {
        match var {
            Var::Input(i) => self.inputs[i - 1],
            Var::Reg(j) => self.regs.get(j - 1).copied().unwrap_or_default(),
            Var::Out => self.out,
        }
    }

    /// Overwrites the surveillance variable of `var`.
    pub fn set(&mut self, var: Var, taint: IndexSet) {
        match var {
            Var::Input(i) => self.inputs[i - 1] = taint,
            Var::Reg(j) => {
                if j > self.regs.len() {
                    self.regs.resize(j, IndexSet::empty());
                }
                self.regs[j - 1] = taint;
            }
            Var::Out => self.out = taint,
        }
    }

    /// The taint of an expression: the union of the surveillance variables
    /// of every variable occurring in it (including variables inside `ite`
    /// predicates — data-flow selection carries the selector's taint).
    pub fn expr_taint(&self, e: &Expr) -> IndexSet {
        let mut t = IndexSet::empty();
        for v in e.vars() {
            t.union_with(&self.get(v));
        }
        t
    }

    /// The taint of a predicate's variables.
    pub fn pred_taint(&self, p: &Pred) -> IndexSet {
        let mut t = IndexSet::empty();
        for v in p.vars() {
            t.union_with(&self.get(v));
        }
        t
    }

    /// The HALT-time release check set `ȳ ∪ C̄`.
    pub fn halt_taint(&self) -> IndexSet {
        self.out.union(&self.pc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_marks_inputs_with_their_index() {
        let t = TaintState::init(3, 2);
        assert_eq!(t.get(Var::Input(1)), IndexSet::single(1));
        assert_eq!(t.get(Var::Input(3)), IndexSet::single(3));
        assert_eq!(t.get(Var::Reg(1)), IndexSet::empty());
        assert_eq!(t.get(Var::Out), IndexSet::empty());
        assert_eq!(t.pc, IndexSet::empty());
    }

    #[test]
    fn set_and_get_roundtrip() {
        let mut t = TaintState::init(1, 1);
        t.set(Var::Reg(1), IndexSet::single(1));
        assert_eq!(t.get(Var::Reg(1)), IndexSet::single(1));
        t.set(Var::Out, IndexSet::from_iter([1]));
        assert_eq!(t.get(Var::Out), IndexSet::single(1));
    }

    #[test]
    fn out_of_range_register_grows_on_write_reads_empty() {
        let mut t = TaintState::init(1, 0);
        assert_eq!(t.get(Var::Reg(9)), IndexSet::empty());
        t.set(Var::Reg(9), IndexSet::single(1));
        assert_eq!(t.get(Var::Reg(9)), IndexSet::single(1));
    }

    #[test]
    fn expr_taint_unions_over_vars() {
        let mut t = TaintState::init(2, 1);
        t.set(Var::Reg(1), IndexSet::single(2));
        let e = enf_flowchart::ast::add(Expr::x(1), Expr::r(1));
        assert_eq!(t.expr_taint(&e), IndexSet::from_iter([1, 2]));
        assert_eq!(t.expr_taint(&Expr::c(5)), IndexSet::empty());
    }

    #[test]
    fn ite_expression_carries_selector_taint() {
        let t = TaintState::init(2, 0);
        let e = enf_flowchart::ast::ite(Pred::eq(Expr::x(1), Expr::c(0)), Expr::c(1), Expr::x(2));
        assert_eq!(t.expr_taint(&e), IndexSet::from_iter([1, 2]));
    }

    #[test]
    fn halt_taint_is_union_of_y_and_pc() {
        let mut t = TaintState::init(2, 0);
        t.set(Var::Out, IndexSet::single(1));
        t.pc = IndexSet::single(2);
        assert_eq!(t.halt_taint(), IndexSet::from_iter([1, 2]));
    }
}
