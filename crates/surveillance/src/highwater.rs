//! The high-water-mark discipline, as a paper-style instrumented flowchart.
//!
//! High-water marking is the discipline of ADEPT-50 and of Rotenberg's
//! privacy restriction processor: once a container is tainted, it stays
//! tainted — assignment *accumulates* (`v̄ ← v̄ ∪ w̄1 ∪ … ∪ w̄s ∪ C̄`)
//! where surveillance *replaces*. Section 4 compares the two: "MS ≥ Mh …
//! Intuitively, surveillance is better here, since it allows 'forgetting'
//! while high-water mark does not."
//!
//! The dynamic engine's high-water mode lives in
//! [`crate::dynamic::Style::Accumulate`] and the mechanism adapter in
//! [`crate::mechanism::HighWater`]; this module provides the instrumented
//! (flowchart-form) variant and the theorem-level comparisons.

use crate::instrument::{instrument_with, Instrumented};
use enf_core::IndexSet;
use enf_flowchart::graph::Flowchart;

/// Instruments `fc` with the high-water (accumulating) discipline for
/// `allow(J)`.
pub fn instrument_highwater(fc: &Flowchart, allowed: IndexSet) -> Instrumented {
    instrument_with(fc, allowed, false, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic::{run_surveillance, SurvConfig, SurvOutcome};
    use crate::mechanism::{HighWater, Surveillance};
    use enf_core::{compare, Grid, InputDomain, MechOutput, Mechanism, Notice, Policy as _};
    use enf_flowchart::corpus;
    use enf_flowchart::generate::{random_flowchart, GenConfig};
    use enf_flowchart::interp::ExecValue;
    use enf_flowchart::program::FlowchartProgram;

    #[test]
    fn instrumented_highwater_agrees_with_dynamic() {
        // All four discipline combinations (timed × {Replace, Accumulate}),
        // arities 1..=3 and seed-derived policies — the instrumented
        // (flowchart-form) mechanism and the dynamic engine must agree
        // pointwise, not just in the seed suite's arity-2 high-water slice.
        use crate::dynamic::{CheckAt, Style};
        use crate::instrument::instrument_with;
        for arity in 1..=3usize {
            let gen_cfg = GenConfig {
                arity,
                ..GenConfig::default()
            };
            let g = Grid::hypercube(arity, -1..=1);
            for round in 0..30u64 {
                let seed = 5_000 * arity as u64 + 13 * round;
                let fc = random_flowchart(seed, &gen_cfg);
                // A seed-dependent allowed set over the live input indices.
                let j: IndexSet = (1..=arity).filter(|i| (seed >> i) & 1 == 0).collect();
                for (timed, accumulate) in
                    [(false, false), (false, true), (true, false), (true, true)]
                {
                    let inst = instrument_with(&fc, j, timed, accumulate);
                    let cfg = SurvConfig {
                        allowed: j,
                        style: if accumulate {
                            Style::Accumulate
                        } else {
                            Style::Replace
                        },
                        check: if timed {
                            CheckAt::EveryDecision
                        } else {
                            CheckAt::Halt
                        },
                        fuel: 1_000_000,
                    };
                    for a in g.iter_inputs() {
                        let dynamic = match run_surveillance(&fc, &a, &cfg) {
                            SurvOutcome::Accepted { y, .. } => {
                                MechOutput::Value(ExecValue::Value(y))
                            }
                            SurvOutcome::Violation { .. } => {
                                MechOutput::Violation(Notice::lambda())
                            }
                            SurvOutcome::OutOfFuel => MechOutput::Value(ExecValue::Diverged),
                        };
                        assert_eq!(
                            inst.run_mech(&a),
                            dynamic,
                            "seed {seed}, arity {arity}, timed {timed}, \
                             accumulate {accumulate}, J = {j} at {a:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn forgetting_program_shows_the_gap_in_flowchart_form() {
        // The Section 4 program, both mechanisms in their instrumented
        // flowchart form: M_h always Λ, M_s accepts iff x2 == 0.
        let pp = corpus::forgetting();
        let j = pp.policy.allowed();
        let ms = crate::instrument::instrument(&pp.flowchart, j, false);
        let mh = instrument_highwater(&pp.flowchart, j);
        let g = Grid::hypercube(2, -3..=3);
        for a in g.iter_inputs() {
            assert!(mh.run_mech(&a).is_violation(), "M_h accepted {a:?}");
            assert_eq!(ms.run_mech(&a).is_value(), a[1] == 0, "M_s wrong at {a:?}");
        }
    }

    #[test]
    fn surveillance_as_complete_as_highwater_on_random_programs() {
        // Section 4's MS ≥ Mh, property-tested: surveillance taints are
        // pointwise subsets of high-water taints, so M_h violating is
        // implied whenever M_s accepts.
        let gen_cfg = GenConfig::default();
        let g = Grid::hypercube(2, -1..=1);
        for seed in 100..160 {
            let fc = random_flowchart(seed, &gen_cfg);
            for j in [IndexSet::empty(), IndexSet::single(1), IndexSet::single(2)] {
                let p = FlowchartProgram::new(fc.clone());
                let ms = Surveillance::new(p.clone(), j);
                let mh = HighWater::new(p, j);
                let r = compare(&ms, &mh, &g);
                assert!(
                    r.first_as_complete(),
                    "M_s not ≥ M_h on seed {seed} with J = {j}"
                );
            }
        }
    }

    #[test]
    fn highwater_sound_on_random_programs() {
        let gen_cfg = GenConfig::default();
        let g = Grid::hypercube(2, -1..=1);
        for seed in 200..240 {
            let fc = random_flowchart(seed, &gen_cfg);
            for allowed in [IndexSet::single(1), IndexSet::full(2)] {
                let p = FlowchartProgram::new(fc.clone());
                let policy = enf_core::Allow::from_set(2, allowed);
                let mh = HighWater::new(p, allowed);
                assert!(
                    enf_core::check_soundness(&mh, &policy, &g, false).is_sound(),
                    "high-water unsound on seed {seed} with J = {allowed}"
                );
            }
        }
    }

    #[test]
    fn instrumented_highwater_validates_and_reports_arity() {
        let pp = corpus::forgetting();
        let inst = instrument_highwater(&pp.flowchart, pp.policy.allowed());
        assert!(inst.flowchart().validate().is_ok());
        assert_eq!(inst.arity(), pp.policy.arity());
        assert!(!inst.is_timed());
    }
}
