//! Multi-level security labels over the surveillance mechanism.
//!
//! The paper's `allow(J)` policies are the two-point case of the lattice
//! policies its reference list points at (Denning's "A lattice model of
//! secure information flow", reference \[2\]; Bell's model, reference \[1\]).
//! This module provides the general form: each input carries a label from
//! a join-semilattice, an observer holds a clearance, and the policy is
//! "reveal exactly the inputs whose label flows to the clearance".
//!
//! The reduction that makes this work on the existing machinery is the
//! observation that for a *fixed* clearance `c`, the lattice policy **is**
//! `allow(J_c)` with `J_c = { i : label(i) ⊑ c }` — so the label layer
//! compiles to the paper's mechanism, and every soundness and completeness
//! result carries over. The tests check the reduction and the monotonicity
//! the lattice adds: a higher clearance never sees fewer outputs.
//!
//! The label vocabulary itself ([`Label`], [`Level`], [`Compartmented`],
//! [`Classification`]) now lives in [`enf_core::label`] so static analyses
//! can use labels without a surveillance dependency; this module re-exports
//! it from the old paths and keeps the surveillance-specific runners.

use crate::dynamic::{SurvConfig, SurvOutcome};
use crate::mechanism::Surveillance;
use crate::monitor::TaintMonitor;
use enf_core::V;
use enf_flowchart::graph::Flowchart;
use enf_flowchart::program::FlowchartProgram;
use enf_flowchart::stepper::{Fleet, Stepper};

pub use enf_core::label::{Classification, Compartmented, Label, Level};

use enf_core::label::LatticePolicy;

/// Runs the program *once* and checks the induced `allow(J_c)` policy of
/// every clearance in that single pass: a [`Fleet`] of taint monitors
/// shares the one concrete execution, so the program's assignments and
/// branches are evaluated once rather than once per clearance.
///
/// The surveillance discipline checks only at HALT, so no fleet member
/// ever aborts the shared run and each verdict is exactly what
/// [`crate::dynamic::run_surveillance`] would report for that clearance
/// alone (pinned by `mls_fleet_matches_per_clearance_runs` below and the
/// differential property tests).
pub fn run_all_clearances<L: Label>(
    fc: &Flowchart,
    inputs: &[V],
    classification: &Classification<L>,
    clearances: &[L],
) -> Vec<SurvOutcome> {
    let monitors = clearances
        .iter()
        .map(|c| {
            TaintMonitor::new(
                fc,
                SurvConfig::surveillance(classification.induced_allow(c)),
            )
        })
        .collect();
    Stepper::new(fc).run(inputs, &mut Fleet(monitors))
}

/// The surveillance mechanism for a labeled program and a clearance —
/// compiled straight down to the paper's `allow(J_c)` mechanism.
pub fn mls_surveillance<L: Label>(
    program: FlowchartProgram,
    classification: &Classification<L>,
    clearance: &L,
) -> Surveillance {
    Surveillance::new(program, classification.induced_allow(clearance))
}

/// The surveillance mechanism for a full [`LatticePolicy`] — labeling,
/// intransitive release edges, and clearance — via the fixed-clearance
/// reduction `J_c = { i : label(i) ⇝* c }`. With no release edges this is
/// exactly [`mls_surveillance`]; each edge can only *widen* the monitored
/// allow-set, so the judge stays sound for the intransitive oracle.
pub fn lattice_surveillance<L: Label>(
    program: FlowchartProgram,
    policy: &LatticePolicy<L>,
) -> Surveillance {
    Surveillance::new(program, policy.induced())
}

/// Like [`run_all_clearances`], but judging against the intransitive
/// reduction of a labeling plus release edges: one concrete execution,
/// one taint-monitor fleet, one verdict per clearance against
/// `allow({ i : label(i) ⇝* c })`.
pub fn run_all_clearances_lattice<L: Label>(
    fc: &Flowchart,
    inputs: &[V],
    classification: &Classification<L>,
    flow: &enf_core::label::IntransitiveFlow<L>,
    clearances: &[L],
) -> Vec<SurvOutcome> {
    let monitors = clearances
        .iter()
        .map(|c| {
            TaintMonitor::new(
                fc,
                SurvConfig::surveillance(classification.readable_allow(flow, c)),
            )
        })
        .collect();
    Stepper::new(fc).run(inputs, &mut Fleet(monitors))
}

#[cfg(test)]
mod tests {
    use super::*;
    use enf_core::label::IntransitiveFlow;
    use enf_core::{check_soundness, compare, Grid, IndexSet, InputDomain, Mechanism as _};
    use enf_flowchart::parse;

    fn two_input_program() -> FlowchartProgram {
        FlowchartProgram::new(parse("program(2) { y := x1; if x2 == 0 { y := 0; } }").unwrap())
    }

    #[test]
    fn level_lattice_laws() {
        use Level::*;
        assert_eq!(Level::bottom(), Unclassified);
        assert_eq!(Secret.join(&Confidential), Secret);
        assert!(Unclassified.flows_to(&TopSecret));
        assert!(!TopSecret.flows_to(&Secret));
        for l in [Unclassified, Confidential, Secret, TopSecret] {
            assert!(l.flows_to(&l));
            assert_eq!(l.join(&l), l);
            assert_eq!(l.join(&Level::bottom()), l);
        }
    }

    #[test]
    fn compartmented_lattice_is_partial() {
        let crypto = Compartmented::new(Level::Secret, [1]);
        let nuclear = Compartmented::new(Level::Secret, [2]);
        assert!(!crypto.flows_to(&nuclear));
        assert!(!nuclear.flows_to(&crypto));
        let both = crypto.join(&nuclear);
        assert!(crypto.flows_to(&both) && nuclear.flows_to(&both));
        assert_eq!(both.compartments, IndexSet::from_iter([1, 2]));
        assert!(Compartmented::bottom().flows_to(&crypto));
    }

    #[test]
    fn induced_allow_sets() {
        let c = Classification::new(vec![Level::Secret, Level::Unclassified]);
        assert_eq!(c.induced_allow(&Level::Unclassified), IndexSet::single(2));
        assert_eq!(c.induced_allow(&Level::Secret), IndexSet::full(2));
        assert_eq!(c.label(1), &Level::Secret);
        assert_eq!(c.arity(), 2);
    }

    #[test]
    fn mls_mechanism_sound_for_induced_policy() {
        let c = Classification::new(vec![Level::Secret, Level::Unclassified]);
        let g = Grid::hypercube(2, -2..=2);
        for clearance in [
            Level::Unclassified,
            Level::Confidential,
            Level::Secret,
            Level::TopSecret,
        ] {
            let m = mls_surveillance(two_input_program(), &c, &clearance);
            let policy = c.induced_policy(&clearance);
            assert!(
                check_soundness(&m, &policy, &g, false).is_sound(),
                "unsound at clearance {clearance:?}"
            );
        }
    }

    #[test]
    fn higher_clearance_sees_at_least_as_much() {
        let c = Classification::new(vec![Level::Secret, Level::Confidential]);
        let g = Grid::hypercube(2, -2..=2);
        let levels = [
            Level::Unclassified,
            Level::Confidential,
            Level::Secret,
            Level::TopSecret,
        ];
        for w in levels.windows(2) {
            let low = mls_surveillance(two_input_program(), &c, &w[0]);
            let high = mls_surveillance(two_input_program(), &c, &w[1]);
            assert!(
                compare(&high, &low, &g).first_as_complete(),
                "clearance {:?} saw more than {:?}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn compartments_gate_independently_of_level() {
        // A top-secret observer without the compartment still may not see
        // the compartmented input.
        let c = Classification::new(vec![
            Compartmented::new(Level::Confidential, [1]),
            Compartmented::new(Level::Unclassified, []),
        ]);
        let no_compartment = Compartmented::new(Level::TopSecret, []);
        assert_eq!(c.induced_allow(&no_compartment), IndexSet::single(2));
        let with_compartment = Compartmented::new(Level::Confidential, [1]);
        assert_eq!(c.induced_allow(&with_compartment), IndexSet::full(2));
    }

    #[test]
    fn mls_fleet_matches_per_clearance_runs() {
        // One pass with a monitor fleet ≡ one full run per clearance.
        use crate::dynamic::run_surveillance;
        let c = Classification::new(vec![Level::Secret, Level::Confidential]);
        let fc = enf_flowchart::parse("program(2) { y := x1; if x2 == 0 { y := 0; } }").unwrap();
        let levels = [
            Level::Unclassified,
            Level::Confidential,
            Level::Secret,
            Level::TopSecret,
        ];
        for a in Grid::hypercube(2, -2..=2).iter_inputs() {
            let fleet = run_all_clearances(&fc, &a, &c, &levels);
            for (clearance, got) in levels.iter().zip(&fleet) {
                let cfg = SurvConfig::surveillance(c.induced_allow(clearance));
                assert_eq!(got, &run_surveillance(&fc, &a, &cfg), "at {clearance:?}");
            }
        }
    }

    #[test]
    fn mls_fleet_is_monotone_in_clearance() {
        let c = Classification::new(vec![Level::Secret, Level::Confidential]);
        let fc = enf_flowchart::parse("program(2) { y := x1 + x2; }").unwrap();
        let levels = [
            Level::Unclassified,
            Level::Confidential,
            Level::Secret,
            Level::TopSecret,
        ];
        for a in Grid::hypercube(2, -1..=1).iter_inputs() {
            let fleet = run_all_clearances(&fc, &a, &c, &levels);
            // Once a clearance accepts, every higher clearance accepts.
            let mut seen_accept = false;
            for out in &fleet {
                let accepted = out.accepted().is_some();
                assert!(
                    !seen_accept || accepted,
                    "acceptance not monotone: {fleet:?}"
                );
                seen_accept = accepted;
            }
        }
    }

    #[test]
    fn lattice_surveillance_widens_with_release_edges() {
        // y := x1 with x1 Secret: a public observer's monitor rejects —
        // unless a Secret ⇝ Unclassified release edge widens J_c.
        let c = Classification::new(vec![Level::Secret, Level::Unclassified]);
        let fc = parse("program(2) { y := x1; }").unwrap();
        let g = Grid::hypercube(2, -1..=1);
        let closed = lattice_surveillance(
            FlowchartProgram::new(fc.clone()),
            &LatticePolicy::new(
                c.clone(),
                IntransitiveFlow::transitive(),
                Level::Unclassified,
            ),
        );
        let released = lattice_surveillance(
            FlowchartProgram::new(fc.clone()),
            &LatticePolicy::new(
                c.clone(),
                IntransitiveFlow::new([(Level::Secret, Level::Unclassified)]),
                Level::Unclassified,
            ),
        );
        for a in g.iter_inputs() {
            assert!(matches!(closed.run(&a), enf_core::MechOutput::Violation(_)));
            assert_eq!(
                released.run(&a),
                enf_core::MechOutput::Value(enf_flowchart::ExecValue::Value(a[0]))
            );
        }
    }

    #[test]
    fn lattice_fleet_matches_per_clearance_reduction() {
        use crate::dynamic::run_surveillance;
        let c = Classification::new(vec![Level::Secret, Level::Confidential]);
        let flow = IntransitiveFlow::new([(Level::Secret, Level::Confidential)]);
        let fc = parse("program(2) { y := x1; if x2 == 0 { y := 0; } }").unwrap();
        let levels = [
            Level::Unclassified,
            Level::Confidential,
            Level::Secret,
            Level::TopSecret,
        ];
        for a in Grid::hypercube(2, -2..=2).iter_inputs() {
            let fleet = run_all_clearances_lattice(&fc, &a, &c, &flow, &levels);
            for (clearance, got) in levels.iter().zip(&fleet) {
                let cfg = SurvConfig::surveillance(c.readable_allow(&flow, clearance));
                assert_eq!(got, &run_surveillance(&fc, &a, &cfg), "at {clearance:?}");
            }
        }
    }

    #[test]
    fn reduction_matches_plain_surveillance() {
        // The MLS mechanism *is* the allow(J_c) mechanism, pointwise.
        let c = Classification::new(vec![Level::Secret, Level::Unclassified]);
        let clearance = Level::Confidential;
        let mls = mls_surveillance(two_input_program(), &c, &clearance);
        let plain = Surveillance::new(two_input_program(), c.induced_allow(&clearance));
        let g = Grid::hypercube(2, -2..=2);
        for a in g.iter_inputs() {
            assert_eq!(mls.run(&a), plain.run(&a));
        }
    }
}
