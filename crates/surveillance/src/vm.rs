//! The surveillance disciplines on the register-bytecode VM.
//!
//! [`run_surveillance_vm`] is a fused value-and-taint loop over a
//! [`Compiled`] program: per instruction the compiler has already resolved
//! which slots the expression or predicate reads
//! ([`Compiled::reads`]), so transformation (2)/(3) becomes a union of
//! precomputed bitmask sources — no AST walk, no `vars()` allocation, no
//! variable-name dispatch. All four `Style` × `CheckAt` configurations run
//! on the one loop and are pinned bit-identical (verdict, violation site,
//! step count) to [`run_surveillance`](crate::dynamic::run_surveillance) by differential tests here and in
//! `tests/bytecode_differential.rs`.
//!
//! [`run_trace_vm`] and [`explain_vm`] reuse the AST monitors unchanged —
//! the VM drives them through [`Compiled::run_monitored`], which delivers
//! the exact [`Monitor`](enf_flowchart::stepper::Monitor) hook sequence of
//! the stepper — so the event stream and carrier chains are byte-identical
//! to their AST-engine counterparts.

use crate::dynamic::{CheckAt, Style, SurvConfig, SurvOutcome};
use crate::explain::Explanation;
use crate::mechanism::to_mech_output;
use crate::monitor::{EventMonitor, TaintMonitor, TraceEvent};
use enf_core::{IndexSet, MechOutput, Mechanism, V};
use enf_flowchart::bytecode::{Compiled, Inst, Operand};
use enf_flowchart::graph::{Node, NodeId, PolicySpec};
use enf_flowchart::interp::ExecValue;
use enf_flowchart::program::FlowchartProgram;
use std::sync::Arc;

/// Register/taint state up to this size lives on the run's stack frame
/// instead of the heap — covers every corpus program and the generated
/// benchmark families. Kept small because the buffers are zero-initialized
/// on every call and sweeps make one call per tuple.
const STACK_SLOTS: usize = 16;

/// Runs a compiled flowchart under the surveillance discipline: the fused
/// bytecode twin of [`run_surveillance`](crate::dynamic::run_surveillance), bit-identical in verdict,
/// violation site and step count.
pub fn run_surveillance_vm(compiled: &Compiled, inputs: &[V], cfg: &SurvConfig) -> SurvOutcome {
    let arity = compiled.arity();
    assert_eq!(
        inputs.len(),
        arity,
        "flowchart takes {} inputs, got {}",
        arity,
        inputs.len()
    );
    let slot_count = compiled.slot_count();
    let out_slot = compiled.out_slot() as usize;
    // Exhaustive sweeps call this once per tuple, so the per-run state
    // lives on the stack for typical programs; only unusually
    // register-heavy programs pay for a heap allocation.
    let mut slots_buf = [0 as V; STACK_SLOTS];
    let mut slots_heap: Vec<V>;
    let slots: &mut [V] = if slot_count <= STACK_SLOTS {
        &mut slots_buf[..slot_count]
    } else {
        slots_heap = vec![0 as V; slot_count];
        &mut slots_heap
    };
    slots[..arity].copy_from_slice(inputs);
    // Transformation (1): x̄i = {i}, every other surveillance variable (and
    // C̄) empty.
    let mut taints_buf = [IndexSet::empty(); STACK_SLOTS];
    let mut taints_heap: Vec<IndexSet>;
    let taints: &mut [IndexSet] = if slot_count <= STACK_SLOTS {
        &mut taints_buf[..slot_count]
    } else {
        taints_heap = vec![IndexSet::empty(); slot_count];
        &mut taints_heap
    };
    for (i, t) in taints.iter_mut().take(arity).enumerate() {
        *t = IndexSet::single(i + 1);
    }
    let mut pc_taint = IndexSet::empty();
    let mut stack: Vec<V> = Vec::with_capacity(compiled.stack_capacity());
    let accumulate = cfg.style == Style::Accumulate;
    let every_decision = cfg.check == CheckAt::EveryDecision;
    let fuel = cfg.fuel;
    let mut allowed = cfg.allowed;
    let insts = compiled.insts();
    let mut pc = 0usize;
    let mut steps: u64 = 0;
    // Transformation (2) for one assignment: v̄ ← sources ∪ C̄ (∪ v̄ for the
    // high-water discipline), then the value update. The fused instruction
    // forms name their source slots directly, so only the rare RPN forms
    // consult the compile-time read sets.
    macro_rules! assign {
        ($dst:expr, $v:expr, $next:expr, $t:expr) => {{
            let mut t = $t;
            if accumulate {
                t.union_with(&taints[$dst as usize]);
            }
            taints[$dst as usize] = t;
            slots[$dst as usize] = $v;
            pc = $next as usize;
        }};
    }
    while steps < fuel {
        steps += 1;
        match insts[pc] {
            Inst::Jump { next } => pc = next as usize,
            Inst::AssignConst { dst, value, next } => assign!(dst, value, next, pc_taint),
            Inst::AssignCopy { dst, src, next } => {
                let v = slots[src as usize];
                assign!(dst, v, next, pc_taint.union(&taints[src as usize]));
            }
            Inst::AssignBin {
                dst,
                op,
                a,
                b,
                next,
            } => {
                let mut t = pc_taint;
                if let Operand::Slot(s) = a {
                    t.union_with(&taints[s as usize]);
                }
                if let Operand::Slot(s) = b {
                    t.union_with(&taints[s as usize]);
                }
                let v = op.apply(a.value(slots), b.value(slots));
                assign!(dst, v, next, t);
            }
            Inst::AssignCode { dst, code, next } => {
                let mut t = pc_taint;
                for &s in compiled.reads(pc) {
                    t.union_with(&taints[s as usize]);
                }
                let v = compiled.eval_code(code, slots, &mut stack);
                assign!(dst, v, next, t);
            }
            Inst::CmpBr {
                op,
                a,
                b,
                then_,
                else_,
            } => {
                // Transformation (3): C̄ ← C̄ ∪ w̄1 ∪ … ∪ w̄s.
                if let Operand::Slot(s) = a {
                    pc_taint.union_with(&taints[s as usize]);
                }
                if let Operand::Slot(s) = b {
                    pc_taint.union_with(&taints[s as usize]);
                }
                if every_decision && !pc_taint.is_subset(&allowed) {
                    // Theorem 3′: abort before the disallowed test is taken.
                    return SurvOutcome::Violation {
                        site: NodeId(pc),
                        taint: pc_taint,
                        steps,
                    };
                }
                pc = if op.apply(a.value(slots), b.value(slots)) {
                    then_ as usize
                } else {
                    else_ as usize
                };
            }
            Inst::PredBr { code, then_, else_ } => {
                for &s in compiled.reads(pc) {
                    pc_taint.union_with(&taints[s as usize]);
                }
                if every_decision && !pc_taint.is_subset(&allowed) {
                    return SurvOutcome::Violation {
                        site: NodeId(pc),
                        taint: pc_taint,
                        steps,
                    };
                }
                pc = if compiled.eval_code(code, slots, &mut stack) != 0 {
                    then_ as usize
                } else {
                    else_ as usize
                };
            }
            Inst::Policy { next } => {
                // Policy boxes keep no operands in the instruction (the
                // inst index is the node id); consult the source node.
                match compiled.flowchart().node(NodeId(pc)) {
                    Node::SetPolicy { spec } => {
                        // Slot boxes resolve to allow() — this fused loop,
                        // like `run_surveillance`, runs unscheduled.
                        allowed = match spec {
                            PolicySpec::Concrete(s) => *s,
                            PolicySpec::Slot(_) => IndexSet::empty(),
                        };
                    }
                    Node::Declassify { var, from, to } => {
                        let slot = compiled.slot_of(*var) as usize;
                        taints[slot] = taints[slot].difference(from).union(to);
                    }
                    other => unreachable!("Inst::Policy compiled from {other:?}"),
                }
                pc = next as usize;
            }
            Inst::Halt => {
                // Transformation (4): release y only if ȳ ∪ C̄ ⊆ J.
                let t = taints[out_slot].union(&pc_taint);
                if t.is_subset(&allowed) {
                    return SurvOutcome::Accepted {
                        y: slots[out_slot],
                        steps,
                    };
                }
                return SurvOutcome::Violation {
                    site: NodeId(pc),
                    taint: t,
                    steps,
                };
            }
        }
    }
    SurvOutcome::OutOfFuel
}

/// [`run_trace`](crate::monitor::run_trace) on the VM: the compiled
/// program drives the unchanged taint-and-event monitor pair, so verdict
/// and event stream match the AST engine exactly.
pub fn run_trace_vm(
    compiled: &Compiled,
    inputs: &[V],
    cfg: &SurvConfig,
) -> (SurvOutcome, Vec<TraceEvent>) {
    let fc = compiled.flowchart();
    compiled.run_monitored(
        inputs,
        cfg.fuel,
        &mut enf_flowchart::stepper::Pair(
            TaintMonitor::new(fc, *cfg),
            EventMonitor::new(fc, cfg.style),
        ),
    )
}

/// [`explain`](crate::explain::explain) on the VM: same outcome, same
/// carrier chain, compiled execution.
pub fn explain_vm(compiled: &Compiled, inputs: &[V], cfg: &SurvConfig) -> Explanation {
    let (out, events) = run_trace_vm(compiled, inputs, cfg);
    let (accepted, offending) = match out {
        SurvOutcome::Accepted { .. } => (true, IndexSet::empty()),
        SurvOutcome::Violation { taint, .. } => (false, taint.difference(&cfg.allowed)),
        SurvOutcome::OutOfFuel => (false, IndexSet::empty()),
    };
    Explanation {
        accepted,
        offending,
        events: events.iter().filter_map(TraceEvent::flow_event).collect(),
    }
}

/// The surveillance mechanism running on the bytecode VM: a drop-in
/// replacement for [`Surveillance`](crate::mechanism::Surveillance) /
/// [`HighWater`](crate::mechanism::HighWater) that compiles the program
/// once and sweeps compiled.
#[derive(Clone, Debug)]
pub struct VmSurveillance {
    compiled: Arc<Compiled>,
    cfg: SurvConfig,
}

impl VmSurveillance {
    /// Theorem 3's M on the VM: check at HALT.
    pub fn new(program: FlowchartProgram, allowed: IndexSet) -> Self {
        let cfg = SurvConfig::surveillance(allowed).with_fuel(program.fuel());
        VmSurveillance {
            compiled: Arc::new(Compiled::new(program.flowchart())),
            cfg,
        }
    }

    /// Theorem 3′'s M′ on the VM: additionally check at every decision.
    pub fn timed(program: FlowchartProgram, allowed: IndexSet) -> Self {
        let cfg = SurvConfig::timed(allowed).with_fuel(program.fuel());
        VmSurveillance {
            compiled: Arc::new(Compiled::new(program.flowchart())),
            cfg,
        }
    }

    /// The high-water-mark M_h on the VM: taints never shrink.
    pub fn highwater(program: FlowchartProgram, allowed: IndexSet) -> Self {
        let cfg = SurvConfig::highwater(allowed).with_fuel(program.fuel());
        VmSurveillance {
            compiled: Arc::new(Compiled::new(program.flowchart())),
            cfg,
        }
    }

    /// The VM judge for a lattice policy: monitors against the policy's
    /// fixed-clearance reduction `J_c = { i : label(i) ⇝* c }`
    /// ([`enf_core::label::LatticePolicy::induced`]), so the VM and the
    /// AST monitor ([`crate::mls::lattice_surveillance`]) enforce the same
    /// induced allow-set and stay differentially pinned.
    pub fn lattice<L: enf_core::label::Label>(
        program: FlowchartProgram,
        policy: &enf_core::label::LatticePolicy<L>,
    ) -> Self {
        VmSurveillance::new(program, policy.induced())
    }

    /// Wraps an already-compiled program under `cfg`.
    pub fn from_compiled(compiled: Arc<Compiled>, cfg: SurvConfig) -> Self {
        VmSurveillance { compiled, cfg }
    }

    /// The compiled program.
    pub fn compiled(&self) -> &Compiled {
        &self.compiled
    }

    /// The run configuration.
    pub fn config(&self) -> &SurvConfig {
        &self.cfg
    }

    /// Runs and returns the full surveillance outcome.
    pub fn run_detailed(&self, input: &[V]) -> SurvOutcome {
        run_surveillance_vm(&self.compiled, input, &self.cfg)
    }
}

impl Mechanism for VmSurveillance {
    type Out = ExecValue;

    fn arity(&self) -> usize {
        self.compiled.arity()
    }

    fn run(&self, input: &[V]) -> MechOutput<ExecValue> {
        to_mech_output(self.run_detailed(input))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic::run_surveillance;
    use crate::explain::explain;
    use crate::mechanism::Surveillance;
    use crate::monitor::run_trace;
    use enf_flowchart::corpus;
    use enf_flowchart::generate::{random_flowchart, GenConfig};
    use enf_flowchart::graph::Flowchart;
    use enf_flowchart::parse;

    /// All four `Style` × `CheckAt` configurations over one allowed set.
    fn four_configs(allowed: IndexSet) -> [SurvConfig; 4] {
        let accumulate_timed = SurvConfig {
            allowed,
            style: Style::Accumulate,
            check: CheckAt::EveryDecision,
            fuel: 1_000_000,
        };
        [
            SurvConfig::surveillance(allowed),
            SurvConfig::timed(allowed),
            SurvConfig::highwater(allowed),
            accumulate_timed,
        ]
    }

    fn assert_all_configs_match(fc: &Flowchart, inputs: &[V], fuel: u64, ctx: &str) {
        let compiled = Compiled::new(fc);
        for allowed in [
            IndexSet::empty(),
            IndexSet::single(1),
            IndexSet::full(fc.arity()),
        ] {
            for cfg in four_configs(allowed) {
                let cfg = cfg.with_fuel(fuel);
                let ast = run_surveillance(fc, inputs, &cfg);
                let vm = run_surveillance_vm(&compiled, inputs, &cfg);
                assert_eq!(ast, vm, "{ctx}: cfg {cfg:?}, inputs {inputs:?}");
            }
        }
    }

    #[test]
    fn corpus_programs_match_ast_engine_on_all_configs() {
        for pp in corpus::all() {
            let k = pp.flowchart.arity();
            let inputs: Vec<Vec<V>> = match k {
                1 => (-2..=2).map(|a| vec![a]).collect(),
                _ => (-2..=2)
                    .flat_map(|a| (-2..=2).map(move |b| vec![a, b]))
                    .collect(),
            };
            for a in inputs {
                assert_all_configs_match(&pp.flowchart, &a, 2_000, pp.name);
            }
        }
    }

    #[test]
    fn random_programs_match_ast_engine_on_all_configs() {
        let gen = GenConfig::default();
        for seed in 200..260u64 {
            let fc = random_flowchart(seed, &gen);
            for a in -2..=2 {
                for b in -2..=2 {
                    assert_all_configs_match(&fc, &[a, b], 10_000, &format!("seed {seed}"));
                }
            }
        }
    }

    #[test]
    fn fuel_edges_match_including_zero() {
        let fc = parse("program(1) { while x1 != 0 { x1 := x1 - 1; } y := 1; }").unwrap();
        for fuel in 0..25 {
            assert_all_configs_match(&fc, &[3], fuel, "fuel sweep");
        }
    }

    #[test]
    fn trace_vm_produces_identical_event_stream() {
        let fc = parse("program(2) { y := x1; if x2 == 0 { y := 0; } }").unwrap();
        let compiled = Compiled::new(&fc);
        for cfg in four_configs(IndexSet::single(2)) {
            for a in [[9, 0], [9, 5], [0, 0]] {
                let ast = run_trace(&fc, &a, &cfg);
                let vm = run_trace_vm(&compiled, &a, &cfg);
                assert_eq!(ast, vm, "cfg {cfg:?}, inputs {a:?}");
            }
        }
    }

    #[test]
    fn explain_vm_matches_ast_explain() {
        let gen = GenConfig::default();
        for seed in 300..320u64 {
            let fc = random_flowchart(seed, &gen);
            let compiled = Compiled::new(&fc);
            for cfg in four_configs(IndexSet::single(2)) {
                for a in [[-1, 1], [0, 0], [2, -2]] {
                    assert_eq!(
                        explain(&fc, &a, &cfg),
                        explain_vm(&compiled, &a, &cfg),
                        "seed {seed}, cfg {cfg:?}, inputs {a:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn vm_mechanism_matches_ast_mechanism() {
        let fc = parse("program(2) { y := x2; if x2 == 0 { y := 0; } }").unwrap();
        let p = FlowchartProgram::new(fc);
        let ast = Surveillance::new(p.clone(), IndexSet::single(2));
        let vm = VmSurveillance::new(p, IndexSet::single(2));
        assert_eq!(Mechanism::arity(&vm), 2);
        for a in -3..=3 {
            for b in -3..=3 {
                assert_eq!(ast.run(&[a, b]), vm.run(&[a, b]), "at ({a}, {b})");
            }
        }
    }

    #[test]
    fn vm_lattice_judge_matches_ast_judge_on_the_reduction() {
        use crate::mls::lattice_surveillance;
        use enf_core::label::{Classification, IntransitiveFlow, LatticePolicy, Level};
        let fc = parse("program(2) { if x1 == 0 { y := x2; } else { y := x1; } }").unwrap();
        let labeling = Classification::new(vec![Level::Secret, Level::Unclassified]);
        for flow in [
            IntransitiveFlow::transitive(),
            IntransitiveFlow::new(vec![(Level::Secret, Level::Unclassified)]),
        ] {
            for clearance in Level::ALL {
                let policy = LatticePolicy::new(labeling.clone(), flow.clone(), clearance);
                let p = FlowchartProgram::new(fc.clone());
                let ast = lattice_surveillance(p.clone(), &policy);
                let vm = VmSurveillance::lattice(p, &policy);
                for a in -2..=2 {
                    for b in -2..=2 {
                        assert_eq!(
                            ast.run(&[a, b]),
                            vm.run(&[a, b]),
                            "at ({a}, {b}), clearance {clearance:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn vm_violation_site_matches_instrumented_node_ids() {
        let fc = parse("program(1) { y := x1; }").unwrap();
        let compiled = Compiled::new(&fc);
        let ast = run_surveillance(&fc, &[3], &SurvConfig::surveillance(IndexSet::empty()));
        let vm = run_surveillance_vm(
            &compiled,
            &[3],
            &SurvConfig::surveillance(IndexSet::empty()),
        );
        assert_eq!(ast, vm);
        match vm {
            SurvOutcome::Violation { site, .. } => {
                assert!(matches!(fc.node(site), enf_flowchart::graph::Node::Halt));
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }
}
