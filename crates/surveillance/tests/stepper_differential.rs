//! Differential pinning of the stepper-based engine against the seed's
//! hand-rolled loops.
//!
//! `run_reference` is the original `run_surveillance` body, kept verbatim;
//! the properties here demand the `Monitor`-based engine be *bit-identical*
//! to it — same outcome variant, same released value, same step count, same
//! violation site and taint — across all four `Style` × `CheckAt`
//! configurations, random flowcharts and inputs, searched with the parallel
//! evaluation engine at every thread count 1..=8. `explain` gets the same
//! treatment against a verbatim copy of its former two-pass loop.

use enf_core::par::find_first;
use enf_core::{EvalConfig, Grid, IndexSet, InputDomain, V};
use enf_flowchart::generate::{random_flowchart, GenConfig};
use enf_flowchart::graph::PolicySpec;
use enf_flowchart::graph::{Flowchart, Node, Succ};
use enf_flowchart::interp::Store;
use enf_flowchart::pretty::{declassify_to_string, expr_to_string, pred_to_string};
use enf_surveillance::dynamic::{
    run_reference, run_surveillance, CheckAt, Style, SurvConfig, SurvOutcome,
};
use enf_surveillance::explain::{explain, Explanation, FlowEvent};
use enf_surveillance::monitor::run_trace;
use enf_surveillance::TaintState;
use proptest::prelude::*;

/// All four discipline configurations for the policy `allow(J)`.
fn all_configs(allowed: IndexSet, fuel: u64) -> [SurvConfig; 4] {
    [
        SurvConfig::surveillance(allowed).with_fuel(fuel),
        SurvConfig::timed(allowed).with_fuel(fuel),
        SurvConfig::highwater(allowed).with_fuel(fuel),
        SurvConfig {
            allowed,
            style: Style::Accumulate,
            check: CheckAt::EveryDecision,
            fuel,
        },
    ]
}

fn policy_from_mask(mask: u8) -> IndexSet {
    let mut j = IndexSet::empty();
    if mask & 1 != 0 {
        j.insert(1);
    }
    if mask & 2 != 0 {
        j.insert(2);
    }
    j
}

/// Forced-parallel configuration with exactly `t` workers.
fn par(t: usize) -> EvalConfig {
    EvalConfig::with_threads(t).seq_threshold(0)
}

/// A verbatim copy of the seed's two-pass `explain` loop, the oracle for
/// the one-pass `EventMonitor` reimplementation.
fn explain_reference(fc: &Flowchart, inputs: &[V], cfg: &SurvConfig) -> Explanation {
    let mut store = Store::init(fc, inputs);
    let mut taints = TaintState::init(fc.arity(), fc.max_reg());
    let mut at = fc.start();
    let mut steps: u64 = 0;
    let mut allowed = cfg.allowed;
    let mut events: Vec<FlowEvent> = Vec::new();
    loop {
        if steps >= cfg.fuel {
            return Explanation {
                accepted: false,
                offending: IndexSet::empty(),
                events,
            };
        }
        steps += 1;
        match fc.node(at) {
            Node::Start => {
                at = match fc.succ(at) {
                    Succ::One(n) => n,
                    _ => unreachable!("validated START"),
                };
            }
            Node::Assign { var, expr } => {
                let before = taints.get(*var);
                let mut t = taints.expr_taint(expr).union(&taints.pc);
                if cfg.style == Style::Accumulate {
                    t.union_with(&before);
                }
                if t != before {
                    events.push(FlowEvent {
                        step: steps,
                        site: at,
                        what: format!("{var} := {}", expr_to_string(expr)),
                        before,
                        after: t,
                    });
                }
                taints.set(*var, t);
                let v = expr.eval(&|w| store.get(w));
                store.set(*var, v);
                at = match fc.succ(at) {
                    Succ::One(n) => n,
                    _ => unreachable!("validated assignment"),
                };
            }
            Node::Decision { pred } => {
                let before = taints.pc;
                let t = taints.pred_taint(pred);
                taints.pc.union_with(&t);
                if taints.pc != before {
                    events.push(FlowEvent {
                        step: steps,
                        site: at,
                        what: format!("branch on {}", pred_to_string(pred)),
                        before,
                        after: taints.pc,
                    });
                }
                if cfg.check == CheckAt::EveryDecision && !taints.pc.is_subset(&allowed) {
                    return Explanation {
                        accepted: false,
                        offending: taints.pc.difference(&allowed),
                        events,
                    };
                }
                let taken = pred.eval(&|w| store.get(w));
                at = match fc.succ(at) {
                    Succ::Cond { then_, else_ } => {
                        if taken {
                            then_
                        } else {
                            else_
                        }
                    }
                    _ => unreachable!("validated decision"),
                };
            }
            Node::Halt => {
                let t = taints.halt_taint();
                if t.is_subset(&allowed) {
                    return Explanation {
                        accepted: true,
                        offending: IndexSet::empty(),
                        events,
                    };
                }
                return Explanation {
                    accepted: false,
                    offending: t.difference(&allowed),
                    events,
                };
            }
            Node::SetPolicy { spec } => {
                allowed = match spec {
                    PolicySpec::Concrete(s) => *s,
                    PolicySpec::Slot(_) => IndexSet::empty(),
                };
                at = match fc.succ(at) {
                    Succ::One(n) => n,
                    _ => unreachable!("validated setpolicy"),
                };
            }
            Node::Declassify { var, from, to } => {
                let before = taints.get(*var);
                let after = before.difference(from).union(to);
                if after != before {
                    events.push(FlowEvent {
                        step: steps,
                        site: at,
                        what: declassify_to_string(*var, from, to),
                        before,
                        after,
                    });
                }
                taints.set(*var, after);
                at = match fc.succ(at) {
                    Succ::One(n) => n,
                    _ => unreachable!("validated declassify"),
                };
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The stepper engine is bit-identical to the pinned reference loop —
    /// outcome, released value, step count, violation site and taint — for
    /// every configuration, searched in parallel at threads 1..=8.
    #[test]
    fn stepper_engine_is_bit_identical_to_reference(seed in 0u64..20_000, mask in 0u8..4) {
        let fc = random_flowchart(seed, &GenConfig::default());
        let g = Grid::hypercube(2, -2..=2);
        for cfg in all_configs(policy_from_mask(mask), 2_000) {
            for t in 1..=8usize {
                let mismatch = find_first(&g, &par(t), |_, a| {
                    let new = run_surveillance(&fc, a, &cfg);
                    let old = run_reference(&fc, a, &cfg);
                    (new != old).then(|| (a.to_vec(), new, old))
                });
                prop_assert!(
                    mismatch.is_none(),
                    "seed {}, cfg {:?}, threads {}: {:?}",
                    seed, cfg, t, mismatch
                );
            }
        }
    }

    /// The one-pass `explain` (taint + event monitors paired) reproduces
    /// the two-pass loop's output exactly: verdict, offending set, and the
    /// full `FlowEvent` list the carrier chain is drawn from.
    #[test]
    fn one_pass_explain_matches_two_pass_reference(seed in 0u64..20_000, mask in 0u8..4) {
        let fc = random_flowchart(seed, &GenConfig::default());
        for cfg in all_configs(policy_from_mask(mask), 2_000) {
            for a in Grid::hypercube(2, -1..=1).iter_inputs() {
                let one = explain(&fc, &a, &cfg);
                let two = explain_reference(&fc, &a, &cfg);
                prop_assert_eq!(
                    &one, &two,
                    "seed {}, cfg {:?}, input {:?}", seed, &cfg, &a
                );
            }
        }
    }

    /// The trace stream is complete: one event per executed box, agreeing
    /// with the mechanism's own step count, and the verdicts of the paired
    /// run match the plain engine.
    #[test]
    fn trace_stream_covers_every_step(seed in 0u64..20_000, mask in 0u8..4) {
        let fc = random_flowchart(seed, &GenConfig::default());
        for cfg in all_configs(policy_from_mask(mask), 2_000) {
            for a in Grid::hypercube(2, -1..=1).iter_inputs() {
                let (out, events) = run_trace(&fc, &a, &cfg);
                prop_assert_eq!(&out, &run_surveillance(&fc, &a, &cfg));
                match out {
                    SurvOutcome::Accepted { steps, .. }
                    | SurvOutcome::Violation { steps, .. } => {
                        prop_assert_eq!(events.len() as u64, steps);
                    }
                    SurvOutcome::OutOfFuel => {
                        prop_assert_eq!(events.len() as u64, cfg.fuel);
                    }
                }
            }
        }
    }
}
