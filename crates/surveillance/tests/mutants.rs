//! Failure injection: break one ingredient of the surveillance mechanism
//! at a time and watch the soundness checker convict the mutant.
//!
//! Each mutant corresponds to a design decision the paper argues for:
//!
//! * `NoPcTaint` — drop transformation (3) (no `C̄` at all): implicit
//!   flows through branches go unnoticed. This is why the paper tracks
//!   the program counter ("we must keep track … also for the program
//!   counter").
//! * `ScopedPc` — pop the PC taint at the branch's join point, i.e. a
//!   *flow-sensitive dynamic* monitor: leaks through branches *not*
//!   taken. This is why the paper's `C̄` is monotone along a run.
//! * `YOnlyHalt` — check only `ȳ` (not `ȳ ∪ C̄`) at HALT: negative
//!   inference through the path that merely *reaches* HALT under a
//!   denied-tainted counter.
//!
//! The faithful engine passes the same battery (the control).

use enf_core::{IndexSet, MechOutput, Mechanism, Notice, V};
use enf_flowchart::analysis::PostDominators;
use enf_flowchart::ast::{Expr, Pred, Var};
use enf_flowchart::graph::{Flowchart, Node, NodeId};
use enf_flowchart::interp::{ExecValue, Store};
use enf_flowchart::parse;
use enf_flowchart::stepper::{Monitor, Stepper};
use enf_surveillance::TaintState;

/// Which ingredient to sabotage.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Mutation {
    /// The faithful mechanism (control).
    None,
    /// Never taint the program counter.
    NoPcTaint,
    /// Restore the PC taint at each decision's immediate postdominator.
    ScopedPc,
    /// Check only `ȳ` at HALT.
    YOnlyHalt,
}

/// A (possibly sabotaged) surveillance mechanism.
struct Mutant {
    fc: Flowchart,
    allowed: IndexSet,
    mutation: Mutation,
}

impl Mutant {
    fn new(fc: Flowchart, allowed: IndexSet, mutation: Mutation) -> Self {
        Mutant {
            fc,
            allowed,
            mutation,
        }
    }
}

/// The sabotaged discipline as a stepper monitor — the mutants share the
/// engine with the real mechanism and differ only in their hooks, so a
/// conviction really pins the *discipline* ingredient, not loop plumbing.
struct MutantMonitor<'a> {
    pd: &'a PostDominators,
    allowed: IndexSet,
    mutation: Mutation,
    taints: TaintState,
    // For ScopedPc: a stack of (join point, saved PC taint).
    joins: Vec<(NodeId, IndexSet)>,
}

impl Monitor for MutantMonitor<'_> {
    type Outcome = MechOutput<ExecValue>;

    fn on_step(&mut self, _step: u64, at: NodeId, _node: &Node) {
        if self.mutation == Mutation::ScopedPc {
            while let Some(&(join, saved)) = self.joins.last() {
                if at == join {
                    self.taints.pc = saved;
                    self.joins.pop();
                } else {
                    break;
                }
            }
        }
    }

    fn on_assign(&mut self, _step: u64, _at: NodeId, var: Var, expr: &Expr, _store: &Store) {
        let t = self.taints.expr_taint(expr).union(&self.taints.pc);
        self.taints.set(var, t);
    }

    fn on_decision(
        &mut self,
        _step: u64,
        at: NodeId,
        pred: &Pred,
        _store: &Store,
    ) -> Option<Self::Outcome> {
        match self.mutation {
            Mutation::NoPcTaint => {}
            Mutation::ScopedPc => {
                if let Some(join) = self.pd.immediate(at) {
                    self.joins.push((join, self.taints.pc));
                }
                let t = self.taints.pred_taint(pred);
                self.taints.pc.union_with(&t);
            }
            _ => {
                let t = self.taints.pred_taint(pred);
                self.taints.pc.union_with(&t);
            }
        }
        None
    }

    fn on_halt(&mut self, _step: u64, _at: NodeId, store: &Store) -> Self::Outcome {
        let check = match self.mutation {
            Mutation::YOnlyHalt => self.taints.get(Var::Out),
            _ => self.taints.halt_taint(),
        };
        if check.is_subset(&self.allowed) {
            MechOutput::Value(ExecValue::Value(store.output()))
        } else {
            MechOutput::Violation(Notice::lambda())
        }
    }

    fn on_fuel(&mut self, _steps: u64) -> Self::Outcome {
        MechOutput::Value(ExecValue::Diverged)
    }
}

impl Mechanism for Mutant {
    type Out = ExecValue;

    fn arity(&self) -> usize {
        self.fc.arity()
    }

    fn run(&self, input: &[V]) -> MechOutput<ExecValue> {
        let pd = PostDominators::compute(&self.fc);
        let mut m = MutantMonitor {
            pd: &pd,
            allowed: self.allowed,
            mutation: self.mutation,
            taints: TaintState::init(self.fc.arity(), self.fc.max_reg()),
            joins: Vec::new(),
        };
        Stepper::new(&self.fc)
            .with_fuel(1_000_000)
            .run(input, &mut m)
    }
}

fn sound(src: &str, allowed: IndexSet, mutation: Mutation) -> bool {
    let fc = parse(src).unwrap();
    let m = Mutant::new(fc, allowed, mutation);
    let policy = enf_core::Allow::from_set(m.arity(), allowed);
    let g = enf_core::Grid::hypercube(m.arity(), -2..=2);
    enf_core::check_soundness(&m, &policy, &g, false).is_sound()
}

/// The implicit-copy program: y never reads x1, the branch does.
const IMPLICIT: &str = "program(1) { if x1 == 0 { y := 0; } else { y := 1; } }";

/// The untaken-branch program: on x1 ≠ 0 the scrub never executes, so a
/// flow-sensitive monitor forgets the branch ever mattered.
const UNTAKEN: &str = "program(1) { r1 := 1; if x1 == 0 { r1 := 0; } y := r1; }";

/// Pure negative inference through the counter: y is never assigned at
/// all, but HALT is reached under a denied-tainted PC.
const COUNTER_ONLY: &str = "program(1) { if x1 == 0 { r1 := 1; } else { r1 := 2; } }";

#[test]
fn control_faithful_engine_passes_everything() {
    for src in [IMPLICIT, UNTAKEN, COUNTER_ONLY] {
        assert!(
            sound(src, IndexSet::empty(), Mutation::None),
            "faithful engine wrongly convicted on {src}"
        );
    }
}

#[test]
fn mutant_no_pc_taint_is_convicted_by_implicit_flow() {
    assert!(!sound(IMPLICIT, IndexSet::empty(), Mutation::NoPcTaint));
}

#[test]
fn mutant_scoped_pc_is_convicted_by_the_untaken_branch() {
    // x1 = 0: r1 := 0 runs under PC {1} → y tainted → Λ.
    // x1 ≠ 0: the assignment never runs, the PC taint is popped at the
    // join, y := r1 is clean → released 1. Λ-vs-1 distinguishes x1 = 0.
    assert!(!sound(UNTAKEN, IndexSet::empty(), Mutation::ScopedPc));
    // The same program under the faithful monotone C̄: sound.
    assert!(sound(UNTAKEN, IndexSet::empty(), Mutation::None));
}

#[test]
fn mutant_y_only_halt_is_convicted_by_counter_residue() {
    // y stays 0 everywhere (ȳ = ∅ passes the mutilated check), but the
    // mutant releases on *both* paths while the faithful engine refuses
    // both: outputs agree here. The conviction needs a program where the
    // y-only check releases on one path and not the other:
    let src = "program(1) { if x1 == 0 { y := x1; } else { r1 := 1; } }";
    // x1 = 0: y := x1 gives ȳ = {1} → Λ. x1 ≠ 0: ȳ = ∅ → release 0.
    assert!(!sound(src, IndexSet::empty(), Mutation::YOnlyHalt));
    assert!(sound(src, IndexSet::empty(), Mutation::None));
    // And COUNTER_ONLY shows the over-release (sound but not a
    // protection-mechanism refusal — it leaks nothing only by luck).
    assert!(sound(COUNTER_ONLY, IndexSet::empty(), Mutation::YOnlyHalt));
}

#[test]
fn mutants_deviate_from_the_faithful_engine_on_random_programs() {
    // Sanity: each mutant actually behaves differently somewhere (the
    // injection is live), measured against the real mechanism.
    use enf_core::InputDomain;
    use enf_flowchart::generate::{random_flowchart, GenConfig};
    use enf_flowchart::program::FlowchartProgram;
    use enf_surveillance::Surveillance;
    let cfg = GenConfig::default();
    let g = enf_core::Grid::hypercube(2, -1..=1);
    // NOTE: YOnlyHalt cannot deviate on generator output — generated
    // programs end with a top-level `y := …`, which folds the final C̄
    // into ȳ, making the two checks coincide. Its deviation is pinned on
    // a handcrafted witness below instead.
    for mutation in [Mutation::NoPcTaint, Mutation::ScopedPc] {
        let mut deviated = false;
        'outer: for seed in 0..60u64 {
            let fc = random_flowchart(seed, &cfg);
            let j = IndexSet::single(2);
            let mutant = Mutant::new(fc.clone(), j, mutation);
            let real = Surveillance::new(FlowchartProgram::new(fc), j);
            for a in g.iter_inputs() {
                if mutant.run(&a) != real.run(&a) {
                    deviated = true;
                    break 'outer;
                }
            }
        }
        assert!(deviated, "{mutation:?} never deviated — injection dead");
    }
    // YOnlyHalt's live-injection witness: no trailing y assignment.
    let fc = parse(COUNTER_ONLY).unwrap();
    let j = IndexSet::empty();
    let mutant = Mutant::new(fc.clone(), j, Mutation::YOnlyHalt);
    let real = Surveillance::new(FlowchartProgram::new(fc), j);
    assert_ne!(mutant.run(&[0]), real.run(&[0]));
}

#[test]
fn mutants_are_caught_on_random_programs_too() {
    // The checker's sensitivity: over a pool of random programs, each
    // mutant is convicted at least once (no single golden witness needed).
    use enf_flowchart::generate::{random_flowchart, GenConfig};
    let cfg = GenConfig::default();
    for mutation in [Mutation::NoPcTaint, Mutation::ScopedPc] {
        let mut convicted = false;
        for seed in 0..120u64 {
            let fc = random_flowchart(seed, &cfg);
            let m = Mutant::new(fc, IndexSet::empty(), mutation);
            let policy = enf_core::Allow::none(2);
            let g = enf_core::Grid::hypercube(2, -1..=1);
            if !enf_core::check_soundness(&m, &policy, &g, false).is_sound() {
                convicted = true;
                break;
            }
        }
        assert!(convicted, "{mutation:?} slipped past the checker");
    }
}
