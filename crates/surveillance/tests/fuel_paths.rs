//! Fuel-exhaustion and interrupt paths of the shared stepper, exercised
//! through the real monitors.
//!
//! The stepper's contract (see `enf_flowchart::stepper`) is that the fuel
//! check happens *before* dispatch: when the bound is hit, `on_fuel`
//! produces the outcome and the next box's hooks never fire — even when
//! that box is a decision whose veto would otherwise run. These tests pin
//! that ordering under [`NullMonitor`], [`TaintMonitor`], and [`Pair`],
//! plus the `on_interrupt` finalization of co-monitors.

use enf_core::IndexSet;
use enf_flowchart::ast::{Expr, Pred, Var};
use enf_flowchart::graph::NodeId;
use enf_flowchart::interp::{Outcome, Store};
use enf_flowchart::parse;
use enf_flowchart::stepper::{Monitor, NullMonitor, Pair, Stepper};
use enf_surveillance::dynamic::{SurvConfig, SurvOutcome};
use enf_surveillance::TaintMonitor;

/// Counts decision/branch hook firings and remembers how the run ended.
#[derive(Default)]
struct DecisionCounter {
    decisions: u64,
    branches: u64,
}

#[derive(PartialEq, Eq, Debug)]
enum Ending {
    Halted { decisions: u64, branches: u64 },
    Fuel { decisions: u64, branches: u64 },
    Interrupted { step: u64, at: NodeId },
}

impl Monitor for DecisionCounter {
    type Outcome = Ending;

    fn on_decision(
        &mut self,
        _step: u64,
        _at: NodeId,
        _pred: &Pred,
        _store: &Store,
    ) -> Option<Self::Outcome> {
        self.decisions += 1;
        None
    }

    fn on_branch(&mut self, _step: u64, _at: NodeId, _pred: &Pred, _taken: bool) {
        self.branches += 1;
    }

    fn on_halt(&mut self, _step: u64, _at: NodeId, _store: &Store) -> Self::Outcome {
        Ending::Halted {
            decisions: self.decisions,
            branches: self.branches,
        }
    }

    fn on_fuel(&mut self, _steps: u64) -> Self::Outcome {
        Ending::Fuel {
            decisions: self.decisions,
            branches: self.branches,
        }
    }

    fn on_interrupt(&mut self, step: u64, at: NodeId, _store: &Store) -> Self::Outcome {
        Ending::Interrupted { step, at }
    }
}

/// START(1), then each loop iteration is decision + assignment (2 boxes).
/// (`skip` would lower to no box at all and halve the iteration length.)
const LOOP: &str = "program(1) { while x1 == 0 { r1 := r1 + 1; } y := 1; }";

#[test]
fn null_monitor_reports_out_of_fuel() {
    let fc = parse(LOOP).unwrap();
    let out = Stepper::new(&fc).with_fuel(5).run(&[0], &mut NullMonitor);
    assert_eq!(out, Outcome::OutOfFuel);
}

#[test]
fn fuel_expiring_exactly_at_a_decision_never_calls_its_hooks() {
    let fc = parse(LOOP).unwrap();
    // Fuel 1 + 2k puts the cut right when decision k+1 would dispatch:
    // the fuel check precedes dispatch, so on_decision has fired exactly
    // k times and the veto hook of the pending decision never runs.
    for k in 0..4u64 {
        let mut m = DecisionCounter::default();
        let out = Stepper::new(&fc).with_fuel(1 + 2 * k).run(&[0], &mut m);
        assert_eq!(
            out,
            Ending::Fuel {
                decisions: k,
                branches: k
            },
            "fuel {}",
            1 + 2 * k
        );
    }
}

#[test]
fn taint_monitor_reports_out_of_fuel() {
    let fc = parse(LOOP).unwrap();
    for fuel in [0, 1, 2, 7] {
        let mut m = TaintMonitor::new(&fc, SurvConfig::surveillance(IndexSet::full(1)));
        let out = Stepper::new(&fc).with_fuel(fuel).run(&[0], &mut m);
        assert_eq!(out, SurvOutcome::OutOfFuel, "fuel {fuel}");
    }
}

#[test]
fn taint_monitor_fuel_cut_beats_the_halt_check() {
    // The program would be *rejected* at HALT (y carries x1, allow(∅));
    // with the fuel cut before HALT the outcome is OutOfFuel, not a
    // violation — the run never reached a release point.
    let fc = parse("program(1) { y := x1; }").unwrap();
    let mut m = TaintMonitor::new(&fc, SurvConfig::surveillance(IndexSet::empty()));
    let out = Stepper::new(&fc).with_fuel(2).run(&[7], &mut m);
    assert_eq!(out, SurvOutcome::OutOfFuel);
    // With enough fuel the same run is a HALT violation.
    let mut m = TaintMonitor::new(&fc, SurvConfig::surveillance(IndexSet::empty()));
    let out = Stepper::new(&fc).with_fuel(10).run(&[7], &mut m);
    assert!(matches!(out, SurvOutcome::Violation { .. }), "{out:?}");
}

#[test]
fn pair_fuel_finalizes_both_members() {
    let fc = parse(LOOP).unwrap();
    let taint = TaintMonitor::new(&fc, SurvConfig::surveillance(IndexSet::full(1)));
    let mut m = Pair(taint, NullMonitor);
    let (a, b) = Stepper::new(&fc).with_fuel(6).run(&[0], &mut m);
    assert_eq!(a, SurvOutcome::OutOfFuel);
    assert_eq!(b, Outcome::OutOfFuel);
}

#[test]
fn pair_fuel_at_decision_finalizes_the_counter_too() {
    let fc = parse(LOOP).unwrap();
    let taint = TaintMonitor::new(&fc, SurvConfig::surveillance(IndexSet::full(1)));
    let mut m = Pair(taint, DecisionCounter::default());
    // Fuel 3: START, decision, assignment — the second decision never fires.
    let (a, b) = Stepper::new(&fc).with_fuel(3).run(&[0], &mut m);
    assert_eq!(a, SurvOutcome::OutOfFuel);
    assert_eq!(
        b,
        Ending::Fuel {
            decisions: 1,
            branches: 1
        }
    );
}

#[test]
fn timed_veto_interrupts_the_co_monitor() {
    // Under the timed discipline (checks at every decision) a tainted
    // test is vetoed; the paired co-monitor is finalized via
    // on_interrupt at the same step and site.
    let fc = parse("program(2) { y := x1; if x2 == 0 { y := 0; } }").unwrap();
    let taint = TaintMonitor::new(&fc, SurvConfig::timed(IndexSet::empty()));
    let mut m = Pair(taint, DecisionCounter::default());
    let (a, b) = Stepper::new(&fc).run(&[7, 5], &mut m);
    let SurvOutcome::Violation { site, steps, .. } = a else {
        panic!("expected a decision veto, got {a:?}");
    };
    assert_eq!(
        b,
        Ending::Interrupted {
            step: steps,
            at: site
        }
    );
    // The interrupted member saw the decision hook (both members observe
    // it before any abort takes effect) but never on_branch.
    let taint = TaintMonitor::new(&fc, SurvConfig::timed(IndexSet::empty()));
    let mut m = Pair(DecisionCounter::default(), taint);
    let (b2, _) = Stepper::new(&fc).run(&[7, 5], &mut m);
    assert!(matches!(b2, Ending::Interrupted { .. }), "{b2:?}");
}

#[test]
fn default_interrupt_maps_to_on_fuel() {
    // NullMonitor has no on_interrupt of its own: a co-monitor's veto
    // reads as "the run ended early", i.e. OutOfFuel.
    let fc = parse("program(2) { y := x1; if x2 == 0 { y := 0; } }").unwrap();
    let taint = TaintMonitor::new(&fc, SurvConfig::timed(IndexSet::empty()));
    let mut m = Pair(taint, NullMonitor);
    let (a, b) = Stepper::new(&fc).run(&[7, 5], &mut m);
    assert!(matches!(a, SurvOutcome::Violation { .. }), "{a:?}");
    assert_eq!(b, Outcome::OutOfFuel);
}

#[test]
fn assign_hooks_see_the_pre_state() {
    // Regression guard for the hook contract used by the taint monitors:
    // on_assign runs before the store update.
    struct PreState(Vec<i64>);
    impl Monitor for PreState {
        type Outcome = Vec<i64>;
        fn on_assign(&mut self, _s: u64, _a: NodeId, var: Var, _e: &Expr, store: &Store) {
            self.0.push(store.get(var));
        }
        fn on_halt(&mut self, _s: u64, _a: NodeId, _st: &Store) -> Self::Outcome {
            std::mem::take(&mut self.0)
        }
        fn on_fuel(&mut self, _steps: u64) -> Self::Outcome {
            std::mem::take(&mut self.0)
        }
    }
    let fc = parse("program(1) { y := 1; y := 2; y := 3; }").unwrap();
    let pre = Stepper::new(&fc).run(&[0], &mut PreState(Vec::new()));
    assert_eq!(pre, vec![0, 1, 2]);
}
