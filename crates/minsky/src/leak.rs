//! Leak quantification for marked machines.
//!
//! An observer who sees a machine's observable behaviour partitions the
//! secret space into indistinguishability classes; the mechanism leaks
//! `log2(#classes)` bits. A sound mechanism for `allow()` induces exactly
//! one class.

use std::collections::HashMap;
use std::hash::Hash;

/// Partitions `secrets` by the observable `f` produces, returning the
/// classes (each a list of secrets with identical observations).
pub fn distinguishable_classes<S, O, F>(secrets: &[S], f: F) -> Vec<Vec<S>>
where
    S: Clone,
    O: Eq + Hash,
    F: Fn(&S) -> O,
{
    // Classes come back in first-seen order.
    let mut index: HashMap<O, usize> = HashMap::new();
    let mut out: Vec<Vec<S>> = Vec::new();
    for s in secrets {
        let key = f(s);
        let i = *index.entry(key).or_insert_with(|| {
            out.push(Vec::new());
            out.len() - 1
        });
        out[i].push(s.clone());
    }
    out
}

/// Bits leaked: `log2` of the number of distinguishable classes.
pub fn bits_leaked(classes: usize) -> f64 {
    if classes <= 1 {
        0.0
    } else {
        (classes as f64).log2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datamark::HaltSemantics;
    use crate::programs::negative_inference_machine;

    #[test]
    fn constant_observable_leaks_nothing() {
        let classes = distinguishable_classes(&[0u64, 1, 2, 3], |_| 42u64);
        assert_eq!(classes.len(), 1);
        assert_eq!(bits_leaked(classes.len()), 0.0);
    }

    #[test]
    fn identity_observable_leaks_everything() {
        let secrets: Vec<u64> = (0..8).collect();
        let classes = distinguishable_classes(&secrets, |s| *s);
        assert_eq!(classes.len(), 8);
        assert!((bits_leaked(8) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn notice_semantics_leaks_one_bit() {
        let m = negative_inference_machine(HaltSemantics::Notice);
        let secrets: Vec<u64> = (0..10).collect();
        let classes = distinguishable_classes(&secrets, |&x| m.run(&[0, x], 1000).0);
        assert_eq!(classes.len(), 2, "x = 0 vs x ≠ 0");
        assert!((bits_leaked(2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn abort_semantics_leaks_zero_bits() {
        let m = negative_inference_machine(HaltSemantics::AbortOnPrivBranch);
        let secrets: Vec<u64> = (0..10).collect();
        let classes = distinguishable_classes(&secrets, |&x| m.run(&[0, x], 1000).0);
        assert_eq!(classes.len(), 1);
    }

    #[test]
    fn noop_semantics_still_leaks_one_bit() {
        let m = negative_inference_machine(HaltSemantics::NoOp);
        let secrets: Vec<u64> = (0..10).collect();
        let classes = distinguishable_classes(&secrets, |&x| m.run(&[0, x], 1000).0);
        assert_eq!(classes.len(), 2);
    }

    #[test]
    fn timing_included_observable_leaks_more() {
        // Observing (outcome, steps) of the copy loop distinguishes every
        // secret value.
        let m = crate::programs::copy_machine();
        let secrets: Vec<u64> = (0..6).collect();
        let classes = distinguishable_classes(&secrets, |&x| {
            let out = m.run(&[0, x], 1000);
            (out.output(), out.steps())
        });
        assert_eq!(classes.len(), 6);
    }
}
