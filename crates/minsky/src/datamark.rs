//! Fenton's data-mark machine, with the paper's three `halt` readings.
//!
//! Each register carries a [`Mark`] (`Null` or `Priv`), and so does the
//! program counter. Branching on a `Priv` register marks the PC `Priv`;
//! the mark is restored when control reaches the branch's *join point*
//! (Fenton's class-restoring discipline — each conditional names its join
//! explicitly here, mirroring his structured machine). An increment or
//! decrement executed under a `Priv` PC marks the touched register `Priv`
//! (implicit flow into data).
//!
//! The paper's Example 1 critique concerns the statement
//! `if P = null then halt`:
//!
//! > "What happens if P ≠ null …? One possibility is to assume the halt
//! > statement to be a no-op …; however, the semantics … are undefined in
//! > case the halt statement is the last program statement. Another
//! > possibility is that … an error message (i.e., a violation notice) is
//! > output. This is, however, unsound because a program can be written
//! > that will output an error message if and only if x = 0."
//!
//! [`HaltSemantics`] realizes all three readings:
//!
//! * [`HaltSemantics::Notice`] — the unsound reading (negative inference);
//! * [`HaltSemantics::NoOp`] — halt skipped under `Priv` PC; a skipped
//!   *final* halt leaves the machine stuck, modeled as divergence (the
//!   "undefined" case — and itself a leak through termination);
//! * [`HaltSemantics::AbortOnPrivBranch`] — the sound fix in the spirit of
//!   the paper's Theorem 3′: refuse to *branch* on `Priv` data at all,
//!   aborting with a notice before the secret can steer control.

use crate::machine::Inst;
use enf_core::{Program, Timed, TimedProgram, V};
use std::sync::Arc;

/// A security attribute: Fenton's `null` / `priv`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mark {
    /// Unclassified.
    Null,
    /// Possibly contains privileged information.
    Priv,
}

/// A data-mark instruction: the Minsky set, with conditionals naming their
/// join point for PC-mark restoration.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MInst {
    /// `INC r`.
    Inc(usize),
    /// `DECJZ r, t, join`: branch on `r` (jump to `t` when zero); if `r`
    /// is `Priv`, the PC is marked `Priv` until control reaches `join`.
    DecJz(usize, usize, usize),
    /// Unconditional jump.
    Jmp(usize),
    /// The contested `if P = null then halt`.
    Halt,
}

impl MInst {
    /// The plain (unmarked) Minsky equivalent.
    pub fn erase(self) -> Inst {
        match self {
            MInst::Inc(r) => Inst::Inc(r),
            MInst::DecJz(r, t, _) => Inst::DecJz(r, t),
            MInst::Jmp(t) => Inst::Jmp(t),
            MInst::Halt => Inst::Halt,
        }
    }
}

/// Which reading of `if P = null then halt` the machine uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HaltSemantics {
    /// Emit a violation notice when halting under a `Priv` PC — the
    /// unsound reading (Example 1).
    Notice,
    /// Treat the halt as a no-op under a `Priv` PC; undefined (here:
    /// divergence) if execution then falls off the end.
    NoOp,
    /// Abort with a notice the moment a branch would test `Priv` data —
    /// the sound fix (the Theorem 3′ discipline).
    AbortOnPrivBranch,
}

/// Result of a data-mark run.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum MarkedOutcome {
    /// Halted normally; the output register's value is released.
    Output(u64),
    /// A violation notice was emitted.
    Notice,
    /// The machine got stuck or exceeded its fuel.
    Diverged,
}

/// A data-mark machine: marked program plus initial register marks.
#[derive(Clone, Debug)]
pub struct DataMarkMachine {
    program: Vec<MInst>,
    nregs: usize,
    init_marks: Vec<Mark>,
    semantics: HaltSemantics,
}

impl DataMarkMachine {
    /// Creates a machine.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range registers or jump/join targets, or if
    /// `init_marks.len() != nregs`.
    pub fn new(
        nregs: usize,
        program: Vec<MInst>,
        init_marks: Vec<Mark>,
        semantics: HaltSemantics,
    ) -> Self {
        assert_eq!(init_marks.len(), nregs, "one initial mark per register");
        for (pc, inst) in program.iter().enumerate() {
            match inst {
                MInst::Inc(r) => assert!(*r < nregs, "instruction {pc}: r{r} out of range"),
                MInst::DecJz(r, t, j) => {
                    assert!(*r < nregs, "instruction {pc}: r{r} out of range");
                    assert!(*t <= program.len(), "instruction {pc}: target out of range");
                    assert!(*j <= program.len(), "instruction {pc}: join out of range");
                }
                MInst::Jmp(t) => {
                    assert!(*t <= program.len(), "instruction {pc}: target out of range")
                }
                MInst::Halt => {}
            }
        }
        DataMarkMachine {
            program,
            nregs,
            init_marks,
            semantics,
        }
    }

    /// The halt semantics in force.
    pub fn semantics(&self) -> HaltSemantics {
        self.semantics
    }

    /// Runs the machine.
    pub fn run(&self, init: &[u64], fuel: u64) -> (MarkedOutcome, u64) {
        let mut regs = vec![0u64; self.nregs];
        for (r, v) in regs.iter_mut().zip(init) {
            *r = *v;
        }
        let mut marks = self.init_marks.clone();
        let mut pc = 0usize;
        // Stack of (join point, saved PC mark); PC mark is Priv iff the
        // stack holds any Priv save or a Priv branch is active.
        let mut joins: Vec<(usize, Mark)> = Vec::new();
        let mut pc_mark = Mark::Null;
        let mut steps = 0u64;
        loop {
            // Restore the PC mark at join points.
            while let Some(&(join, saved)) = joins.last() {
                if pc == join {
                    pc_mark = saved;
                    joins.pop();
                } else {
                    break;
                }
            }
            if pc >= self.program.len() {
                // Falling off the end without HALT: stuck ("undefined").
                return (MarkedOutcome::Diverged, steps);
            }
            if steps >= fuel {
                return (MarkedOutcome::Diverged, steps);
            }
            steps += 1;
            match self.program[pc] {
                MInst::Inc(r) => {
                    regs[r] = regs[r].saturating_add(1);
                    if pc_mark == Mark::Priv {
                        marks[r] = Mark::Priv;
                    }
                    pc += 1;
                }
                MInst::DecJz(r, t, join) => {
                    if marks[r] == Mark::Priv {
                        if self.semantics == HaltSemantics::AbortOnPrivBranch {
                            return (MarkedOutcome::Notice, steps);
                        }
                        joins.push((join, pc_mark));
                        pc_mark = Mark::Priv;
                    }
                    if regs[r] == 0 {
                        pc = t;
                    } else {
                        regs[r] -= 1;
                        if pc_mark == Mark::Priv {
                            marks[r] = Mark::Priv;
                        }
                        pc += 1;
                    }
                }
                MInst::Jmp(t) => pc = t,
                MInst::Halt => match (pc_mark, self.semantics) {
                    (Mark::Null, _) => return (MarkedOutcome::Output(regs[0]), steps),
                    (Mark::Priv, HaltSemantics::Notice) => return (MarkedOutcome::Notice, steps),
                    (Mark::Priv, HaltSemantics::NoOp) => {
                        pc += 1;
                    }
                    (Mark::Priv, HaltSemantics::AbortOnPrivBranch) => {
                        // Unreachable in practice: a Priv PC requires a
                        // Priv branch, which already aborted. Halt cleanly.
                        return (MarkedOutcome::Notice, steps);
                    }
                },
            }
        }
    }
}

/// A data-mark machine as a 1-secret-input `enf_core` program: the secret
/// loads register 1 (marked per the machine's `init_marks`); the
/// observable is the [`MarkedOutcome`].
#[derive(Clone, Debug)]
pub struct DataMarkProgram {
    machine: Arc<DataMarkMachine>,
    arity: usize,
    fuel: u64,
}

impl DataMarkProgram {
    /// Wraps a machine as a `k`-input program (inputs load registers
    /// `1..=k`).
    pub fn new(machine: DataMarkMachine, arity: usize, fuel: u64) -> Self {
        assert!(machine.nregs > arity, "need arity + 1 registers");
        DataMarkProgram {
            machine: Arc::new(machine),
            arity,
            fuel,
        }
    }
}

impl Program for DataMarkProgram {
    type Out = MarkedOutcome;

    fn arity(&self) -> usize {
        self.arity
    }

    fn eval(&self, input: &[V]) -> MarkedOutcome {
        let regs: Vec<u64> = std::iter::once(0)
            .chain(input.iter().map(|v| (*v).max(0) as u64))
            .collect();
        self.machine.run(&regs, self.fuel).0
    }
}

impl TimedProgram for DataMarkProgram {
    fn eval_timed(&self, input: &[V]) -> Timed<MarkedOutcome> {
        let regs: Vec<u64> = std::iter::once(0)
            .chain(input.iter().map(|v| (*v).max(0) as u64))
            .collect();
        let (out, steps) = self.machine.run(&regs, self.fuel);
        Timed::new(out, steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn null_marks(n: usize) -> Vec<Mark> {
        vec![Mark::Null; n]
    }

    #[test]
    fn unmarked_machine_behaves_like_minsky() {
        // r0 := r1 via the data-mark machine with all-null marks.
        let m = DataMarkMachine::new(
            2,
            vec![
                MInst::DecJz(1, 3, 3),
                MInst::Inc(0),
                MInst::Jmp(0),
                MInst::Halt,
            ],
            null_marks(2),
            HaltSemantics::Notice,
        );
        assert_eq!(m.run(&[0, 4], 1000).0, MarkedOutcome::Output(4));
    }

    #[test]
    fn priv_branch_marks_pc_until_join() {
        // Branch on priv r1, both arms write r2, then join and halt.
        // Under Notice semantics the final halt is *after* the join, so
        // the PC mark is restored and output flows — but r2 got marked.
        let m = DataMarkMachine::new(
            3,
            vec![
                // 0: if r1 == 0 jump 3 (join = 3)
                MInst::DecJz(1, 3, 3),
                // 1: r2++ (under priv PC)
                MInst::Inc(2),
                // 2: fall through to join
                MInst::Jmp(3),
                // 3: join; halt
                MInst::Halt,
            ],
            vec![Mark::Null, Mark::Priv, Mark::Null],
            HaltSemantics::Notice,
        );
        // Output register r0 is untouched: released fine either way.
        assert_eq!(m.run(&[0, 0, 0], 100).0, MarkedOutcome::Output(0));
        assert_eq!(m.run(&[0, 5, 0], 100).0, MarkedOutcome::Output(0));
    }

    #[test]
    fn implicit_flow_marks_written_register() {
        // Copy one bit of priv r1 into r0 via control flow, then try to
        // release r0 — the halt is inside the priv region on one path.
        let m = leak_machine(HaltSemantics::Notice);
        // x = 0 path halts inside the region → Notice.
        assert_eq!(m.run(&[0, 0], 100).0, MarkedOutcome::Notice);
        // x ≠ 0 path reaches the join, PC restored → output released.
        assert_eq!(m.run(&[0, 3], 100).0, MarkedOutcome::Output(1));
    }

    /// The paper's negative-inference program: notice ⟺ x = 0.
    fn leak_machine(semantics: HaltSemantics) -> DataMarkMachine {
        DataMarkMachine::new(
            2,
            vec![
                // 0: if r1 == 0 jump to 3 (the in-region halt); join = 2.
                MInst::DecJz(1, 3, 2),
                // 1: fall through path: jump to join.
                MInst::Jmp(2),
                // 2: join; r0 := 1; halt normally.
                MInst::Inc(0),
                // 3: the contested halt, still inside the priv region.
                MInst::Halt,
                // 4: final halt (reached from join path via 2 → 3? no —
                //    index 3 is the in-region halt; the join path runs
                //    2 (Inc), then 3 (Halt) with PC restored at 2).
            ],
            vec![Mark::Null, Mark::Priv],
            semantics,
        )
    }

    #[test]
    fn notice_semantics_is_a_negative_inference_leak() {
        let m = leak_machine(HaltSemantics::Notice);
        let zero = m.run(&[0, 0], 100).0;
        let nonzero = m.run(&[0, 7], 100).0;
        // The observer distinguishes x = 0 from x ≠ 0 by whether an error
        // message appears — the paper's Holmesian "dog in the nighttime".
        assert_eq!(zero, MarkedOutcome::Notice);
        assert_eq!(nonzero, MarkedOutcome::Output(1));
        assert_ne!(zero, nonzero);
    }

    #[test]
    fn noop_semantics_leaks_through_termination_instead() {
        // x = 0: halt at 3 is skipped (priv PC), control falls off the end
        // — "undefined", modeled as divergence. x ≠ 0: normal output. The
        // paper's point: the no-op reading does not rescue soundness when
        // the halt is the last statement.
        let m = leak_machine(HaltSemantics::NoOp);
        assert_eq!(m.run(&[0, 0], 100).0, MarkedOutcome::Diverged);
        assert_eq!(m.run(&[0, 7], 100).0, MarkedOutcome::Output(1));
    }

    #[test]
    fn abort_semantics_is_uniform_hence_sound() {
        let m = leak_machine(HaltSemantics::AbortOnPrivBranch);
        let (a, sa) = m.run(&[0, 0], 100);
        let (b, sb) = m.run(&[0, 7], 100);
        assert_eq!(a, MarkedOutcome::Notice);
        assert_eq!(a, b);
        assert_eq!(sa, sb, "even the abort time is secret-independent");
    }

    #[test]
    fn soundness_checker_agrees_with_the_diagnosis() {
        use enf_core::{check_soundness, Allow, Grid, Identity};
        let g = Grid::hypercube(1, 0..=5);
        let policy = Allow::none(1);
        for (sem, expect_sound) in [
            (HaltSemantics::Notice, false),
            (HaltSemantics::NoOp, false),
            (HaltSemantics::AbortOnPrivBranch, true),
        ] {
            let p = DataMarkProgram::new(leak_machine(sem), 1, 1000);
            let sound = check_soundness(&Identity::new(p), &policy, &g, false).is_sound();
            assert_eq!(sound, expect_sound, "semantics {sem:?}");
        }
    }

    #[test]
    fn erase_recovers_plain_instructions() {
        assert_eq!(MInst::Inc(1).erase(), Inst::Inc(1));
        assert_eq!(MInst::DecJz(1, 2, 3).erase(), Inst::DecJz(1, 2));
        assert_eq!(MInst::Jmp(4).erase(), Inst::Jmp(4));
        assert_eq!(MInst::Halt.erase(), Inst::Halt);
    }

    #[test]
    #[should_panic(expected = "one initial mark per register")]
    fn marks_must_match_registers() {
        DataMarkMachine::new(
            2,
            vec![MInst::Halt],
            vec![Mark::Null],
            HaltSemantics::Notice,
        );
    }
}
