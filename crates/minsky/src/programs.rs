//! Machines used by the experiments.

use crate::datamark::{DataMarkMachine, HaltSemantics, MInst, Mark};
use crate::machine::{Inst, MinskyMachine};

/// `r0 := r1` — the copy loop (also a timing channel: runs in Θ(r1)).
pub fn copy_machine() -> MinskyMachine {
    MinskyMachine::new(
        2,
        vec![Inst::DecJz(1, 3), Inst::Inc(0), Inst::Jmp(0), Inst::Halt],
    )
}

/// `r0 := r1 + r2`.
pub fn add_machine() -> MinskyMachine {
    MinskyMachine::new(
        3,
        vec![
            Inst::DecJz(1, 3),
            Inst::Inc(0),
            Inst::Jmp(0),
            Inst::DecJz(2, 6),
            Inst::Inc(0),
            Inst::Jmp(3),
            Inst::Halt,
        ],
    )
}

/// `r0 := (r1 == 0 ? 1 : 0)` — a one-bit test, constant output size but
/// branch-dependent control flow.
pub fn is_zero_machine() -> MinskyMachine {
    MinskyMachine::new(
        2,
        vec![
            Inst::DecJz(1, 2),
            Inst::Halt, // r1 > 0: output 0
            Inst::Inc(0),
            Inst::Halt, // r1 == 0: output 1
        ],
    )
}

/// The paper's negative-inference machine: with [`HaltSemantics::Notice`]
/// it "will output an error message if and only if x = 0" (x in register
/// 1, marked `priv`).
pub fn negative_inference_machine(semantics: HaltSemantics) -> DataMarkMachine {
    DataMarkMachine::new(
        2,
        vec![
            // 0: branch on priv r1; zero-path jumps into the region's halt.
            MInst::DecJz(1, 3, 2),
            // 1: nonzero path heads for the join.
            MInst::Jmp(2),
            // 2: join (PC mark restored); produce the normal output 1 …
            MInst::Inc(0),
            // 3: … and halt. The zero path arrives here still marked.
            MInst::Halt,
        ],
        vec![Mark::Null, Mark::Priv],
        semantics,
    )
}

/// A data-mark machine that *legitimately* computes on null data next to a
/// priv register it never touches — the case every semantics must accept.
pub fn benign_machine(semantics: HaltSemantics) -> DataMarkMachine {
    DataMarkMachine::new(
        3,
        vec![
            // r0 := r2 (null); r1 (priv) untouched.
            MInst::DecJz(2, 3, 3),
            MInst::Inc(0),
            MInst::Jmp(0),
            MInst::Halt,
        ],
        vec![Mark::Null, Mark::Priv, Mark::Null],
        semantics,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datamark::MarkedOutcome;

    #[test]
    fn copy_copies() {
        assert_eq!(copy_machine().run(&[0, 9], 1000).output(), Some(9));
    }

    #[test]
    fn add_adds() {
        assert_eq!(add_machine().run(&[0, 2, 5], 1000).output(), Some(7));
    }

    #[test]
    fn is_zero_tests() {
        assert_eq!(is_zero_machine().run(&[0, 0], 100).output(), Some(1));
        assert_eq!(is_zero_machine().run(&[0, 4], 100).output(), Some(0));
    }

    #[test]
    fn negative_inference_leaks_exactly_under_notice() {
        let m = negative_inference_machine(HaltSemantics::Notice);
        assert_eq!(m.run(&[0, 0], 100).0, MarkedOutcome::Notice);
        for x in 1..5 {
            assert_eq!(m.run(&[0, x], 100).0, MarkedOutcome::Output(1));
        }
    }

    #[test]
    fn benign_machine_accepted_by_every_semantics() {
        for sem in [
            HaltSemantics::Notice,
            HaltSemantics::NoOp,
            HaltSemantics::AbortOnPrivBranch,
        ] {
            let m = benign_machine(sem);
            for (x, z) in [(0u64, 0u64), (5, 3), (9, 7)] {
                assert_eq!(
                    m.run(&[0, x, z], 1000).0,
                    MarkedOutcome::Output(z),
                    "sem {sem:?}"
                );
            }
        }
    }
}
