//! The plain Minsky register machine.
//!
//! Registers hold natural numbers; the instruction set is the classic
//! minimal pair — increment, and decrement-or-jump-if-zero — plus an
//! explicit `HALT`. Register 0 is the output register by convention.

use enf_core::{Program, Timed, TimedProgram, V};
use std::sync::Arc;

/// A Minsky machine instruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Inst {
    /// `INC r`: increment register `r`.
    Inc(usize),
    /// `DECJZ r, t`: if register `r` is zero jump to instruction `t`,
    /// otherwise decrement it and fall through.
    DecJz(usize, usize),
    /// Unconditional jump to instruction `t` (sugar: `DECJZ scratch, t`
    /// with an always-zero scratch register; provided natively for
    /// readability).
    Jmp(usize),
    /// Stop; the observable output is register 0.
    Halt,
}

/// Result of running a machine.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MinskyOutcome {
    /// Halted with the final register file.
    Halted {
        /// Registers at halt.
        regs: Vec<u64>,
        /// Instructions executed.
        steps: u64,
    },
    /// Ran past the end of the program (no `HALT`) — treated as halting
    /// with the current registers, per the "fall off the end" convention.
    FellOff {
        /// Registers at exit.
        regs: Vec<u64>,
        /// Instructions executed.
        steps: u64,
    },
    /// Fuel exhausted.
    OutOfFuel,
}

impl MinskyOutcome {
    /// The output (register 0), if the machine stopped.
    pub fn output(&self) -> Option<u64> {
        match self {
            MinskyOutcome::Halted { regs, .. } | MinskyOutcome::FellOff { regs, .. } => {
                Some(regs.first().copied().unwrap_or(0))
            }
            MinskyOutcome::OutOfFuel => None,
        }
    }

    /// Steps executed, if the machine stopped.
    pub fn steps(&self) -> Option<u64> {
        match self {
            MinskyOutcome::Halted { steps, .. } | MinskyOutcome::FellOff { steps, .. } => {
                Some(*steps)
            }
            MinskyOutcome::OutOfFuel => None,
        }
    }
}

/// A Minsky machine: a program over `nregs` registers.
#[derive(Clone, Debug)]
pub struct MinskyMachine {
    program: Vec<Inst>,
    nregs: usize,
}

impl MinskyMachine {
    /// Creates a machine, checking that register and jump targets are in
    /// range (jump targets may be one past the end, meaning "exit").
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range register or jump target.
    pub fn new(nregs: usize, program: Vec<Inst>) -> Self {
        for (pc, inst) in program.iter().enumerate() {
            match inst {
                Inst::Inc(r) | Inst::DecJz(r, _) => {
                    assert!(*r < nregs, "instruction {pc}: register r{r} out of range");
                }
                _ => {}
            }
            if let Inst::DecJz(_, t) | Inst::Jmp(t) = inst {
                assert!(
                    *t <= program.len(),
                    "instruction {pc}: jump target {t} out of range"
                );
            }
        }
        MinskyMachine { program, nregs }
    }

    /// The instruction list.
    pub fn program(&self) -> &[Inst] {
        &self.program
    }

    /// Number of registers.
    pub fn nregs(&self) -> usize {
        self.nregs
    }

    /// Runs the machine from the given initial registers.
    ///
    /// Missing initial registers default to 0; extras are ignored.
    pub fn run(&self, init: &[u64], fuel: u64) -> MinskyOutcome {
        let mut regs = vec![0u64; self.nregs];
        for (r, v) in regs.iter_mut().zip(init) {
            *r = *v;
        }
        let mut pc = 0usize;
        let mut steps = 0u64;
        loop {
            if pc >= self.program.len() {
                return MinskyOutcome::FellOff { regs, steps };
            }
            if steps >= fuel {
                return MinskyOutcome::OutOfFuel;
            }
            steps += 1;
            match self.program[pc] {
                Inst::Inc(r) => {
                    regs[r] = regs[r].saturating_add(1);
                    pc += 1;
                }
                Inst::DecJz(r, t) => {
                    if regs[r] == 0 {
                        pc = t;
                    } else {
                        regs[r] -= 1;
                        pc += 1;
                    }
                }
                Inst::Jmp(t) => pc = t,
                Inst::Halt => return MinskyOutcome::Halted { regs, steps },
            }
        }
    }
}

/// The observable output of a Minsky-machine program, totalized.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MinskyValue {
    /// Halted with this output-register value.
    Value(u64),
    /// Did not halt within the fuel bound.
    Diverged,
}

/// A Minsky machine as an `enf_core` program: input `i` loads register
/// `i` (1-based inputs land in registers `1..=k`; register 0 is output).
///
/// Negative integer inputs clamp to 0 — the machine computes over the
/// naturals, as in Fenton's model.
#[derive(Clone, Debug)]
pub struct MinskyProgram {
    machine: Arc<MinskyMachine>,
    arity: usize,
    fuel: u64,
}

impl MinskyProgram {
    /// Wraps a machine as a `k`-input program.
    ///
    /// # Panics
    ///
    /// Panics if the machine has fewer than `k + 1` registers.
    pub fn new(machine: MinskyMachine, arity: usize, fuel: u64) -> Self {
        assert!(
            machine.nregs() > arity,
            "need registers 0..={arity} for output plus {arity} inputs"
        );
        MinskyProgram {
            machine: Arc::new(machine),
            arity,
            fuel,
        }
    }

    /// The underlying machine.
    pub fn machine(&self) -> &MinskyMachine {
        &self.machine
    }

    fn init_regs(&self, input: &[V]) -> Vec<u64> {
        let mut regs = vec![0u64; self.machine.nregs()];
        for (i, v) in input.iter().enumerate() {
            regs[i + 1] = (*v).max(0) as u64;
        }
        regs
    }
}

impl Program for MinskyProgram {
    type Out = MinskyValue;

    fn arity(&self) -> usize {
        self.arity
    }

    fn eval(&self, input: &[V]) -> MinskyValue {
        match self.machine.run(&self.init_regs(input), self.fuel).output() {
            Some(v) => MinskyValue::Value(v),
            None => MinskyValue::Diverged,
        }
    }
}

impl TimedProgram for MinskyProgram {
    fn eval_timed(&self, input: &[V]) -> Timed<MinskyValue> {
        let out = self.machine.run(&self.init_regs(input), self.fuel);
        match (&out.output(), out.steps()) {
            (Some(v), Some(s)) => Timed::new(MinskyValue::Value(*v), s),
            _ => Timed::new(MinskyValue::Diverged, self.fuel),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inc_and_halt() {
        let m = MinskyMachine::new(1, vec![Inst::Inc(0), Inst::Inc(0), Inst::Halt]);
        let out = m.run(&[], 100);
        assert_eq!(out.output(), Some(2));
        assert_eq!(out.steps(), Some(3));
    }

    #[test]
    fn decjz_jumps_on_zero_and_decrements_otherwise() {
        // Move r1 into r0: loop { if r1 == 0 jump end; r1--; r0++; }.
        let m = MinskyMachine::new(
            2,
            vec![
                Inst::DecJz(1, 4),
                Inst::Inc(0),
                Inst::Jmp(0),
                Inst::Halt, // unreachable
                Inst::Halt,
            ],
        );
        assert_eq!(m.run(&[0, 5], 1000).output(), Some(5));
        assert_eq!(m.run(&[0, 0], 1000).output(), Some(0));
    }

    #[test]
    fn addition_machine() {
        // r0 := r1 + r2.
        let m = MinskyMachine::new(
            3,
            vec![
                Inst::DecJz(1, 3),
                Inst::Inc(0),
                Inst::Jmp(0),
                Inst::DecJz(2, 6),
                Inst::Inc(0),
                Inst::Jmp(3),
                Inst::Halt,
            ],
        );
        assert_eq!(m.run(&[0, 3, 4], 1000).output(), Some(7));
    }

    #[test]
    fn falling_off_the_end_is_an_exit() {
        let m = MinskyMachine::new(1, vec![Inst::Inc(0)]);
        match m.run(&[], 100) {
            MinskyOutcome::FellOff { regs, steps } => {
                assert_eq!(regs[0], 1);
                assert_eq!(steps, 1);
            }
            other => panic!("expected fall-off, got {other:?}"),
        }
    }

    #[test]
    fn fuel_exhaustion() {
        let m = MinskyMachine::new(1, vec![Inst::Jmp(0)]);
        assert_eq!(m.run(&[], 50), MinskyOutcome::OutOfFuel);
    }

    #[test]
    #[should_panic(expected = "register r3 out of range")]
    fn bad_register_rejected() {
        MinskyMachine::new(2, vec![Inst::Inc(3)]);
    }

    #[test]
    #[should_panic(expected = "jump target 9 out of range")]
    fn bad_target_rejected() {
        MinskyMachine::new(1, vec![Inst::Jmp(9)]);
    }

    #[test]
    fn jump_to_one_past_end_is_exit() {
        let m = MinskyMachine::new(1, vec![Inst::Jmp(1)]);
        assert!(matches!(m.run(&[], 10), MinskyOutcome::FellOff { .. }));
    }

    #[test]
    fn program_adapter_maps_inputs_to_registers() {
        // r0 := r1 (copy input 1 to output).
        let m = MinskyMachine::new(
            2,
            vec![Inst::DecJz(1, 3), Inst::Inc(0), Inst::Jmp(0), Inst::Halt],
        );
        let p = MinskyProgram::new(m, 1, 10_000);
        assert_eq!(p.eval(&[7]), MinskyValue::Value(7));
        assert_eq!(p.eval(&[-5]), MinskyValue::Value(0), "negatives clamp");
        let t = p.eval_timed(&[3]);
        assert!(t.steps > 0);
    }

    #[test]
    fn timing_depends_on_input_for_copy_loop() {
        let m = MinskyMachine::new(
            2,
            vec![Inst::DecJz(1, 3), Inst::Inc(0), Inst::Jmp(0), Inst::Halt],
        );
        let p = MinskyProgram::new(m, 1, 10_000);
        assert!(p.eval_timed(&[9]).steps > p.eval_timed(&[1]).steps);
    }

    #[test]
    fn saturating_increment_keeps_totality() {
        let m = MinskyMachine::new(1, vec![Inst::Inc(0), Inst::Halt]);
        let out = m.run(&[u64::MAX], 10);
        assert_eq!(out.output(), Some(u64::MAX));
    }
}
