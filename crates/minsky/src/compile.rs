//! Compiling flowchart programs to Minsky machines.
//!
//! Example 1 frames programs as "the computation of some given
//! Minsky-machine that was started with its ith register containing di".
//! This module realizes the connection for the *natural-number fragment*
//! of the flowchart language: sums of variables and nonnegative constants,
//! the decrement `v := v - 1`, zero-tests (`== 0`, `!= 0`, `> 0`) and the
//! structured control constructs. Within that fragment — and on
//! nonnegative inputs that never drive a decremented variable below zero —
//! the compiled machine computes exactly the flowchart's function, which
//! the differential tests check.
//!
//! Classic register-machine technology: zero-tests are `DECJZ` followed by
//! a restoring `INC`; copies go through a scratch register and a restore
//! loop; the two-pass assembler resolves symbolic labels.

use crate::machine::{Inst, MinskyMachine};
use enf_flowchart::ast::{CmpOp, Expr, Pred, Var};
use enf_flowchart::structured::{Stmt, StructuredProgram};
use std::fmt;

/// Why a program is outside the compilable fragment.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CompileError {
    /// Expression uses an operation outside sums/decrements.
    UnsupportedExpr(String),
    /// Predicate is not a zero-test on a single variable.
    UnsupportedPred(String),
    /// A constant was negative.
    NegativeConstant(i64),
    /// Policy boxes (`setpolicy`/`declassify`) have no Minsky-machine
    /// counterpart — the counter machine carries no label runtime.
    UnsupportedPolicy,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::UnsupportedExpr(e) => {
                write!(f, "expression `{e}` outside the natural-sum fragment")
            }
            CompileError::UnsupportedPred(p) => {
                write!(f, "predicate `{p}` is not a zero-test")
            }
            CompileError::NegativeConstant(c) => write!(f, "negative constant {c}"),
            CompileError::UnsupportedPolicy => {
                write!(f, "setpolicy/declassify have no Minsky-machine counterpart")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// Assembly with symbolic labels, resolved by [`Assembler::finish`].
enum Asm {
    Inst(Inst),
    /// `DECJZ r, label`.
    DecJzL(usize, usize),
    /// `JMP label`.
    JmpL(usize),
    /// Label definition.
    Label(usize),
}

struct Assembler {
    code: Vec<Asm>,
    next_label: usize,
}

impl Assembler {
    fn new() -> Self {
        Assembler {
            code: Vec::new(),
            next_label: 0,
        }
    }

    fn label(&mut self) -> usize {
        self.next_label += 1;
        self.next_label - 1
    }

    fn here(&mut self, l: usize) {
        self.code.push(Asm::Label(l));
    }

    fn inc(&mut self, r: usize) {
        self.code.push(Asm::Inst(Inst::Inc(r)));
    }

    fn decjz(&mut self, r: usize, l: usize) {
        self.code.push(Asm::DecJzL(r, l));
    }

    fn jmp(&mut self, l: usize) {
        self.code.push(Asm::JmpL(l));
    }

    fn halt(&mut self) {
        self.code.push(Asm::Inst(Inst::Halt));
    }

    /// Clears register `r`.
    fn clear(&mut self, r: usize) {
        let head = self.label();
        let end = self.label();
        self.here(head);
        self.decjz(r, end);
        self.jmp(head);
        self.here(end);
    }

    /// Adds `src` into `dst`, preserving `src`, trashing `scratch`.
    fn add_preserving(&mut self, src: usize, dst: usize, scratch: usize) {
        self.clear(scratch);
        // Drain src into dst and scratch.
        let drain = self.label();
        let drained = self.label();
        self.here(drain);
        self.decjz(src, drained);
        self.inc(dst);
        self.inc(scratch);
        self.jmp(drain);
        self.here(drained);
        // Restore src from scratch.
        let restore = self.label();
        let done = self.label();
        self.here(restore);
        self.decjz(scratch, done);
        self.inc(src);
        self.jmp(restore);
        self.here(done);
    }

    fn finish(self, nregs: usize) -> MinskyMachine {
        // First pass: compute instruction offsets of labels.
        let mut offsets = vec![usize::MAX; self.next_label];
        let mut pc = 0usize;
        for a in &self.code {
            match a {
                Asm::Label(l) => offsets[*l] = pc,
                _ => pc += 1,
            }
        }
        let end = pc;
        // Second pass: emit.
        let mut prog = Vec::with_capacity(end);
        for a in &self.code {
            match a {
                Asm::Label(_) => {}
                Asm::Inst(i) => prog.push(*i),
                Asm::DecJzL(r, l) => {
                    let t = offsets[*l];
                    prog.push(Inst::DecJz(*r, if t == usize::MAX { end } else { t }));
                }
                Asm::JmpL(l) => {
                    let t = offsets[*l];
                    prog.push(Inst::Jmp(if t == usize::MAX { end } else { t }));
                }
            }
        }
        MinskyMachine::new(nregs, prog)
    }
}

/// A compiled program: the machine plus its register map.
#[derive(Clone, Debug)]
pub struct Compiled {
    /// The machine; register 0 is `y`, registers `1..=k` the inputs.
    pub machine: MinskyMachine,
    /// Number of flowchart inputs.
    pub arity: usize,
}

struct Ctx {
    arity: usize,
    regs: usize,
    acc: usize,
    scratch: usize,
}

impl Ctx {
    fn reg_of(&self, v: Var) -> usize {
        match v {
            Var::Out => 0,
            Var::Input(i) => i,
            Var::Reg(j) => self.arity + j,
        }
    }
}

fn max_reg(body: &[Stmt]) -> usize {
    fn expr_regs(e: &Expr, m: &mut usize) {
        for v in e.vars() {
            if let Var::Reg(j) = v {
                *m = (*m).max(j);
            }
        }
    }
    fn stmt_regs(s: &Stmt, m: &mut usize) {
        match s {
            Stmt::Assign(v, e) => {
                if let Var::Reg(j) = v {
                    *m = (*m).max(*j);
                }
                expr_regs(e, m);
            }
            Stmt::If(p, t, e) => {
                for v in p.vars() {
                    if let Var::Reg(j) = v {
                        *m = (*m).max(j);
                    }
                }
                for s in t.iter().chain(e) {
                    stmt_regs(s, m);
                }
            }
            Stmt::While(p, b) => {
                for v in p.vars() {
                    if let Var::Reg(j) = v {
                        *m = (*m).max(j);
                    }
                }
                for s in b {
                    stmt_regs(s, m);
                }
            }
            _ => {}
        }
    }
    let mut m = 0;
    for s in body {
        stmt_regs(s, &mut m);
    }
    m
}

/// Flattens a sum expression into (constant, variables), rejecting
/// anything outside the fragment.
fn flatten_sum(e: &Expr, consts: &mut i64, vars: &mut Vec<Var>) -> Result<(), CompileError> {
    match e {
        Expr::Const(c) => {
            if *c < 0 {
                return Err(CompileError::NegativeConstant(*c));
            }
            *consts += *c;
            Ok(())
        }
        Expr::Var(v) => {
            vars.push(*v);
            Ok(())
        }
        Expr::Add(a, b) => {
            flatten_sum(a, consts, vars)?;
            flatten_sum(b, consts, vars)
        }
        other => Err(CompileError::UnsupportedExpr(
            enf_flowchart::pretty::expr_to_string(other),
        )),
    }
}

/// The zero-test shape of a predicate: `(variable, jump-to-then when …)`.
enum ZeroTest {
    /// `v == 0`.
    Eq(Var),
    /// `v != 0` (equivalently `v > 0` over the naturals).
    Ne(Var),
}

fn classify_pred(p: &Pred) -> Result<ZeroTest, CompileError> {
    let unsupported = || {
        Err(CompileError::UnsupportedPred(
            enf_flowchart::pretty::pred_to_string(p),
        ))
    };
    match p {
        Pred::Cmp(op, a, b) => match (&**a, &**b, op) {
            (Expr::Var(v), Expr::Const(0), CmpOp::Eq) => Ok(ZeroTest::Eq(*v)),
            (Expr::Var(v), Expr::Const(0), CmpOp::Ne) => Ok(ZeroTest::Ne(*v)),
            (Expr::Var(v), Expr::Const(0), CmpOp::Gt) => Ok(ZeroTest::Ne(*v)),
            (Expr::Const(0), Expr::Var(v), CmpOp::Lt) => Ok(ZeroTest::Ne(*v)),
            _ => unsupported(),
        },
        _ => unsupported(),
    }
}

fn compile_stmts(asm: &mut Assembler, ctx: &Ctx, body: &[Stmt]) -> Result<(), CompileError> {
    for s in body {
        compile_stmt(asm, ctx, s)?;
    }
    Ok(())
}

fn compile_stmt(asm: &mut Assembler, ctx: &Ctx, s: &Stmt) -> Result<(), CompileError> {
    match s {
        Stmt::Skip => Ok(()),
        Stmt::Halt => {
            asm.halt();
            Ok(())
        }
        Stmt::SetPolicy(_) | Stmt::Declassify(..) => Err(CompileError::UnsupportedPolicy),
        Stmt::Assign(v, e) => {
            // Special-case the monus decrement `v := v - 1`.
            if let Expr::Sub(a, b) = e {
                if matches!((&**a, &**b), (Expr::Var(w), Expr::Const(1)) if w == v) {
                    let next = asm.label();
                    asm.decjz(ctx.reg_of(*v), next);
                    asm.here(next);
                    return Ok(());
                }
            }
            let mut c = 0i64;
            let mut vars = Vec::new();
            flatten_sum(e, &mut c, &mut vars)?;
            let dst = ctx.reg_of(*v);
            // Accumulate in acc so `v := v + w` style self-references work.
            asm.clear(ctx.acc);
            for _ in 0..c {
                asm.inc(ctx.acc);
            }
            for w in vars {
                asm.add_preserving(ctx.reg_of(w), ctx.acc, ctx.scratch);
            }
            // Move acc into dst (destructive move).
            asm.clear(dst);
            let head = asm.label();
            let done = asm.label();
            asm.here(head);
            asm.decjz(ctx.acc, done);
            asm.inc(dst);
            asm.jmp(head);
            asm.here(done);
            Ok(())
        }
        Stmt::If(p, then_, else_) => {
            let test = classify_pred(p)?;
            let (var, then_on_zero) = match test {
                ZeroTest::Eq(v) => (v, true),
                ZeroTest::Ne(v) => (v, false),
            };
            let r = ctx.reg_of(var);
            let on_zero = asm.label();
            let end = asm.label();
            asm.decjz(r, on_zero);
            asm.inc(r); // restore the decrement taken on the nonzero path
            if then_on_zero {
                compile_stmts(asm, ctx, else_)?;
                asm.jmp(end);
                asm.here(on_zero);
                compile_stmts(asm, ctx, then_)?;
            } else {
                compile_stmts(asm, ctx, then_)?;
                asm.jmp(end);
                asm.here(on_zero);
                compile_stmts(asm, ctx, else_)?;
            }
            asm.here(end);
            Ok(())
        }
        Stmt::While(p, b) => {
            let test = classify_pred(p)?;
            let (var, loop_on_zero) = match test {
                ZeroTest::Eq(v) => (v, true),
                ZeroTest::Ne(v) => (v, false),
            };
            let r = ctx.reg_of(var);
            let head = asm.label();
            let body_l = asm.label();
            let end = asm.label();
            asm.here(head);
            asm.decjz(r, if loop_on_zero { body_l } else { end });
            asm.inc(r);
            if loop_on_zero {
                // `while v == 0`: nonzero exits.
                asm.jmp(end);
                asm.here(body_l);
            }
            compile_stmts(asm, ctx, b)?;
            asm.jmp(head);
            asm.here(end);
            Ok(())
        }
    }
}

/// Compiles a structured program in the natural-number fragment.
pub fn compile(p: &StructuredProgram) -> Result<Compiled, CompileError> {
    let regs = max_reg(&p.body);
    let ctx = Ctx {
        arity: p.arity,
        regs,
        acc: p.arity + regs + 1,
        scratch: p.arity + regs + 2,
    };
    let nregs = ctx.scratch + 1;
    let mut asm = Assembler::new();
    compile_stmts(&mut asm, &ctx, &p.body)?;
    asm.halt();
    let _ = ctx.regs; // layout documented via the field
    Ok(Compiled {
        machine: asm.finish(nregs),
        arity: p.arity,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use enf_flowchart::generate::SplitMix;
    use enf_flowchart::interp::{run, ExecConfig};
    use enf_flowchart::parser::parse_structured;
    use enf_flowchart::structured::lower;

    fn run_both(src: &str, inputs: &[i64]) -> (i64, u64) {
        let sp = parse_structured(src).unwrap();
        let fc = lower(&sp).unwrap();
        let fv = run(&fc, inputs, &ExecConfig::default()).unwrap_halted().y;
        let c = compile(&sp).unwrap();
        let init: Vec<u64> = std::iter::once(0)
            .chain(inputs.iter().map(|v| *v as u64))
            .collect();
        let mv = c
            .machine
            .run(&init, 10_000_000)
            .output()
            .expect("machine halts");
        (fv, mv)
    }

    #[test]
    fn constant_assignment() {
        let (f, m) = run_both("program(1) { y := 5; }", &[0]);
        assert_eq!(f as u64, m);
    }

    #[test]
    fn copy_input() {
        let (f, m) = run_both("program(1) { y := x1; }", &[7]);
        assert_eq!((f, m), (7, 7));
    }

    #[test]
    fn sums_with_self_reference() {
        let (f, m) = run_both("program(2) { y := x1 + x2 + 3; y := y + y; }", &[2, 4]);
        assert_eq!(f, 18);
        assert_eq!(m, 18);
    }

    #[test]
    fn monus_decrement() {
        let (f, m) = run_both("program(1) { y := x1; if y != 0 { y := y - 1; } }", &[3]);
        assert_eq!((f, m), (2, 2));
    }

    #[test]
    fn if_zero_test_both_paths() {
        let src = "program(1) { if x1 == 0 { y := 10; } else { y := 20; } }";
        assert_eq!(run_both(src, &[0]), (10, 10));
        assert_eq!(run_both(src, &[4]), (20, 20));
    }

    #[test]
    fn if_preserves_tested_variable() {
        let src = "program(1) { if x1 != 0 { y := x1; } else { y := 99; } }";
        assert_eq!(run_both(src, &[5]), (5, 5));
        assert_eq!(run_both(src, &[0]), (99, 99));
    }

    #[test]
    fn counted_loop() {
        let src = "program(1) {
            r1 := x1;
            while r1 > 0 { y := y + 2; r1 := r1 - 1; }
        }";
        for x in 0..5 {
            let (f, m) = run_both(src, &[x]);
            assert_eq!(f, 2 * x, "flowchart at {x}");
            assert_eq!(m, 2 * x as u64, "machine at {x}");
        }
    }

    #[test]
    fn nested_control() {
        let src = "program(2) {
            r1 := x1;
            while r1 > 0 {
                if x2 == 0 { y := y + 1; } else { y := y + 3; }
                r1 := r1 - 1;
            }
        }";
        assert_eq!(run_both(src, &[3, 0]), (3, 3));
        assert_eq!(run_both(src, &[3, 9]), (9, 9));
    }

    #[test]
    fn early_halt() {
        let src = "program(1) { y := 1; if x1 == 0 { halt; } y := 2; }";
        assert_eq!(run_both(src, &[0]), (1, 1));
        assert_eq!(run_both(src, &[5]), (2, 2));
    }

    #[test]
    fn unsupported_constructs_report_errors() {
        let mul = parse_structured("program(1) { y := x1 * 2; }").unwrap();
        assert!(matches!(
            compile(&mul),
            Err(CompileError::UnsupportedExpr(_))
        ));
        let cmp = parse_structured("program(2) { if x1 == x2 { y := 1; } }").unwrap();
        assert!(matches!(
            compile(&cmp),
            Err(CompileError::UnsupportedPred(_))
        ));
        let neg = parse_structured("program(1) { y := 0 - 1 + x1; }").unwrap();
        assert!(compile(&neg).is_err());
    }

    /// Differential test over randomly generated fragment programs.
    #[test]
    fn differential_random_fragment_programs() {
        for seed in 0..60u64 {
            let sp = random_fragment(seed);
            let fc = lower(&sp).unwrap();
            let c = compile(&sp).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            for x1 in 0..3i64 {
                for x2 in 0..3i64 {
                    let f = run(&fc, &[x1, x2], &ExecConfig::default())
                        .unwrap_halted()
                        .y;
                    let m = c
                        .machine
                        .run(&[0, x1 as u64, x2 as u64], 10_000_000)
                        .output()
                        .unwrap_or_else(|| panic!("seed {seed} diverged"));
                    assert_eq!(
                        f as u64, m,
                        "seed {seed} differs at ({x1}, {x2}): flowchart {f}, machine {m}"
                    );
                }
            }
        }
    }

    /// Generates a random program inside the compilable fragment: sums,
    /// zero-tests, and counted loops whose counters are private registers.
    fn random_fragment(seed: u64) -> StructuredProgram {
        use enf_flowchart::ast::{add as eadd, Expr, Pred, Var};
        let mut rng = SplitMix::new(seed);
        let mut body = Vec::new();
        let vars = [Var::Out, Var::Reg(1), Var::Reg(2)];
        let reads = [
            Var::Out,
            Var::Reg(1),
            Var::Reg(2),
            Var::Input(1),
            Var::Input(2),
        ];
        let rand_sum = |rng: &mut SplitMix| {
            let mut e = Expr::Const(rng.below(3) as i64);
            for _ in 0..rng.below(3) {
                e = eadd(e, Expr::Var(reads[rng.below(5) as usize]));
            }
            e
        };
        for _ in 0..6 {
            match rng.below(4) {
                0 | 1 => {
                    let v = vars[rng.below(3) as usize];
                    let e = rand_sum(&mut rng);
                    body.push(Stmt::Assign(v, e));
                }
                2 => {
                    let t = reads[rng.below(5) as usize];
                    let pred = if rng.below(2) == 0 {
                        Pred::eq(Expr::Var(t), Expr::c(0))
                    } else {
                        Pred::ne(Expr::Var(t), Expr::c(0))
                    };
                    let v = vars[rng.below(3) as usize];
                    let e1 = rand_sum(&mut rng);
                    let w = vars[rng.below(3) as usize];
                    let e2 = rand_sum(&mut rng);
                    body.push(Stmt::If(
                        pred,
                        vec![Stmt::Assign(v, e1)],
                        vec![Stmt::Assign(w, e2)],
                    ));
                }
                _ => {
                    // Counted loop on a dedicated register r3.
                    let bound = rng.below(3) as i64;
                    let v = vars[rng.below(3) as usize];
                    let e = rand_sum(&mut rng);
                    body.push(Stmt::Assign(Var::Reg(3), Expr::c(bound)));
                    body.push(Stmt::While(
                        Pred::gt(Expr::r(3), Expr::c(0)),
                        vec![
                            Stmt::Assign(v, e),
                            Stmt::Assign(
                                Var::Reg(3),
                                Expr::Sub(Box::new(Expr::r(3)), Box::new(Expr::c(1))),
                            ),
                        ],
                    ));
                }
            }
        }
        StructuredProgram::new(2, body)
    }
}
