//! Fenton's data-mark machine (the paper's Example 1) on a Minsky
//! register-machine substrate.
//!
//! "Fenton studies programs Q of the form Q: D1 × … × Dk → E … The value
//! Q(d1, …, dk) is the value obtained by the computation of some given
//! Minsky-machine that was started with its ith register containing di.
//! Each register has a security attribute of either *null* or *priv*."
//!
//! * [`machine`] — the plain Minsky machine: natural-number registers,
//!   `INC` / `DECJZ` / `HALT`, with step counting and a fuel bound.
//! * [`datamark`] — Fenton's data-mark layer: per-register marks, a marked
//!   program counter that is set by branches on `priv` data and restored at
//!   the branch's join point, and — crucially — the paper's three readings
//!   of the ambiguous `if P = null then halt` statement. The `Notice`
//!   reading reproduces the unsoundness the paper diagnoses ("a program
//!   can be written that will output an error message if and only if
//!   x = 0" — negative inference); the `AbortOnPrivBranch` reading is the
//!   sound fix the paper's Theorem 3′ recipe suggests.
//! * [`programs`] — the machines used by the experiments, including the
//!   negative-inference leak program.
//! * [`leak`] — leak quantification: how many secret values an observer
//!   can distinguish from the machine's observable behaviour.
//! * [`compile`] — a compiler from the flowchart language's natural-number
//!   fragment to Minsky machines, closing the loop on Example 1's framing
//!   (differentially tested against the flowchart interpreter).

#![warn(missing_docs)]

pub mod compile;
pub mod datamark;
pub mod leak;
pub mod machine;
pub mod programs;

pub use datamark::{DataMarkMachine, HaltSemantics, Mark, MarkedOutcome};
pub use machine::{Inst, MinskyMachine, MinskyOutcome};
