//! Expressions, predicates and variables of the flowchart language.
//!
//! The paper allows "any reasonable choice" of predicates and expressions
//! ("so long as predicates and expressions are recursive there is no
//! difficulty"). We fix a concrete recursive language: integer arithmetic
//! (`+ - * / %`, unary minus) and comparisons combined with boolean
//! connectives. All operations are *total*: division and modulo by zero
//! yield 0, and arithmetic wraps on overflow, so a flowchart always denotes
//! a total function.
//!
//! [`Expr::Ite`] is a conditional *expression* — it converts control flow
//! into data flow and is the target of the paper's if-then-else transform
//! (Section 4, Examples 7 and 8).

use enf_core::{IndexSet, V};
use std::fmt;

/// A variable of the flowchart language.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Var {
    /// Input variable `x_i` (1-based, as in the paper).
    Input(usize),
    /// Program variable `r_j` (1-based).
    Reg(usize),
    /// The output variable `y`.
    Out,
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Var::Input(i) => write!(f, "x{i}"),
            Var::Reg(j) => write!(f, "r{j}"),
            Var::Out => write!(f, "y"),
        }
    }
}

/// Comparison operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Applies the comparison.
    pub fn apply(self, a: V, b: V) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }

    /// The comparison with swapped truth value (`==` ↔ `!=`, `<` ↔ `>=`, …).
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// An integer expression `E(w1, …, ws)`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Expr {
    /// Integer literal.
    Const(V),
    /// Variable reference.
    Var(Var),
    /// Unary negation.
    Neg(Box<Expr>),
    /// Addition (wrapping).
    Add(Box<Expr>, Box<Expr>),
    /// Subtraction (wrapping).
    Sub(Box<Expr>, Box<Expr>),
    /// Multiplication (wrapping).
    Mul(Box<Expr>, Box<Expr>),
    /// Division; division by zero yields 0 to keep the semantics total.
    Div(Box<Expr>, Box<Expr>),
    /// Remainder; modulo by zero yields 0.
    Mod(Box<Expr>, Box<Expr>),
    /// Bitwise or — set union on bitmask-encoded index sets, as used by the
    /// paper's surveillance-variable assignments `v̄ ← w̄1 ∪ … ∪ w̄s ∪ C̄`.
    BOr(Box<Expr>, Box<Expr>),
    /// Bitwise and — set intersection; `t & !J` (with a constant mask)
    /// realizes the subset checks of the instrumented mechanism.
    BAnd(Box<Expr>, Box<Expr>),
    /// Conditional expression `ite(p, e1, e2)` — data-flow selection, the
    /// image of the paper's if-then-else transform.
    Ite(Box<Pred>, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Shorthand for a variable reference.
    pub fn var(v: Var) -> Expr {
        Expr::Var(v)
    }

    /// Shorthand for the input variable `x_i`.
    pub fn x(i: usize) -> Expr {
        Expr::Var(Var::Input(i))
    }

    /// Shorthand for the program variable `r_j`.
    pub fn r(j: usize) -> Expr {
        Expr::Var(Var::Reg(j))
    }

    /// Shorthand for the output variable `y`.
    pub fn y() -> Expr {
        Expr::Var(Var::Out)
    }

    /// Shorthand for an integer literal.
    pub fn c(v: V) -> Expr {
        Expr::Const(v)
    }

    /// Evaluates the expression against a variable valuation.
    ///
    /// Every operation is total: `/` and `%` by zero give 0 and arithmetic
    /// wraps, matching the crate's totality guarantee.
    pub fn eval(&self, env: &impl Fn(Var) -> V) -> V {
        match self {
            Expr::Const(v) => *v,
            Expr::Var(v) => env(*v),
            Expr::Neg(e) => e.eval(env).wrapping_neg(),
            Expr::Add(a, b) => a.eval(env).wrapping_add(b.eval(env)),
            Expr::Sub(a, b) => a.eval(env).wrapping_sub(b.eval(env)),
            Expr::Mul(a, b) => a.eval(env).wrapping_mul(b.eval(env)),
            Expr::Div(a, b) => {
                let d = b.eval(env);
                if d == 0 {
                    0
                } else {
                    a.eval(env).wrapping_div(d)
                }
            }
            Expr::Mod(a, b) => {
                let d = b.eval(env);
                if d == 0 {
                    0
                } else {
                    a.eval(env).wrapping_rem(d)
                }
            }
            Expr::BOr(a, b) => a.eval(env) | b.eval(env),
            Expr::BAnd(a, b) => a.eval(env) & b.eval(env),
            Expr::Ite(p, t, e) => {
                if p.eval(env) {
                    t.eval(env)
                } else {
                    e.eval(env)
                }
            }
        }
    }

    /// Collects every variable occurring in the expression.
    pub fn vars(&self) -> Vec<Var> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_vars(&self, out: &mut Vec<Var>) {
        match self {
            Expr::Const(_) => {}
            Expr::Var(v) => out.push(*v),
            Expr::Neg(e) => e.collect_vars(out),
            Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Div(a, b)
            | Expr::Mod(a, b)
            | Expr::BOr(a, b)
            | Expr::BAnd(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Expr::Ite(p, t, e) => {
                p.collect_vars(out);
                t.collect_vars(out);
                e.collect_vars(out);
            }
        }
    }

    /// The input indices mentioned directly by this expression (not
    /// transitively through registers).
    pub fn direct_inputs(&self) -> IndexSet {
        self.vars()
            .into_iter()
            .filter_map(|v| match v {
                Var::Input(i) => Some(i),
                _ => None,
            })
            .collect()
    }

    /// Whether the expression is a literal constant (syntactically).
    pub fn is_const(&self) -> bool {
        matches!(self, Expr::Const(_))
    }
}

/// Builds `a + b`.
pub fn add(a: Expr, b: Expr) -> Expr {
    Expr::Add(Box::new(a), Box::new(b))
}

/// Builds `a - b`.
pub fn sub(a: Expr, b: Expr) -> Expr {
    Expr::Sub(Box::new(a), Box::new(b))
}

/// Builds `a * b`.
pub fn mul(a: Expr, b: Expr) -> Expr {
    Expr::Mul(Box::new(a), Box::new(b))
}

/// Builds `ite(p, t, e)`.
pub fn ite(p: Pred, t: Expr, e: Expr) -> Expr {
    Expr::Ite(Box::new(p), Box::new(t), Box::new(e))
}

/// Builds `a | b` (bitwise or / set union).
pub fn bor(a: Expr, b: Expr) -> Expr {
    Expr::BOr(Box::new(a), Box::new(b))
}

/// Builds `a & b` (bitwise and / set intersection).
pub fn band(a: Expr, b: Expr) -> Expr {
    Expr::BAnd(Box::new(a), Box::new(b))
}

/// Folds `e1 | e2 | … | en | tail`; returns `tail` for an empty list.
pub fn bor_all(exprs: impl IntoIterator<Item = Expr>, tail: Expr) -> Expr {
    exprs.into_iter().fold(tail, bor)
}

/// A predicate `B(w1, …, ws)`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Pred {
    /// Constant truth.
    True,
    /// Constant falsity.
    False,
    /// Comparison of two expressions.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Logical negation.
    Not(Box<Pred>),
    /// Conjunction (both sides always evaluated; expressions are total).
    And(Box<Pred>, Box<Pred>),
    /// Disjunction.
    Or(Box<Pred>, Box<Pred>),
}

impl Pred {
    /// Builds the comparison `a op b`.
    pub fn cmp(op: CmpOp, a: Expr, b: Expr) -> Pred {
        Pred::Cmp(op, Box::new(a), Box::new(b))
    }

    /// Builds `a == b`.
    pub fn eq(a: Expr, b: Expr) -> Pred {
        Pred::cmp(CmpOp::Eq, a, b)
    }

    /// Builds `a != b`.
    pub fn ne(a: Expr, b: Expr) -> Pred {
        Pred::cmp(CmpOp::Ne, a, b)
    }

    /// Builds `a > b`.
    pub fn gt(a: Expr, b: Expr) -> Pred {
        Pred::cmp(CmpOp::Gt, a, b)
    }

    /// Builds `a < b`.
    pub fn lt(a: Expr, b: Expr) -> Pred {
        Pred::cmp(CmpOp::Lt, a, b)
    }

    /// Evaluates the predicate against a variable valuation.
    pub fn eval(&self, env: &impl Fn(Var) -> V) -> bool {
        match self {
            Pred::True => true,
            Pred::False => false,
            Pred::Cmp(op, a, b) => op.apply(a.eval(env), b.eval(env)),
            Pred::Not(p) => !p.eval(env),
            Pred::And(a, b) => a.eval(env) && b.eval(env),
            Pred::Or(a, b) => a.eval(env) || b.eval(env),
        }
    }

    /// Collects every variable occurring in the predicate.
    pub fn vars(&self) -> Vec<Var> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out.sort();
        out.dedup();
        out
    }

    pub(crate) fn collect_vars(&self, out: &mut Vec<Var>) {
        match self {
            Pred::True | Pred::False => {}
            Pred::Cmp(_, a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Pred::Not(p) => p.collect_vars(out),
            Pred::And(a, b) | Pred::Or(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
        }
    }

    /// Builds the logical negation, folding constants.
    #[must_use]
    pub fn negated(self) -> Pred {
        match self {
            Pred::True => Pred::False,
            Pred::False => Pred::True,
            Pred::Cmp(op, a, b) => Pred::Cmp(op.negate(), a, b),
            Pred::Not(p) => *p,
            other => Pred::Not(Box::new(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env_of(xs: &[(Var, V)]) -> impl Fn(Var) -> V + '_ {
        move |v| {
            xs.iter()
                .find(|(w, _)| *w == v)
                .map(|(_, x)| *x)
                .unwrap_or(0)
        }
    }

    #[test]
    fn arithmetic_evaluates() {
        let e = add(mul(Expr::x(1), Expr::c(2)), Expr::c(3));
        let env = env_of(&[(Var::Input(1), 5)]);
        assert_eq!(e.eval(&env), 13);
    }

    #[test]
    fn division_by_zero_is_total() {
        let e = Expr::Div(Box::new(Expr::c(7)), Box::new(Expr::x(1)));
        assert_eq!(e.eval(&env_of(&[(Var::Input(1), 0)])), 0);
        assert_eq!(e.eval(&env_of(&[(Var::Input(1), 2)])), 3);
        let m = Expr::Mod(Box::new(Expr::c(7)), Box::new(Expr::c(0)));
        assert_eq!(m.eval(&env_of(&[])), 0);
    }

    #[test]
    fn arithmetic_wraps_instead_of_panicking() {
        let e = add(Expr::c(V::MAX), Expr::c(1));
        assert_eq!(e.eval(&env_of(&[])), V::MIN);
        let n = Expr::Neg(Box::new(Expr::c(V::MIN)));
        assert_eq!(n.eval(&env_of(&[])), V::MIN);
        // MIN / -1 and MIN % -1 are the remaining overflow hazards.
        let d = Expr::Div(Box::new(Expr::c(V::MIN)), Box::new(Expr::c(-1)));
        assert_eq!(d.eval(&env_of(&[])), V::MIN);
        let r = Expr::Mod(Box::new(Expr::c(V::MIN)), Box::new(Expr::c(-1)));
        assert_eq!(r.eval(&env_of(&[])), 0);
    }

    #[test]
    fn ite_selects_by_predicate() {
        let e = ite(Pred::eq(Expr::x(1), Expr::c(1)), Expr::c(1), Expr::c(2));
        assert_eq!(e.eval(&env_of(&[(Var::Input(1), 1)])), 1);
        assert_eq!(e.eval(&env_of(&[(Var::Input(1), 9)])), 2);
    }

    #[test]
    fn vars_are_sorted_and_deduped() {
        let e = add(Expr::x(2), add(Expr::r(1), add(Expr::x(2), Expr::y())));
        assert_eq!(e.vars(), vec![Var::Input(2), Var::Reg(1), Var::Out]);
    }

    #[test]
    fn ite_vars_include_predicate_vars() {
        let e = ite(Pred::eq(Expr::x(1), Expr::c(0)), Expr::x(2), Expr::x(3));
        assert_eq!(e.vars(), vec![Var::Input(1), Var::Input(2), Var::Input(3)]);
        assert_eq!(e.direct_inputs(), enf_core::IndexSet::from_iter([1, 2, 3]));
    }

    #[test]
    fn cmp_ops_apply() {
        assert!(CmpOp::Eq.apply(1, 1));
        assert!(CmpOp::Ne.apply(1, 2));
        assert!(CmpOp::Lt.apply(1, 2));
        assert!(CmpOp::Le.apply(2, 2));
        assert!(CmpOp::Gt.apply(3, 2));
        assert!(CmpOp::Ge.apply(3, 3));
    }

    #[test]
    fn cmp_negate_is_involutive_and_complementary() {
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            assert_eq!(op.negate().negate(), op);
            for (a, b) in [(1, 2), (2, 1), (2, 2)] {
                assert_eq!(op.apply(a, b), !op.negate().apply(a, b));
            }
        }
    }

    #[test]
    fn pred_connectives() {
        let t = Pred::True;
        let f = Pred::False;
        let env = env_of(&[]);
        assert!(Pred::And(Box::new(t.clone()), Box::new(t.clone())).eval(&env));
        assert!(!Pred::And(Box::new(t.clone()), Box::new(f.clone())).eval(&env));
        assert!(Pred::Or(Box::new(f.clone()), Box::new(t.clone())).eval(&env));
        assert!(!Pred::Or(Box::new(f.clone()), Box::new(f.clone())).eval(&env));
        assert!(Pred::Not(Box::new(f)).eval(&env));
    }

    #[test]
    fn negated_folds() {
        assert_eq!(Pred::True.negated(), Pred::False);
        assert_eq!(Pred::False.negated(), Pred::True);
        let p = Pred::eq(Expr::x(1), Expr::c(0));
        assert_eq!(p.clone().negated(), Pred::ne(Expr::x(1), Expr::c(0)));
        assert_eq!(p.clone().negated().negated(), p);
        let conj = Pred::And(Box::new(Pred::True), Box::new(Pred::False));
        assert_eq!(conj.clone().negated(), Pred::Not(Box::new(conj)));
    }

    #[test]
    fn bitwise_ops_act_on_masks() {
        let e = bor(Expr::c(0b0110), Expr::c(0b0011));
        assert_eq!(e.eval(&env_of(&[])), 0b0111);
        let e = band(Expr::c(0b0110), Expr::c(0b0011));
        assert_eq!(e.eval(&env_of(&[])), 0b0010);
    }

    #[test]
    fn bor_all_folds_from_tail() {
        let e = bor_all([Expr::c(1), Expr::c(4)], Expr::c(8));
        assert_eq!(e.eval(&env_of(&[])), 13);
        let e = bor_all([], Expr::c(8));
        assert_eq!(e.eval(&env_of(&[])), 8);
    }

    #[test]
    fn bitwise_vars_collected() {
        let e = band(Expr::x(1), bor(Expr::r(2), Expr::c(1)));
        assert_eq!(e.vars(), vec![Var::Input(1), Var::Reg(2)]);
    }

    #[test]
    fn display_var() {
        assert_eq!(Var::Input(3).to_string(), "x3");
        assert_eq!(Var::Reg(1).to_string(), "r1");
        assert_eq!(Var::Out.to_string(), "y");
    }
}
