//! Program families and a deterministic random program generator.
//!
//! The benchmark harness sweeps over program size; the property tests in
//! `enf-surveillance` and `enf-static` quantify over *random terminating
//! programs*. Both draw from this module. Randomness comes from an
//! explicit splitmix64 state, so everything is reproducible from a seed and
//! no external RNG crate is needed here.
//!
//! Generated `while` loops are always of the counted form
//! `r := c; while r > 0 { …; r := r - 1 }` with a constant bound, so every
//! generated program terminates on every input — a precondition for
//! checking soundness exhaustively.

use crate::ast::{add, mul, sub, CmpOp, Expr, Pred, Var};
use crate::graph::Flowchart;
use crate::structured::{lower, Stmt, StructuredProgram};
use enf_core::V;

/// A deterministic splitmix64 stream.
#[derive(Clone, Debug)]
pub struct SplitMix {
    state: u64,
}

impl SplitMix {
    /// Seeds the stream.
    pub fn new(seed: u64) -> Self {
        SplitMix { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (n > 0).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Small signed constant in `-3..=3`.
    pub fn small_const(&mut self) -> V {
        self.below(7) as V - 3
    }
}

/// Configuration for the random generator.
#[derive(Clone, Copy, Debug)]
pub struct GenConfig {
    /// Number of program inputs.
    pub arity: usize,
    /// Number of registers the generator may use.
    pub regs: usize,
    /// Approximate number of statements.
    pub stmts: usize,
    /// Maximum expression depth.
    pub expr_depth: usize,
    /// Maximum constant loop bound.
    pub loop_bound: u64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            arity: 2,
            regs: 3,
            stmts: 8,
            expr_depth: 2,
            loop_bound: 3,
        }
    }
}

fn gen_var(rng: &mut SplitMix, cfg: &GenConfig, allow_out: bool) -> Var {
    let choices = cfg.arity + cfg.regs + usize::from(allow_out);
    let pick = rng.below(choices as u64) as usize;
    if pick < cfg.arity {
        Var::Input(pick + 1)
    } else if pick < cfg.arity + cfg.regs {
        Var::Reg(pick - cfg.arity + 1)
    } else {
        Var::Out
    }
}

fn gen_expr(rng: &mut SplitMix, cfg: &GenConfig, depth: usize) -> Expr {
    if depth == 0 || rng.below(3) == 0 {
        return if rng.below(2) == 0 {
            Expr::Const(rng.small_const())
        } else {
            Expr::Var(gen_var(rng, cfg, true))
        };
    }
    let a = gen_expr(rng, cfg, depth - 1);
    let b = gen_expr(rng, cfg, depth - 1);
    match rng.below(5) {
        0 => add(a, b),
        1 => sub(a, b),
        2 => mul(a, b),
        3 => Expr::Div(Box::new(a), Box::new(b)),
        _ => Expr::Mod(Box::new(a), Box::new(b)),
    }
}

fn gen_pred(rng: &mut SplitMix, cfg: &GenConfig) -> Pred {
    let ops = [
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ];
    let op = ops[rng.below(ops.len() as u64) as usize];
    Pred::cmp(
        op,
        gen_expr(rng, cfg, cfg.expr_depth.min(1)),
        gen_expr(rng, cfg, cfg.expr_depth.min(1)),
    )
}

fn gen_stmts(rng: &mut SplitMix, cfg: &GenConfig, budget: &mut usize, depth: usize) -> Vec<Stmt> {
    let mut out = Vec::new();
    while *budget > 0 {
        *budget -= 1;
        let roll = rng.below(10);
        if roll < 6 || depth >= 3 {
            out.push(Stmt::Assign(
                gen_var(rng, cfg, true),
                gen_expr(rng, cfg, cfg.expr_depth),
            ));
        } else if roll < 8 {
            let then_ = gen_stmts(rng, cfg, budget, depth + 1);
            let else_ = gen_stmts(rng, cfg, budget, depth + 1);
            out.push(Stmt::If(gen_pred(rng, cfg), then_, else_));
        } else {
            // Counted loop on a dedicated register so termination is
            // guaranteed regardless of what the body does to other state.
            let counter = Var::Reg(cfg.regs + 1 + depth);
            let bound = rng.below(cfg.loop_bound) as V + 1;
            let mut body = gen_stmts(rng, cfg, budget, depth + 1);
            body.push(Stmt::Assign(counter, sub(Expr::Var(counter), Expr::c(1))));
            out.push(Stmt::Assign(counter, Expr::c(bound)));
            out.push(Stmt::While(Pred::gt(Expr::Var(counter), Expr::c(0)), body));
        }
        // Occasional early stop for shape variety.
        if rng.below(8) == 0 {
            break;
        }
    }
    out
}

/// Generates a random *terminating* structured program from a seed.
pub fn random_structured(seed: u64, cfg: &GenConfig) -> StructuredProgram {
    let mut rng = SplitMix::new(seed);
    let mut budget = cfg.stmts;
    let mut body = gen_stmts(&mut rng, cfg, &mut budget, 0);
    // Ensure y gets a final write so programs are rarely trivially 0.
    body.push(Stmt::Assign(
        Var::Out,
        gen_expr(&mut rng, cfg, cfg.expr_depth),
    ));
    StructuredProgram::new(cfg.arity, body)
}

/// Generates and lowers a random terminating flowchart.
pub fn random_flowchart(seed: u64, cfg: &GenConfig) -> Flowchart {
    lower(&random_structured(seed, cfg)).expect("generated program must lower")
}

/// A random subset of `{1, …, arity}`.
fn gen_index_set(rng: &mut SplitMix, arity: usize) -> enf_core::IndexSet {
    enf_core::IndexSet::from_bits((rng.below(1 << arity)) << 1)
}

/// A random policy statement: a concrete `setpolicy`, a slot box
/// (`setpolicy p1` / `p2`), or a `declassify` relabel of a random
/// variable.
fn gen_policy_stmt(rng: &mut SplitMix, cfg: &GenConfig) -> Stmt {
    use crate::graph::PolicySpec;
    match rng.below(4) {
        0 => Stmt::SetPolicy(PolicySpec::Slot(rng.below(2) as usize + 1)),
        1 | 2 => Stmt::SetPolicy(PolicySpec::Concrete(gen_index_set(rng, cfg.arity))),
        _ => Stmt::Declassify(
            gen_var(rng, cfg, true),
            gen_index_set(rng, cfg.arity),
            gen_index_set(rng, cfg.arity),
        ),
    }
}

/// Generates a random terminating *dynamic-policy* program: the program
/// of [`random_structured`] with one to three random policy boxes
/// (`setpolicy allow(…)`, slot boxes, `declassify` relabels) spliced in
/// at random top-level positions. Policy boxes never touch the store, so
/// termination is unaffected.
pub fn random_policy_structured(seed: u64, cfg: &GenConfig) -> StructuredProgram {
    let mut sp = random_structured(seed, cfg);
    // A distinct stream, so the base program is the same as
    // `random_structured(seed, cfg)` with the boxes deleted.
    let mut rng = SplitMix::new(seed ^ 0xd1f7_c0de_5eed_0001);
    let boxes = rng.below(3) as usize + 1;
    for _ in 0..boxes {
        let at = rng.below(sp.body.len() as u64 + 1) as usize;
        let stmt = gen_policy_stmt(&mut rng, cfg);
        sp.body.insert(at, stmt);
    }
    sp
}

/// Generates and lowers a random terminating dynamic-policy flowchart.
pub fn random_policy_flowchart(seed: u64, cfg: &GenConfig) -> Flowchart {
    lower(&random_policy_structured(seed, cfg)).expect("generated program must lower")
}

/// A straight-line chain of `n` register increments ending in `y := r1` —
/// the scaling family for interpreter/instrumentation overhead benches.
pub fn chain(n: usize) -> Flowchart {
    let mut body = vec![Stmt::Assign(Var::Reg(1), Expr::c(0))];
    for _ in 0..n {
        body.push(Stmt::Assign(Var::Reg(1), add(Expr::r(1), Expr::c(1))));
    }
    body.push(Stmt::Assign(Var::Out, Expr::r(1)));
    lower(&StructuredProgram::new(1, body)).expect("chain lowers")
}

/// `d` sequential allowed-input diamonds followed by `y := x2` — the
/// scaling family for static-analysis benches (many decisions, many join
/// points).
pub fn diamond_chain(d: usize) -> Flowchart {
    let mut body = Vec::new();
    for i in 0..d {
        body.push(Stmt::If(
            Pred::eq(
                Expr::Mod(Box::new(Expr::x(2)), Box::new(Expr::c(i as V + 2))),
                Expr::c(0),
            ),
            vec![Stmt::Assign(Var::Reg(1), add(Expr::r(1), Expr::c(1)))],
            vec![Stmt::Assign(Var::Reg(1), add(Expr::r(1), Expr::c(2)))],
        ));
    }
    body.push(Stmt::Assign(Var::Out, Expr::r(1)));
    lower(&StructuredProgram::new(2, body)).expect("diamond chain lowers")
}

/// A counted loop executing `iters` iterations of `k` assignments — the
/// scaling family for run-time (dynamic mechanism) benches.
pub fn loop_program(iters: V, k: usize) -> Flowchart {
    let mut inner = Vec::new();
    for j in 0..k {
        inner.push(Stmt::Assign(
            Var::Reg(2 + j),
            add(Expr::Var(Var::Reg(2 + j)), Expr::c(1)),
        ));
    }
    inner.push(Stmt::Assign(Var::Reg(1), sub(Expr::r(1), Expr::c(1))));
    let body = vec![
        Stmt::Assign(Var::Reg(1), Expr::c(iters)),
        Stmt::While(Pred::gt(Expr::r(1), Expr::c(0)), inner),
        Stmt::Assign(Var::Out, Expr::Var(Var::Reg(2))),
    ];
    lower(&StructuredProgram::new(1, body)).expect("loop program lowers")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{run, ExecConfig};
    use crate::program::FlowchartProgram;
    use enf_core::{Grid, InputDomain, Program as _};

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix::new(42);
        let mut b = SplitMix::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn random_programs_lower_and_validate() {
        let cfg = GenConfig::default();
        for seed in 0..50 {
            let fc = random_flowchart(seed, &cfg);
            assert!(fc.validate().is_ok(), "seed {seed} invalid");
        }
    }

    #[test]
    fn random_programs_terminate_on_a_grid() {
        let cfg = GenConfig::default();
        let grid = Grid::hypercube(cfg.arity, -2..=2);
        for seed in 0..30 {
            let fc = random_flowchart(seed, &cfg);
            let p = FlowchartProgram::with_fuel(fc, 100_000);
            for a in grid.iter_inputs() {
                assert!(
                    p.eval(&a).value().is_some(),
                    "seed {seed} diverged on {a:?}"
                );
            }
        }
    }

    #[test]
    fn random_programs_are_reproducible() {
        let cfg = GenConfig::default();
        assert_eq!(random_structured(7, &cfg), random_structured(7, &cfg));
    }

    #[test]
    fn random_programs_vary_with_seed() {
        let cfg = GenConfig::default();
        let distinct = (0..20)
            .map(|s| random_structured(s, &cfg))
            .collect::<Vec<_>>();
        let all_same = distinct.iter().all(|p| *p == distinct[0]);
        assert!(!all_same);
    }

    #[test]
    fn chain_counts_to_n() {
        let fc = chain(17);
        let h = run(&fc, &[0], &ExecConfig::default()).unwrap_halted();
        assert_eq!(h.y, 17);
        // START + (r1 := 0) + 17 increments + (y := r1) + HALT.
        assert_eq!(h.steps, 21);
    }

    #[test]
    fn diamond_chain_runs_both_arms() {
        let fc = diamond_chain(3);
        for x2 in 0..6 {
            let h = run(&fc, &[0, x2], &ExecConfig::default()).unwrap_halted();
            assert!(h.y >= 3 && h.y <= 6, "y = {} out of range", h.y);
        }
    }

    #[test]
    fn loop_program_iterates() {
        let fc = loop_program(10, 2);
        let h = run(&fc, &[0], &ExecConfig::default()).unwrap_halted();
        assert_eq!(h.y, 10);
    }

    #[test]
    fn loop_program_steps_scale_linearly() {
        let s1 = run(&loop_program(10, 1), &[0], &ExecConfig::default())
            .unwrap_halted()
            .steps;
        let s2 = run(&loop_program(20, 1), &[0], &ExecConfig::default())
            .unwrap_halted()
            .steps;
        // Each extra iteration costs a fixed number of boxes.
        assert_eq!(
            s2 - s1,
            10 * (s1
                - run(&loop_program(0, 1), &[0], &ExecConfig::default())
                    .unwrap_halted()
                    .steps)
                / 10
        );
        assert!(s2 > s1);
    }
}
