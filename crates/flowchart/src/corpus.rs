//! The concrete programs discussed in the paper.
//!
//! The journal scan loses the flowchart figures, so each program here is a
//! reconstruction that provably exhibits the behaviour the surrounding text
//! ascribes to it; the surveillance/high-water/maximal experiments in
//! `enf-surveillance` and `enf-bench` assert those behaviours. Each
//! constructor documents the paper locus it reproduces and the policy it is
//! meant to be run under.

use crate::graph::Flowchart;
use crate::parser::parse;
use enf_core::policy::Allow;

/// A paper program bundled with the policy the paper discusses it under.
#[derive(Clone, Debug)]
pub struct PaperProgram {
    /// Short identifier (e.g. `"example8"`).
    pub name: &'static str,
    /// Where in the paper it appears.
    pub locus: &'static str,
    /// The flowchart.
    pub flowchart: Flowchart,
    /// The security policy discussed.
    pub policy: Allow,
    /// The claim the experiments check.
    pub claim: &'static str,
}

fn must(src: &str) -> Flowchart {
    parse(src).expect("corpus program failed to parse")
}

/// Section 2's timing channel: a constant function whose *running time*
/// depends on the input.
///
/// "We can, however, simply observe the running time of Q to determine
/// whether or not x = 0." Policy `allow()`: sound as a value function,
/// unsound once steps are observable. Inputs are naturals (the countdown
/// loop diverges on negatives; probe with `x1 ≥ 0`).
pub fn timing_constant() -> PaperProgram {
    PaperProgram {
        name: "timing_constant",
        locus: "Section 2, observability postulate",
        flowchart: must(
            "program(1) {
                r1 := x1;
                while r1 != 0 { r1 := r1 - 1; }
                y := 1;
            }",
        ),
        policy: Allow::none(1),
        claim: "sound for allow() when time is unobservable; unsound when observable",
    }
}

/// Section 4's surveillance-vs-high-water program.
///
/// "Mh always outputs Λ; on the other hand, Ms outputs Λ only when x2 ≠ 0.
/// Intuitively, surveillance is better here, since it allows 'forgetting'
/// while high-water mark does not." Policy `allow(2)`.
pub fn forgetting() -> PaperProgram {
    PaperProgram {
        name: "forgetting",
        locus: "Section 4, M_s vs M_h comparison",
        flowchart: must(
            "program(2) {
                y := x1;
                if x2 == 0 { y := 0; }
            }",
        ),
        policy: Allow::new(2, [2]),
        claim: "M_h always violates; M_s accepts exactly when x2 == 0",
    }
}

/// Section 4's non-maximality program: branch on the denied input, but both
/// arms assign the same allowed value.
///
/// "Once the branch on x1 is taken, the surveillance mechanism is unable to
/// detect that the assignment of y is independent of x1. Consider, however,
/// the protection mechanism Mmax = Q. … the surveillance protection
/// mechanism is not maximal." Policy `allow(2)`.
pub fn nonmaximal() -> PaperProgram {
    PaperProgram {
        name: "nonmaximal",
        locus: "Section 4, surveillance is not maximal",
        flowchart: must(
            "program(2) {
                if x1 == 0 { y := x2; } else { y := x2; }
            }",
        ),
        policy: Allow::new(2, [2]),
        claim: "M_s always violates; Q itself is sound, so M_s is not maximal",
    }
}

/// Example 7's program Q: an if-then-else on the denied input computing a
/// register the output never uses.
///
/// The paper transforms the conditional into a data-flow selection
/// ("functionally equivalent to r := f(x1)"); see [`example7_transformed`].
/// Policy `allow(2)`.
pub fn example7() -> PaperProgram {
    PaperProgram {
        name: "example7",
        locus: "Section 4, Example 7",
        flowchart: must(
            "program(2) {
                if x1 == 1 { r1 := 1; } else { r1 := 2; }
                y := 1;
            }",
        ),
        policy: Allow::new(2, [2]),
        claim: "M_s always violates (PC taint persists); the transformed program's M_s is maximal",
    }
}

/// Example 7's transformed program Q′: the branch becomes `ite`, freeing
/// the program counter of the denied test.
///
/// "Now the surveillance protection mechanism for Q′ and I = allow(2)
/// always gives the output 1; clearly it is maximal."
pub fn example7_transformed() -> PaperProgram {
    PaperProgram {
        name: "example7_transformed",
        locus: "Section 4, Example 7 (after if-then-else transform)",
        flowchart: must(
            "program(2) {
                r1 := ite(x1 == 1, 1, 2);
                y := 1;
            }",
        ),
        policy: Allow::new(2, [2]),
        claim: "M_s always accepts with output 1 — maximal",
    }
}

/// Example 8's program Q: the same transform *hurts* here.
///
/// "M outputs 1 provided x2 = 1; hence, M > M′. The danger is that since
/// one does not know which branch is to be taken one must assume the worst
/// case." Policy `allow(2)`.
pub fn example8() -> PaperProgram {
    PaperProgram {
        name: "example8",
        locus: "Section 4, Example 8",
        flowchart: must(
            "program(2) {
                if x2 == 1 { y := 1; } else { y := x1; }
            }",
        ),
        policy: Allow::new(2, [2]),
        claim: "M_s accepts iff x2 == 1; after the transform the mechanism always violates",
    }
}

/// Example 8 after the if-then-else transform: `y` is tainted by both arms
/// on every run.
pub fn example8_transformed() -> PaperProgram {
    PaperProgram {
        name: "example8_transformed",
        locus: "Section 4, Example 8 (after if-then-else transform)",
        flowchart: must(
            "program(2) {
                y := ite(x2 == 1, 1, x1);
            }",
        ),
        policy: Allow::new(2, [2]),
        claim: "always violates — strictly less complete than the untransformed M_s",
    }
}

/// Example 9's program Q: a conditional assigns a register, a common
/// trailing assignment publishes it. Policy `allow(1)`.
///
/// A path-insensitive *static* analysis must reject this program outright
/// (the register may carry x2); duplicating the trailing assignment into
/// the branches ([`example9_duplicated`]) lets the compile-time mechanism
/// reject only the offending path: "the protection mechanism need only
/// give a violation notice in case x1 ≠ 0".
pub fn example9() -> PaperProgram {
    PaperProgram {
        name: "example9",
        locus: "Section 5, Example 9",
        flowchart: must(
            "program(2) {
                if x1 == 0 { r1 := 1; } else { r1 := x2; }
                y := r1;
            }",
        ),
        policy: Allow::new(2, [1]),
        claim: "static certification rejects wholesale; after duplication it rejects only x1 != 0",
    }
}

/// Example 9 with the trailing assignment duplicated into both branches.
pub fn example9_duplicated() -> PaperProgram {
    PaperProgram {
        name: "example9_duplicated",
        locus: "Section 5, Example 9 (after duplication transform)",
        flowchart: must(
            "program(2) {
                if x1 == 0 { r1 := 1; y := r1; } else { r1 := x2; y := r1; }
            }",
        ),
        policy: Allow::new(2, [1]),
        claim: "per-path static analysis certifies the x1 == 0 path",
    }
}

/// The classic implicit-flow gadget: copy a denied bit through the program
/// counter alone.
///
/// `y := (x1 != 0)` computed without ever mentioning `x1` in an assignment
/// — the reason the surveillance mechanism must track the program counter
/// (and the reason Fenton's data-mark machine has a PC attribute).
pub fn implicit_copy() -> PaperProgram {
    PaperProgram {
        name: "implicit_copy",
        locus: "Section 3 (why C̄ is tracked); Fenton's Example 1",
        flowchart: must(
            "program(1) {
                if x1 == 0 { y := 0; } else { y := 1; }
            }",
        ),
        policy: Allow::none(1),
        claim: "surveillance must violate on every input despite y never reading x1 directly",
    }
}

/// A branch on a compile-time constant whose dead arm reads the denied
/// input: every execution takes the true arm and releases only `x2`.
///
/// Value-blind may-taint analyses (monotone *and* scoped) join the dead
/// arm's `y := x1` into the halt taint and must reject under `allow(2)`;
/// an analysis that proves `r1 == 0` always holds certifies it. This is
/// the separating witness for `Analysis::ValueRefined` in `enf-static`.
pub fn constant_guard() -> PaperProgram {
    PaperProgram {
        name: "constant_guard",
        locus: "Section 5, precision limits of value-blind certification",
        flowchart: must(
            "program(2) {
                r1 := 0;
                if r1 == 0 { y := x2; } else { y := x1; }
            }",
        ),
        policy: Allow::new(2, [2]),
        claim: "every run releases only x2; value-blind certifiers reject, value-refined certifies",
    }
}

/// The cancelling program `y := h - h`: the denied input is read but its
/// influence provably cancels within every single run.
///
/// Every one-run taint analysis — value-refined included, since `x1` is
/// not pinned to a constant — must taint `y` with `{1}` and reject under
/// `allow()`. A *relational* (self-composition) analysis proves both runs
/// of any input pair compute 0 and certifies. This is the separating
/// witness for `Analysis::Relational` in `enf-static`.
pub fn cancelling() -> PaperProgram {
    PaperProgram {
        name: "cancelling",
        locus: "Section 2, soundness as a two-run property",
        flowchart: must(
            "program(1) {
                y := x1 - x1;
            }",
        ),
        policy: Allow::none(1),
        claim: "y is identically 0; one-run taint analyses reject, relational certifies",
    }
}

/// The smallest provable leak: branch on the denied input, assign distinct
/// constants.
///
/// Unlike [`implicit_copy`] (the same gadget under `allow()`), this one is
/// stated with a second, allowed input so the refuter must search genuine
/// pairs: inputs agreeing on `x2` but differing in `x1` release 1 vs 2.
/// The bounded witness search proves the leak with a concrete pair.
pub fn two_path_leak() -> PaperProgram {
    PaperProgram {
        name: "two_path_leak",
        locus: "Section 2, unsoundness witnessed by a pair of runs",
        flowchart: must(
            "program(2) {
                if x1 > 0 { y := 1; } else { y := 2; }
            }",
        ),
        policy: Allow::new(2, [2]),
        claim: "any x2-agreeing pair straddling x1 > 0 releases different constants",
    }
}

/// A mid-run policy *upgrade*: the program copies the denied input while
/// the initial policy still forbids it, then installs `allow(1)` before any
/// release.
///
/// Every fixed-policy analysis must reject (a `setpolicy` box voids the
/// whole-run `allow(J)` assumption), yet for every schedule the released
/// value is governed by the *final* policy, which allows `x1` — the
/// separating witness for `Analysis::DynamicPolicy` in `enf-static`, and
/// the scheduled soundness oracle proves it sound exhaustively.
pub fn policy_upgrade() -> PaperProgram {
    PaperProgram {
        name: "policy_upgrade",
        locus: "Section 5 extension, dynamic policies",
        flowchart: must(
            "program(2) {
                r1 := x1;
                setpolicy allow(1);
                y := r1;
            }",
        ),
        policy: Allow::none(2),
        claim: "sound under every schedule; only the policy-schedule certifier accepts",
    }
}

/// Source of the password-check release gadget, labels included; shared
/// by [`password_release`] and [`password_release_labeled`].
const PASSWORD_RELEASE_SRC: &str = "program(2)
    labels {
        x1: secret;
        x2: unclassified;
        flow secret ~> unclassified;
    }
    {
        r1 := ite(x1 == x2, 1, 0);
        declassify(r1: 1 ~>);
        y := r1;
    }";

/// The canonical *intransitive* release: compare a secret password `x1`
/// against a public guess `x2` and publish only the one-bit verdict
/// through a sanctioned `declassify` box.
///
/// Under the transitive reduction a public observer's policy is
/// `allow(2)` and the verdict bit carries `x1`, so **every** transitive
/// analysis (surveillance, scoped, value-refined, relational) must
/// reject. The `labels` section declares a `secret ⇝ unclassified`
/// release edge; the lattice certifier checks that a `declassify` box
/// mediates every carrying path and certifies — the separating witness
/// for `Analysis::LatticeCertified` in `enf-static`. The exhaustive
/// lattice oracle agrees: `J_c` under `⇝*` contains both inputs.
pub fn password_release() -> PaperProgram {
    PaperProgram {
        name: "password_release",
        locus: "intransitive noninterference extension (Eggert et al.)",
        flowchart: must(PASSWORD_RELEASE_SRC),
        policy: Allow::new(2, [2]),
        claim: "all transitive analyses reject; the lattice certifier accepts via the sanctioned release edge",
    }
}

/// [`password_release`] with its label declarations intact.
pub fn password_release_labeled() -> crate::parser::LabeledProgram {
    crate::parser::parse_labeled(PASSWORD_RELEASE_SRC).expect("corpus program failed to parse")
}

/// Every paper program, for table-driven experiments.
pub fn all() -> Vec<PaperProgram> {
    vec![
        timing_constant(),
        forgetting(),
        nonmaximal(),
        example7(),
        example7_transformed(),
        example8(),
        example8_transformed(),
        example9(),
        example9_duplicated(),
        implicit_copy(),
        constant_guard(),
        cancelling(),
        two_path_leak(),
        policy_upgrade(),
        password_release(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{run, ExecConfig};
    use crate::program::FlowchartProgram;
    use enf_core::Program as _;

    #[test]
    fn all_corpus_programs_validate() {
        for p in all() {
            assert!(p.flowchart.validate().is_ok(), "{} invalid", p.name);
            assert_eq!(
                p.flowchart.arity(),
                enf_core::Policy::arity(&p.policy),
                "{}: policy arity mismatch",
                p.name
            );
        }
    }

    #[test]
    fn timing_constant_is_constant_in_value() {
        let p = timing_constant();
        for x in 0..6 {
            let h = run(&p.flowchart, &[x], &ExecConfig::default()).unwrap_halted();
            assert_eq!(h.y, 1);
        }
    }

    #[test]
    fn timing_constant_time_grows_with_input() {
        let p = timing_constant();
        let steps: Vec<u64> = (0..4)
            .map(|x| {
                run(&p.flowchart, &[x], &ExecConfig::default())
                    .unwrap_halted()
                    .steps
            })
            .collect();
        assert!(steps.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn forgetting_semantics() {
        let p = FlowchartProgram::new(forgetting().flowchart);
        assert_eq!(p.eval_value(&[9, 0]), 0);
        assert_eq!(p.eval_value(&[9, 5]), 9);
    }

    #[test]
    fn nonmaximal_ignores_x1() {
        let p = FlowchartProgram::new(nonmaximal().flowchart);
        for x1 in -2..=2 {
            for x2 in -2..=2 {
                assert_eq!(p.eval_value(&[x1, x2]), x2);
            }
        }
    }

    #[test]
    fn example7_pairs_are_functionally_equivalent() {
        let q = FlowchartProgram::new(example7().flowchart);
        let q2 = FlowchartProgram::new(example7_transformed().flowchart);
        for x1 in -2..=2 {
            for x2 in -2..=2 {
                assert_eq!(q.eval(&[x1, x2]), q2.eval(&[x1, x2]));
            }
        }
    }

    #[test]
    fn example8_pairs_are_functionally_equivalent() {
        let q = FlowchartProgram::new(example8().flowchart);
        let q2 = FlowchartProgram::new(example8_transformed().flowchart);
        for x1 in -2..=2 {
            for x2 in -2..=2 {
                assert_eq!(q.eval(&[x1, x2]), q2.eval(&[x1, x2]));
            }
        }
    }

    #[test]
    fn example9_pairs_are_functionally_equivalent() {
        let q = FlowchartProgram::new(example9().flowchart);
        let q2 = FlowchartProgram::new(example9_duplicated().flowchart);
        for x1 in -2..=2 {
            for x2 in -2..=2 {
                assert_eq!(q.eval(&[x1, x2]), q2.eval(&[x1, x2]));
            }
        }
    }

    #[test]
    fn implicit_copy_computes_nonzero_test() {
        let p = FlowchartProgram::new(implicit_copy().flowchart);
        assert_eq!(p.eval_value(&[0]), 0);
        assert_eq!(p.eval_value(&[7]), 1);
        assert_eq!(p.eval_value(&[-3]), 1);
    }

    #[test]
    fn constant_guard_releases_only_x2() {
        let p = FlowchartProgram::new(constant_guard().flowchart);
        for x1 in -2..=2 {
            for x2 in -2..=2 {
                assert_eq!(p.eval_value(&[x1, x2]), x2);
            }
        }
    }

    #[test]
    fn cancelling_is_identically_zero() {
        let p = FlowchartProgram::new(cancelling().flowchart);
        for x1 in -3..=3 {
            assert_eq!(p.eval_value(&[x1]), 0);
        }
    }

    #[test]
    fn two_path_leak_separates_on_x1_only() {
        let p = FlowchartProgram::new(two_path_leak().flowchart);
        for x2 in -2..=2 {
            assert_eq!(p.eval_value(&[1, x2]), 1);
            assert_eq!(p.eval_value(&[0, x2]), 2);
        }
    }

    #[test]
    fn password_release_publishes_only_the_verdict_bit() {
        let p = FlowchartProgram::new(password_release().flowchart);
        for x1 in -2..=2 {
            for x2 in -2..=2 {
                assert_eq!(p.eval_value(&[x1, x2]), (x1 == x2) as enf_core::V);
            }
        }
        let lp = password_release_labeled();
        assert_eq!(lp.classification.label(1), &enf_core::label::Level::Secret);
        assert!(!lp.flow.is_transitive());
    }

    #[test]
    fn corpus_names_are_unique() {
        let mut names: Vec<_> = all().iter().map(|p| p.name).collect();
        names.sort_unstable();
        let n = names.len();
        names.dedup();
        assert_eq!(n, names.len());
    }
}
