//! The flowchart interpreter.
//!
//! Execution follows the paper's semantics: all program variables and the
//! output variable start at 0, each input variable `x_i` starts at the
//! corresponding input value, control starts at the START box and follows
//! the graph; at a decision box "the path that corresponds to the
//! predicate's truth value is taken". The *step count* — "the number of
//! steps executed by the flowchart" — is the number of boxes executed,
//! START and HALT included, and is the paper's representative observable
//! running time.
//!
//! Flowcharts may loop forever; [`ExecConfig::fuel`] bounds the step count
//! and a run that exhausts it reports [`Outcome::OutOfFuel`]. The
//! [`crate::program`] adapters fold that case into a distinguished output
//! value so the flowchart still denotes a *total* function as the paper
//! requires.
//!
//! [`run`] is the [`crate::stepper`] engine under its trivial observer,
//! [`crate::stepper::NullMonitor`]; node-trace capture, formerly a flag
//! here, is [`crate::stepper::TraceMonitor`] via [`run_traced`] — plain
//! runs no longer pay for a trace they do not record.

use crate::ast::Var;
use crate::graph::{Flowchart, NodeId};
use crate::stepper::{NullMonitor, Pair, Stepper, TraceMonitor};
use enf_core::V;

/// Interpreter configuration.
#[derive(Clone, Copy, Debug)]
pub struct ExecConfig {
    /// Maximum number of boxes to execute before giving up.
    pub fuel: u64,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig { fuel: 1_000_000 }
    }
}

impl ExecConfig {
    /// Configuration with a specific fuel bound.
    pub fn with_fuel(fuel: u64) -> Self {
        ExecConfig { fuel }
    }
}

/// A halted run: output value and observable step count.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Halted {
    /// Value of `y` at the HALT box.
    pub y: V,
    /// Number of boxes executed, START and HALT included.
    pub steps: u64,
    /// The HALT box reached.
    pub halt: NodeId,
}

/// Result of running a flowchart.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Outcome {
    /// The run reached a HALT box.
    Halted(Halted),
    /// The fuel bound was exhausted.
    OutOfFuel,
}

impl Outcome {
    /// Unwraps a halted run.
    ///
    /// # Panics
    ///
    /// Panics if the run ran out of fuel.
    pub fn unwrap_halted(self) -> Halted {
        match self {
            Outcome::Halted(h) => h,
            Outcome::OutOfFuel => panic!("flowchart ran out of fuel"),
        }
    }

    /// The output value, if the run halted.
    pub fn value(&self) -> Option<V> {
        match self {
            Outcome::Halted(h) => Some(h.y),
            Outcome::OutOfFuel => None,
        }
    }
}

/// The observable output of a flowchart program, totalized.
///
/// `Diverged` stands for every run the fuel bound cut off; treating it as
/// one more output value keeps the program a total function.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ExecValue {
    /// Halted with this value of `y`.
    Value(V),
    /// Did not halt within the fuel bound.
    Diverged,
}

impl ExecValue {
    /// The halted value, if any.
    pub fn value(&self) -> Option<V> {
        match self {
            ExecValue::Value(v) => Some(*v),
            ExecValue::Diverged => None,
        }
    }
}

impl std::fmt::Display for ExecValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecValue::Value(v) => write!(f, "{v}"),
            ExecValue::Diverged => write!(f, "⊥"),
        }
    }
}

/// The mutable variable store of a run.
#[derive(Clone, Debug)]
pub struct Store {
    inputs: Vec<V>,
    regs: Vec<V>,
    out: V,
}

impl Store {
    /// Initializes the store per the paper: program and output variables 0,
    /// inputs from the input tuple.
    pub fn init(fc: &Flowchart, inputs: &[V]) -> Self {
        assert_eq!(
            inputs.len(),
            fc.arity(),
            "flowchart takes {} inputs, got {}",
            fc.arity(),
            inputs.len()
        );
        Store {
            inputs: inputs.to_vec(),
            regs: vec![0; fc.max_reg()],
            out: 0,
        }
    }

    /// Reads a variable.
    pub fn get(&self, var: Var) -> V {
        match var {
            Var::Input(i) => self.inputs[i - 1],
            Var::Reg(j) => self.regs.get(j - 1).copied().unwrap_or(0),
            Var::Out => self.out,
        }
    }

    /// Writes a variable.
    pub fn set(&mut self, var: Var, value: V) {
        match var {
            Var::Input(i) => self.inputs[i - 1] = value,
            Var::Reg(j) => {
                if j > self.regs.len() {
                    self.regs.resize(j, 0);
                }
                self.regs[j - 1] = value;
            }
            Var::Out => self.out = value,
        }
    }

    /// The current value of `y`.
    pub fn output(&self) -> V {
        self.out
    }
}

/// Runs a flowchart on an input tuple.
///
/// # Examples
///
/// ```
/// use enf_flowchart::parser::parse;
/// use enf_flowchart::interp::{run, ExecConfig};
///
/// let fc = parse("program(1) { y := x1 * x1; }").unwrap();
/// assert_eq!(run(&fc, &[6], &ExecConfig::default()).unwrap_halted().y, 36);
/// ```
pub fn run(fc: &Flowchart, inputs: &[V], cfg: &ExecConfig) -> Outcome {
    Stepper::new(fc)
        .with_fuel(cfg.fuel)
        .run(inputs, &mut NullMonitor)
}

/// Runs a flowchart and also records the sequence of visited nodes — one
/// entry per executed box, START and HALT included.
///
/// This replaces the old always-allocating `ExecConfig::trace` flag: trace
/// capture is now the [`TraceMonitor`] observer, paired with the plain
/// interpreter for a single pass.
pub fn run_traced(fc: &Flowchart, inputs: &[V], cfg: &ExecConfig) -> (Outcome, Vec<NodeId>) {
    Stepper::new(fc)
        .with_fuel(cfg.fuel)
        .run(inputs, &mut Pair(NullMonitor, TraceMonitor::new()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn straight_line_steps_counted() {
        // START, y := 1, HALT: 3 steps.
        let fc = parse("program(0) { y := 1; }").unwrap();
        let h = run(&fc, &[], &ExecConfig::default()).unwrap_halted();
        assert_eq!(h.y, 1);
        assert_eq!(h.steps, 3);
    }

    #[test]
    fn decision_counts_one_step() {
        // START, D, y := c, HALT: 4 steps on either path.
        let fc = parse("program(1) { if x1 == 0 { y := 1; } else { y := 2; } }").unwrap();
        let a = run(&fc, &[0], &ExecConfig::default()).unwrap_halted();
        let b = run(&fc, &[5], &ExecConfig::default()).unwrap_halted();
        assert_eq!((a.y, a.steps), (1, 4));
        assert_eq!((b.y, b.steps), (2, 4));
    }

    #[test]
    fn loop_time_depends_on_input() {
        // The paper's timing-channel program: constant value, input-
        // dependent running time.
        let fc = parse("program(1) { r1 := x1; while r1 != 0 { r1 := r1 - 1; } y := 1; }").unwrap();
        let t0 = run(&fc, &[0], &ExecConfig::default()).unwrap_halted();
        let t5 = run(&fc, &[5], &ExecConfig::default()).unwrap_halted();
        assert_eq!(t0.y, 1);
        assert_eq!(t5.y, 1);
        assert!(t5.steps > t0.steps, "time must leak the input");
        // Each iteration adds a decision and an assignment: 2 steps.
        assert_eq!(t5.steps - t0.steps, 10);
    }

    #[test]
    fn out_of_fuel_detected() {
        let fc = parse("program(0) { while true { skip; } }").unwrap();
        assert_eq!(
            run(&fc, &[], &ExecConfig::with_fuel(100)),
            Outcome::OutOfFuel
        );
    }

    #[test]
    fn trace_records_path() {
        let fc = parse("program(1) { y := x1; }").unwrap();
        let (out, trace) = run_traced(&fc, &[3], &ExecConfig::with_fuel(100));
        let h = out.unwrap_halted();
        assert_eq!(trace.len() as u64, h.steps);
        assert_eq!(trace[0], fc.start());
        assert_eq!(*trace.last().unwrap(), h.halt);
    }

    #[test]
    fn uninitialized_register_reads_zero() {
        let fc = parse("program(0) { y := r5 + 1; }").unwrap();
        assert_eq!(run(&fc, &[], &ExecConfig::default()).unwrap_halted().y, 1);
    }

    #[test]
    fn inputs_are_assignable() {
        let fc = parse("program(1) { x1 := x1 + 1; y := x1; }").unwrap();
        assert_eq!(run(&fc, &[9], &ExecConfig::default()).unwrap_halted().y, 10);
    }

    #[test]
    #[should_panic(expected = "takes 2 inputs")]
    fn wrong_arity_panics() {
        let fc = parse("program(2) { y := x1; }").unwrap();
        let _ = run(&fc, &[1], &ExecConfig::default());
    }

    #[test]
    fn outcome_helpers() {
        assert_eq!(Outcome::OutOfFuel.value(), None);
        let fc = parse("program(0) { y := 2; }").unwrap();
        assert_eq!(run(&fc, &[], &ExecConfig::default()).value(), Some(2));
    }

    #[test]
    fn exec_value_display() {
        assert_eq!(ExecValue::Value(5).to_string(), "5");
        assert_eq!(ExecValue::Diverged.to_string(), "⊥");
        assert_eq!(ExecValue::Value(5).value(), Some(5));
        assert_eq!(ExecValue::Diverged.value(), None);
    }
}
