//! Flowcharts as scheduled programs — the runtime side of dynamic
//! policies.
//!
//! [`ScheduleMonitor`] is the [`crate::stepper::Monitor`] that gives
//! `setpolicy` and `declassify` boxes their meaning under an external
//! [`Schedule`]: the active policy starts at the schedule's initial set,
//! a concrete `setpolicy allow(…)` box replaces it, a slot box
//! `setpolicy p{i}` replaces it with the schedule's binding for slot `i`
//! (`allow()` when unbound), and each `declassify` box appends
//! `(node id, current value of the variable)` to the declassification
//! trace. The store is never touched — policy boxes are pure control
//! events.
//!
//! [`FlowchartProgram`] then implements [`enf_core::ScheduledProgram`], so
//! [`enf_core::check_soundness_scheduled`] can sweep a flowchart over
//! every bounded schedule.

use crate::ast::Var;
use crate::graph::NodeId;
use crate::graph::PolicySpec;
use crate::interp::{ExecValue, Store};
use crate::program::FlowchartProgram;
use crate::stepper::{Monitor, Stepper};
use enf_core::{IndexSet, Schedule, ScheduledObs, ScheduledProgram, V};

/// Observer that resolves policy boxes against a schedule and records the
/// declassification trace.
#[derive(Clone, Debug)]
pub struct ScheduleMonitor<'s> {
    schedule: &'s Schedule,
    active: IndexSet,
    declass: Vec<(usize, V)>,
}

impl<'s> ScheduleMonitor<'s> {
    /// A monitor governed by `schedule`, starting at its initial policy.
    pub fn new(schedule: &'s Schedule) -> Self {
        ScheduleMonitor {
            schedule,
            active: schedule.initial,
            declass: Vec::new(),
        }
    }

    /// The currently active policy.
    pub fn active(&self) -> IndexSet {
        self.active
    }
}

impl Monitor for ScheduleMonitor<'_> {
    type Outcome = ScheduledObs<ExecValue>;

    fn on_setpolicy(&mut self, _step: u64, _at: NodeId, spec: PolicySpec, _store: &Store) {
        self.active = match spec {
            PolicySpec::Concrete(s) => s,
            PolicySpec::Slot(i) => self.schedule.slot(i),
        };
    }

    fn on_declassify(
        &mut self,
        _step: u64,
        at: NodeId,
        var: Var,
        _from: IndexSet,
        _to: IndexSet,
        store: &Store,
    ) {
        self.declass.push((at.0, store.get(var)));
    }

    fn on_halt(&mut self, _step: u64, _at: NodeId, store: &Store) -> Self::Outcome {
        ScheduledObs {
            out: ExecValue::Value(store.output()),
            final_policy: self.active,
            declass: std::mem::take(&mut self.declass),
        }
    }

    fn on_fuel(&mut self, _steps: u64) -> Self::Outcome {
        ScheduledObs {
            out: ExecValue::Diverged,
            final_policy: self.active,
            declass: std::mem::take(&mut self.declass),
        }
    }
}

impl ScheduledProgram for FlowchartProgram {
    type Out = ExecValue;

    fn arity(&self) -> usize {
        self.flowchart().arity()
    }

    /// The largest slot index any `setpolicy p{i}` box references, so the
    /// canonical enumeration covers every referenced slot.
    fn slot_count(&self) -> usize {
        self.flowchart().policy_slots().last().copied().unwrap_or(0)
    }

    fn eval_scheduled(&self, input: &[V], schedule: &Schedule) -> ScheduledObs<ExecValue> {
        let mut monitor = ScheduleMonitor::new(schedule);
        Stepper::new(self.flowchart())
            .with_fuel(self.fuel())
            .run(input, &mut monitor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use enf_core::{
        check_soundness, check_soundness_scheduled, validate_scheduled_witness, Allow, EvalConfig,
        Grid, Identity, ScheduledReport,
    };

    fn scheduled(src: &str, initial: &Allow, grid: &Grid) -> ScheduledReport<ExecValue> {
        let p = FlowchartProgram::new(parse(src).unwrap());
        check_soundness_scheduled(&p, initial, grid, &EvalConfig::default(), None)
    }

    #[test]
    fn fixed_policy_program_matches_classic_checker() {
        let src = "program(2) { y := x1; }";
        let grid = Grid::hypercube(2, 0..=2);
        for policy in [Allow::none(2), Allow::new(2, [1]), Allow::new(2, [2])] {
            let p = FlowchartProgram::new(parse(src).unwrap());
            let classic = check_soundness(&Identity::new(p.clone()), &policy, &grid, false);
            let sched = scheduled(src, &policy, &grid);
            assert_eq!(classic.is_sound(), sched.is_sound(), "policy {policy:?}");
        }
    }

    #[test]
    fn mid_run_setpolicy_retroactively_governs_the_output() {
        // The captured value of x1 is released at HALT under the *final*
        // policy allow(1) — sound even though the initial policy is
        // allow(): release-at-HALT semantics.
        let report = scheduled(
            "program(2) { r1 := x1; setpolicy allow(1); y := r1; }",
            &Allow::none(2),
            &Grid::hypercube(2, 0..=2),
        );
        assert!(report.is_sound(), "{report:?}");
    }

    #[test]
    fn tightening_policy_mid_run_flags_the_leak() {
        // Policy drops to allow() before HALT: releasing x1 there leaks.
        let report = scheduled(
            "program(1) { setpolicy allow(); y := x1; }",
            &Allow::all(1),
            &Grid::hypercube(1, 0..=2),
        );
        let w = report.witness().expect("drop to allow() must leak x1");
        assert_eq!(w.final_policy, IndexSet::EMPTY);
        let p = FlowchartProgram::new(parse("program(1) { setpolicy allow(); y := x1; }").unwrap());
        assert!(validate_scheduled_witness(&p, w));
    }

    #[test]
    fn slot_program_swept_over_all_bindings() {
        // Sound only if y respects whatever the schedule binds: y := x1
        // leaks under the binding p1 = allow().
        let leaky = scheduled(
            "program(1) { setpolicy p1; y := x1; }",
            &Allow::all(1),
            &Grid::hypercube(1, 0..=2),
        );
        let w = leaky.witness().expect("p1 = allow() must leak");
        assert_eq!(w.schedule_index, 0);
        assert_eq!(w.schedule.slot(1), IndexSet::EMPTY);

        // A constant program is sound under every binding.
        let sound = scheduled(
            "program(1) { setpolicy p1; y := 0; }",
            &Allow::all(1),
            &Grid::hypercube(1, 0..=2),
        );
        assert_eq!(
            sound,
            ScheduledReport::Sound {
                schedules: 2,
                inputs: 3
            }
        );
    }

    #[test]
    fn declassify_sanctions_the_released_value() {
        // Releasing x1 is unsound under allow()… unless a declassify box
        // puts its value on the record first.
        let covered = scheduled(
            "program(1) { r1 := x1; declassify(r1: 1 ~>); y := r1; }",
            &Allow::none(1),
            &Grid::hypercube(1, 0..=2),
        );
        assert!(covered.is_sound(), "{covered:?}");

        // Declassifying a *different* value does not cover the output.
        let uncovered = scheduled(
            "program(1) { r1 := x1 / 2; declassify(r1: 1 ~>); y := x1; }",
            &Allow::none(1),
            &Grid::hypercube(1, 0..=3),
        );
        let w = uncovered.witness().expect("x1/2 does not determine x1");
        assert_eq!((w.a.as_slice(), w.b.as_slice()), (&[0][..], &[1][..]));
    }

    #[test]
    fn divergence_is_observable_per_schedule() {
        // Diverges iff x1 != 0, and divergence is an output value: leaks
        // x1 != 0 under allow().
        let p = FlowchartProgram::with_fuel(
            parse("program(1) { while x1 != 0 { skip; } y := 0; }").unwrap(),
            50,
        );
        let report = check_soundness_scheduled(
            &p,
            &Allow::none(1),
            &Grid::hypercube(1, 0..=2),
            &EvalConfig::default(),
            None,
        );
        let w = report.witness().expect("divergence leaks x1 != 0");
        assert_eq!(w.out_a, ExecValue::Value(0));
        assert_eq!(w.out_b, ExecValue::Diverged);
    }

    #[test]
    fn witnesses_stable_across_thread_counts() {
        let src = "program(2) { setpolicy p1; y := x1 + x2; }";
        let grid = Grid::hypercube(2, 0..=2);
        let p = FlowchartProgram::new(parse(src).unwrap());
        let baseline = check_soundness_scheduled(
            &p,
            &Allow::all(2),
            &grid,
            &EvalConfig::with_threads(1),
            None,
        );
        for threads in [2, 3, 8] {
            let cfg = EvalConfig::with_threads(threads).seq_threshold(0);
            let report = check_soundness_scheduled(&p, &Allow::all(2), &grid, &cfg, None);
            assert_eq!(report, baseline, "threads={threads}");
        }
    }
}
