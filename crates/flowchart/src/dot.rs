//! Graphviz (DOT) export of flowcharts.
//!
//! Decision boxes render as diamonds, assignments as rectangles, START and
//! HALT as ovals; decision edges are labeled `T`/`F`. Useful for inspecting
//! the instrumented mechanisms `enf-surveillance` produces.

use crate::graph::{Flowchart, Node, Succ};
use crate::pretty::{expr_to_string, pred_to_string};
use std::fmt::Write as _;

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders the flowchart as a DOT digraph.
pub fn to_dot(fc: &Flowchart, name: &str) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "digraph \"{}\" {{", escape(name));
    let _ = writeln!(s, "  node [fontname=\"monospace\"];");
    for (id, node, _) in fc.iter() {
        let (label, shape) = match node {
            Node::Start => ("START".to_string(), "oval"),
            Node::Assign { var, expr } => (format!("{var} := {}", expr_to_string(expr)), "box"),
            Node::Decision { pred } => (pred_to_string(pred), "diamond"),
            Node::Halt => ("HALT".to_string(), "oval"),
        };
        let _ = writeln!(
            s,
            "  {} [label=\"{}\", shape={}];",
            id.0,
            escape(&label),
            shape
        );
    }
    for (id, _, succ) in fc.iter() {
        match succ {
            Succ::None => {}
            Succ::One(n) => {
                let _ = writeln!(s, "  {} -> {};", id.0, n.0);
            }
            Succ::Cond { then_, else_ } => {
                let _ = writeln!(s, "  {} -> {} [label=\"T\"];", id.0, then_.0);
                let _ = writeln!(s, "  {} -> {} [label=\"F\"];", id.0, else_.0);
            }
        }
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn dot_contains_every_node_and_edge() {
        let fc = parse("program(1) { if x1 == 0 { y := 1; } else { y := 2; } }").unwrap();
        let dot = to_dot(&fc, "demo");
        assert!(dot.starts_with("digraph \"demo\""));
        for (id, _, _) in fc.iter() {
            assert!(dot.contains(&format!("  {} [", id.0)));
        }
        assert!(dot.contains("[label=\"T\"]"));
        assert!(dot.contains("[label=\"F\"]"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn labels_are_escaped() {
        // Quotes cannot occur in our AST printing, but the escape helper
        // must still be correct for names.
        let fc = parse("program(0) { y := 1; }").unwrap();
        let dot = to_dot(&fc, "a \"quoted\" name");
        assert!(dot.contains("a \\\"quoted\\\" name"));
    }

    #[test]
    fn decision_shape_is_diamond() {
        let fc = parse("program(1) { if x1 == 0 { y := 1; } }").unwrap();
        let dot = to_dot(&fc, "d");
        assert!(dot.contains("shape=diamond"));
        assert!(dot.contains("shape=box"));
        assert!(dot.contains("shape=oval"));
    }
}
