//! Graphviz (DOT) export of flowcharts.
//!
//! Decision boxes render as diamonds, assignments as rectangles, START and
//! HALT as ovals; decision edges are labeled `T`/`F`. Useful for inspecting
//! the instrumented mechanisms `enf-surveillance` produces.

use crate::graph::{Flowchart, Node, Succ};
use crate::pretty::{expr_to_string, pred_to_string};
use std::fmt::Write as _;

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Per-node visual decoration for [`to_dot_decorated`].
#[derive(Clone, Default, Debug)]
pub struct NodeDecor {
    /// Extra label line rendered under the node's own label (e.g. its
    /// fixed-point taint facts).
    pub annotation: Option<String>,
    /// Render the node dimmed — gray and dashed — e.g. for nodes the value
    /// analysis proves unreachable.
    pub dimmed: bool,
}

/// Renders the flowchart as a DOT digraph.
pub fn to_dot(fc: &Flowchart, name: &str) -> String {
    to_dot_decorated(fc, name, &[])
}

/// Renders the flowchart as a DOT digraph with per-node decorations
/// (indexed by node id; missing entries mean "no decoration").
pub fn to_dot_decorated(fc: &Flowchart, name: &str, decor: &[NodeDecor]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "digraph \"{}\" {{", escape(name));
    let _ = writeln!(s, "  node [fontname=\"monospace\"];");
    let none = NodeDecor::default();
    for (id, node, _) in fc.iter() {
        let (label, shape) = match node {
            Node::Start => ("START".to_string(), "oval"),
            Node::Assign { var, expr } => (format!("{var} := {}", expr_to_string(expr)), "box"),
            Node::Decision { pred } => (pred_to_string(pred), "diamond"),
            Node::SetPolicy { spec } => (format!("setpolicy {spec}"), "house"),
            Node::Declassify { var, from, to } => {
                (crate::pretty::declassify_to_string(*var, from, to), "house")
            }
            Node::Halt => ("HALT".to_string(), "oval"),
        };
        let d = decor.get(id.0).unwrap_or(&none);
        let mut label = escape(&label);
        if let Some(ann) = &d.annotation {
            label.push_str("\\n");
            label.push_str(&escape(ann));
        }
        let extra = if d.dimmed {
            ", style=dashed, color=gray, fontcolor=gray"
        } else {
            ""
        };
        let _ = writeln!(
            s,
            "  {} [label=\"{}\", shape={}{}];",
            id.0, label, shape, extra
        );
    }
    for (id, _, succ) in fc.iter() {
        match succ {
            Succ::None => {}
            Succ::One(n) => {
                let _ = writeln!(s, "  {} -> {};", id.0, n.0);
            }
            Succ::Cond { then_, else_ } => {
                let _ = writeln!(s, "  {} -> {} [label=\"T\"];", id.0, then_.0);
                let _ = writeln!(s, "  {} -> {} [label=\"F\"];", id.0, else_.0);
            }
        }
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn dot_contains_every_node_and_edge() {
        let fc = parse("program(1) { if x1 == 0 { y := 1; } else { y := 2; } }").unwrap();
        let dot = to_dot(&fc, "demo");
        assert!(dot.starts_with("digraph \"demo\""));
        for (id, _, _) in fc.iter() {
            assert!(dot.contains(&format!("  {} [", id.0)));
        }
        assert!(dot.contains("[label=\"T\"]"));
        assert!(dot.contains("[label=\"F\"]"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn labels_are_escaped() {
        // Quotes cannot occur in our AST printing, but the escape helper
        // must still be correct for names.
        let fc = parse("program(0) { y := 1; }").unwrap();
        let dot = to_dot(&fc, "a \"quoted\" name");
        assert!(dot.contains("a \\\"quoted\\\" name"));
    }

    #[test]
    fn decorations_annotate_and_dim() {
        let fc = parse("program(1) { y := x1; }").unwrap();
        let mut decor = vec![NodeDecor::default(); fc.len()];
        decor[1].annotation = Some("taint {1}".to_string());
        decor[2].dimmed = true;
        let dot = to_dot_decorated(&fc, "d", &decor);
        assert!(dot.contains("\\ntaint {1}"), "{dot}");
        assert!(dot.contains("style=dashed, color=gray"), "{dot}");
        // Undecorated export is unchanged by the delegation.
        assert!(!to_dot(&fc, "d").contains("dashed"));
    }

    #[test]
    fn decision_shape_is_diamond() {
        let fc = parse("program(1) { if x1 == 0 { y := 1; } }").unwrap();
        let dot = to_dot(&fc, "d");
        assert!(dot.contains("shape=diamond"));
        assert!(dot.contains("shape=box"));
        assert!(dot.contains("shape=oval"));
    }
}
