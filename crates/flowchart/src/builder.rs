//! Low-level graph builder for flowcharts.
//!
//! The structured lowering can only produce reducible graphs; the paper's
//! definition allows arbitrary connected graphs. [`Builder`] constructs
//! flowcharts node by node with explicit edges — used by the
//! instrumentation in `enf-surveillance` (which splices checking boxes into
//! an existing graph) and by tests needing irreducible shapes.

use crate::ast::{Expr, Pred, Var};
use crate::graph::{Flowchart, GraphError, Node, NodeId, Succ};

/// An incremental flowchart builder.
///
/// # Examples
///
/// ```
/// use enf_flowchart::builder::Builder;
/// use enf_flowchart::ast::{Expr, Var};
///
/// let mut b = Builder::new(1);
/// let a = b.assign(Var::Out, Expr::x(1));
/// let h = b.halt();
/// b.wire_start(a);
/// b.wire(a, h);
/// let fc = b.finish().unwrap();
/// assert_eq!(fc.len(), 3);
/// ```
#[derive(Clone, Debug)]
pub struct Builder {
    arity: usize,
    nodes: Vec<Node>,
    succs: Vec<Succ>,
}

impl Builder {
    /// Starts a builder for a `k`-input flowchart; node 0 is START.
    pub fn new(arity: usize) -> Self {
        Builder {
            arity,
            nodes: vec![Node::Start],
            succs: vec![Succ::One(NodeId(0))],
        }
    }

    /// Number of nodes so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether only the START node exists.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Adds an assignment box `var := expr` (edges wired later).
    pub fn assign(&mut self, var: Var, expr: Expr) -> NodeId {
        self.push(Node::Assign { var, expr })
    }

    /// Adds a decision box on `pred` (edges wired later).
    pub fn decision(&mut self, pred: Pred) -> NodeId {
        self.push(Node::Decision { pred })
    }

    /// Adds a HALT box.
    pub fn halt(&mut self) -> NodeId {
        self.push(Node::Halt)
    }

    fn push(&mut self, node: Node) -> NodeId {
        let id = NodeId(self.nodes.len());
        let succ = match node {
            Node::Halt => Succ::None,
            Node::Decision { .. } => Succ::Cond {
                then_: id,
                else_: id,
            },
            _ => Succ::One(id),
        };
        self.nodes.push(node);
        self.succs.push(succ);
        id
    }

    /// Wires START's successor.
    pub fn wire_start(&mut self, to: NodeId) {
        self.succs[0] = Succ::One(to);
    }

    /// Wires a single-successor node (START or assignment).
    ///
    /// # Panics
    ///
    /// Panics if `from` is a decision or HALT box.
    pub fn wire(&mut self, from: NodeId, to: NodeId) {
        match self.nodes[from.0] {
            Node::Start | Node::Assign { .. } => self.succs[from.0] = Succ::One(to),
            _ => panic!("node {from} does not take a single successor"),
        }
    }

    /// Wires both arms of a decision box.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not a decision box.
    pub fn wire_cond(&mut self, from: NodeId, then_: NodeId, else_: NodeId) {
        match self.nodes[from.0] {
            Node::Decision { .. } => self.succs[from.0] = Succ::Cond { then_, else_ },
            _ => panic!("node {from} is not a decision box"),
        }
    }

    /// Validates and returns the flowchart.
    pub fn finish(self) -> Result<Flowchart, GraphError> {
        Flowchart::new(self.arity, self.nodes, self.succs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{run, ExecConfig};

    #[test]
    fn build_and_run_diamond() {
        let mut b = Builder::new(1);
        let d = b.decision(Pred::eq(Expr::x(1), Expr::c(0)));
        let a1 = b.assign(Var::Out, Expr::c(10));
        let a2 = b.assign(Var::Out, Expr::c(20));
        let h = b.halt();
        b.wire_start(d);
        b.wire_cond(d, a1, a2);
        b.wire(a1, h);
        b.wire(a2, h);
        let fc = b.finish().unwrap();
        assert_eq!(run(&fc, &[0], &ExecConfig::default()).unwrap_halted().y, 10);
        assert_eq!(run(&fc, &[1], &ExecConfig::default()).unwrap_halted().y, 20);
    }

    #[test]
    fn build_irreducible_graph() {
        // Two decisions jumping into the middle of each other's "loop" —
        // not expressible with structured if/while, fine for the builder.
        let mut b = Builder::new(2);
        let d1 = b.decision(Pred::eq(Expr::x(1), Expr::c(0)));
        let d2 = b.decision(Pred::eq(Expr::x(2), Expr::c(0)));
        let a1 = b.assign(Var::Out, crate::ast::add(Expr::y(), Expr::c(1)));
        let a2 = b.assign(Var::Out, crate::ast::add(Expr::y(), Expr::c(5)));
        let h = b.halt();
        b.wire_start(d1);
        b.wire_cond(d1, a1, a2);
        b.wire(a1, d2);
        b.wire_cond(d2, a2, h);
        b.wire(a2, h);
        let fc = b.finish().unwrap();
        // x1=0, x2=0: a1 then a2 -> 6. x1=0, x2=1: a1 then halt -> 1.
        assert_eq!(
            run(&fc, &[0, 0], &ExecConfig::default()).unwrap_halted().y,
            6
        );
        assert_eq!(
            run(&fc, &[0, 1], &ExecConfig::default()).unwrap_halted().y,
            1
        );
        assert_eq!(
            run(&fc, &[1, 0], &ExecConfig::default()).unwrap_halted().y,
            5
        );
    }

    #[test]
    fn unwired_decision_self_loops_and_fails_reachable_halt() {
        let mut b = Builder::new(0);
        let d = b.decision(Pred::True);
        b.wire_start(d);
        b.halt(); // never wired from anywhere on the true path
        let err = b.finish().unwrap_err();
        assert_eq!(err, GraphError::NoReachableHalt);
    }

    #[test]
    #[should_panic(expected = "does not take a single successor")]
    fn wire_rejects_decision() {
        let mut b = Builder::new(0);
        let d = b.decision(Pred::True);
        let h = b.halt();
        b.wire(d, h);
    }

    #[test]
    #[should_panic(expected = "is not a decision box")]
    fn wire_cond_rejects_assignment() {
        let mut b = Builder::new(0);
        let a = b.assign(Var::Out, Expr::c(0));
        let h = b.halt();
        b.wire_cond(a, h, h);
    }

    #[test]
    fn empty_builder_reports() {
        let b = Builder::new(0);
        assert!(b.is_empty());
        assert_eq!(b.len(), 1);
    }
}
