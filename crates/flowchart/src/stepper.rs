//! The one small-step engine every executor shares.
//!
//! The paper's mechanisms are all *the same interpreter with different
//! observers bolted on*: plain interpretation, surveillance and high-water
//! taint tracking, timed per-decision checks, violation explanations — each
//! walks the flowchart the same way and differs only in what it watches and
//! when it vetoes. [`Stepper`] owns that walk exactly once — node dispatch,
//! store update, fuel accounting and successor selection — and a [`Monitor`]
//! plugs in the observer: hooks for every box kind, an abort verdict at
//! decisions, a release verdict at HALT, and an associated outcome type.
//!
//! Combinators compose observers without a second pass over the program:
//! [`Pair`] runs two monitors in lockstep (e.g. taint tracking plus a
//! structured event stream — the basis of the one-pass `explain`), [`Fleet`]
//! runs any number of homogeneous monitors (e.g. one taint monitor per MLS
//! clearance).
//!
//! # Hook contract
//!
//! For each executed box the stepper calls, in order:
//!
//! 1. fuel check — if the bound is hit, [`Monitor::on_fuel`] produces the
//!    outcome and the run ends;
//! 2. [`Monitor::on_step`] with the 1-based step count and the node;
//! 3. the node-specific hook:
//!    * assignment: [`Monitor::on_assign`] *before* the store update, so the
//!      monitor can read the pre-state;
//!    * decision: [`Monitor::on_decision`] *before* the predicate is
//!      evaluated — returning `Some(outcome)` aborts the run right there
//!      (the Theorem 3′ veto: a disallowed test must not influence control,
//!      not even by being taken); if the run continues,
//!      [`Monitor::on_branch`] reports which way it went;
//!    * HALT: [`Monitor::on_halt`] produces the outcome (the release
//!      verdict lives in the monitor — the stepper never inspects it).
//!
//! [`Monitor::on_interrupt`] fires only under a combinator, when a
//! co-monitor aborted the shared run: the monitor must account for a run
//! that ended before any of *its* checks fired. The default maps this to
//! [`Monitor::on_fuel`], which has exactly that meaning.

use crate::ast::{Expr, Pred, Var};
use crate::graph::{Flowchart, Node, NodeId, PolicySpec, Succ};
use crate::interp::Store;
use enf_core::{IndexSet, V};

/// An observer plugged into the [`Stepper`].
///
/// All hooks default to no-ops except the two that must produce an outcome
/// ([`Monitor::on_halt`], [`Monitor::on_fuel`]); implement only what the
/// discipline needs.
pub trait Monitor {
    /// What a finished run yields.
    type Outcome;

    /// Called once per executed box, after the fuel check and before
    /// dispatch. `step` is 1-based and counts every box, START and HALT
    /// included — the paper's observable running time.
    fn on_step(&mut self, step: u64, at: NodeId, node: &Node) {
        let _ = (step, at, node);
    }

    /// Called at an assignment box *before* the store is updated, so the
    /// monitor sees the pre-assignment state.
    fn on_assign(&mut self, step: u64, at: NodeId, var: Var, expr: &Expr, store: &Store) {
        let _ = (step, at, var, expr, store);
    }

    /// Called at a decision box *before* the predicate is evaluated.
    /// Returning `Some(outcome)` aborts the run at this box.
    fn on_decision(
        &mut self,
        step: u64,
        at: NodeId,
        pred: &Pred,
        store: &Store,
    ) -> Option<Self::Outcome> {
        let _ = (step, at, pred, store);
        None
    }

    /// Called after a decision's predicate was evaluated and the branch
    /// selected (only if no monitor aborted).
    fn on_branch(&mut self, step: u64, at: NodeId, pred: &Pred, taken: bool) {
        let _ = (step, at, pred, taken);
    }

    /// Called at a `setpolicy` box: the active policy becomes `spec`
    /// (resolved against the governing schedule by the monitor).
    fn on_setpolicy(&mut self, step: u64, at: NodeId, spec: PolicySpec, store: &Store) {
        let _ = (step, at, spec, store);
    }

    /// Called at a `declassify` box: the monitor may relabel `var`'s
    /// taint `t ↦ (t \ from) ∪ to`. The store is never modified.
    fn on_declassify(
        &mut self,
        step: u64,
        at: NodeId,
        var: Var,
        from: IndexSet,
        to: IndexSet,
        store: &Store,
    ) {
        let _ = (step, at, var, from, to, store);
    }

    /// Called at a HALT box; produces the run's outcome. The release
    /// verdict — output or notice — is the monitor's to make.
    fn on_halt(&mut self, step: u64, at: NodeId, store: &Store) -> Self::Outcome;

    /// Called when the fuel bound cut the run off after `steps` boxes.
    fn on_fuel(&mut self, steps: u64) -> Self::Outcome;

    /// Called when a co-monitor (under [`Pair`] or [`Fleet`]) aborted the
    /// shared run at a decision this monitor would have passed. Defaults to
    /// [`Monitor::on_fuel`]: from this monitor's view the run simply ended
    /// before any of its checks fired.
    fn on_interrupt(&mut self, step: u64, at: NodeId, store: &Store) -> Self::Outcome {
        let _ = (at, store);
        self.on_fuel(step)
    }
}

/// The small-step engine: one flowchart, one fuel bound, any monitor.
#[derive(Clone, Copy, Debug)]
pub struct Stepper<'fc> {
    fc: &'fc Flowchart,
    fuel: u64,
}

impl<'fc> Stepper<'fc> {
    /// An engine over `fc` with the default fuel bound.
    pub fn new(fc: &'fc Flowchart) -> Self {
        Stepper {
            fc,
            fuel: crate::interp::ExecConfig::default().fuel,
        }
    }

    /// Replaces the fuel bound.
    #[must_use]
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = fuel;
        self
    }

    /// Runs the flowchart on `inputs`, reporting every step to `monitor`,
    /// and returns the monitor's outcome.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` does not match the flowchart's arity.
    pub fn run<M: Monitor>(&self, inputs: &[V], monitor: &mut M) -> M::Outcome {
        let mut store = Store::init(self.fc, inputs);
        let mut at = self.fc.start();
        let mut steps: u64 = 0;
        loop {
            if steps >= self.fuel {
                return monitor.on_fuel(steps);
            }
            steps += 1;
            let node = self.fc.node(at);
            monitor.on_step(steps, at, node);
            match node {
                Node::Start => {
                    at = match self.fc.succ(at) {
                        Succ::One(n) => n,
                        _ => unreachable!("validated START has one successor"),
                    };
                }
                Node::Assign { var, expr } => {
                    monitor.on_assign(steps, at, *var, expr, &store);
                    let v = expr.eval(&|w| store.get(w));
                    store.set(*var, v);
                    at = match self.fc.succ(at) {
                        Succ::One(n) => n,
                        _ => unreachable!("validated assignment has one successor"),
                    };
                }
                Node::Decision { pred } => {
                    if let Some(out) = monitor.on_decision(steps, at, pred, &store) {
                        return out;
                    }
                    let taken = pred.eval(&|w| store.get(w));
                    monitor.on_branch(steps, at, pred, taken);
                    at = match self.fc.succ(at) {
                        Succ::Cond { then_, else_ } => {
                            if taken {
                                then_
                            } else {
                                else_
                            }
                        }
                        _ => unreachable!("validated decision has two successors"),
                    };
                }
                Node::SetPolicy { spec } => {
                    monitor.on_setpolicy(steps, at, *spec, &store);
                    at = match self.fc.succ(at) {
                        Succ::One(n) => n,
                        _ => unreachable!("validated setpolicy has one successor"),
                    };
                }
                Node::Declassify { var, from, to } => {
                    monitor.on_declassify(steps, at, *var, *from, *to, &store);
                    at = match self.fc.succ(at) {
                        Succ::One(n) => n,
                        _ => unreachable!("validated declassify has one successor"),
                    };
                }
                Node::Halt => {
                    return monitor.on_halt(steps, at, &store);
                }
            }
        }
    }
}

/// The trivial observer: plain interpretation.
///
/// [`crate::interp::run`] is the stepper with this monitor.
#[derive(Clone, Copy, Default, Debug)]
pub struct NullMonitor;

impl Monitor for NullMonitor {
    type Outcome = crate::interp::Outcome;

    fn on_halt(&mut self, step: u64, at: NodeId, store: &Store) -> Self::Outcome {
        crate::interp::Outcome::Halted(crate::interp::Halted {
            y: store.output(),
            steps: step,
            halt: at,
        })
    }

    fn on_fuel(&mut self, _steps: u64) -> Self::Outcome {
        crate::interp::Outcome::OutOfFuel
    }
}

/// Records the sequence of visited nodes (the old `ExecConfig::trace`,
/// now pay-for-what-you-use).
#[derive(Clone, Default, Debug)]
pub struct TraceMonitor {
    visited: Vec<NodeId>,
}

impl TraceMonitor {
    /// An empty trace recorder.
    pub fn new() -> Self {
        TraceMonitor::default()
    }
}

impl Monitor for TraceMonitor {
    type Outcome = Vec<NodeId>;

    fn on_step(&mut self, _step: u64, at: NodeId, _node: &Node) {
        self.visited.push(at);
    }

    fn on_halt(&mut self, _step: u64, _at: NodeId, _store: &Store) -> Self::Outcome {
        std::mem::take(&mut self.visited)
    }

    fn on_fuel(&mut self, _steps: u64) -> Self::Outcome {
        std::mem::take(&mut self.visited)
    }
}

/// Runs two monitors over one pass; the outcome is the pair of outcomes.
///
/// Hooks are delivered to both members, left first. If exactly one member
/// aborts at a decision, the other is finalized via
/// [`Monitor::on_interrupt`] — its verdict for a run cut short by someone
/// else's veto.
#[derive(Clone, Debug)]
pub struct Pair<A, B>(pub A, pub B);

impl<A: Monitor, B: Monitor> Monitor for Pair<A, B> {
    type Outcome = (A::Outcome, B::Outcome);

    fn on_step(&mut self, step: u64, at: NodeId, node: &Node) {
        self.0.on_step(step, at, node);
        self.1.on_step(step, at, node);
    }

    fn on_assign(&mut self, step: u64, at: NodeId, var: Var, expr: &Expr, store: &Store) {
        self.0.on_assign(step, at, var, expr, store);
        self.1.on_assign(step, at, var, expr, store);
    }

    fn on_decision(
        &mut self,
        step: u64,
        at: NodeId,
        pred: &Pred,
        store: &Store,
    ) -> Option<Self::Outcome> {
        // Both members observe the decision before any abort takes effect,
        // mirroring the single-monitor order (state update, then verdict).
        let a = self.0.on_decision(step, at, pred, store);
        let b = self.1.on_decision(step, at, pred, store);
        match (a, b) {
            (None, None) => None,
            (Some(a), None) => Some((a, self.1.on_interrupt(step, at, store))),
            (None, Some(b)) => Some((self.0.on_interrupt(step, at, store), b)),
            (Some(a), Some(b)) => Some((a, b)),
        }
    }

    fn on_branch(&mut self, step: u64, at: NodeId, pred: &Pred, taken: bool) {
        self.0.on_branch(step, at, pred, taken);
        self.1.on_branch(step, at, pred, taken);
    }

    fn on_setpolicy(&mut self, step: u64, at: NodeId, spec: PolicySpec, store: &Store) {
        self.0.on_setpolicy(step, at, spec, store);
        self.1.on_setpolicy(step, at, spec, store);
    }

    fn on_declassify(
        &mut self,
        step: u64,
        at: NodeId,
        var: Var,
        from: IndexSet,
        to: IndexSet,
        store: &Store,
    ) {
        self.0.on_declassify(step, at, var, from, to, store);
        self.1.on_declassify(step, at, var, from, to, store);
    }

    fn on_halt(&mut self, step: u64, at: NodeId, store: &Store) -> Self::Outcome {
        (
            self.0.on_halt(step, at, store),
            self.1.on_halt(step, at, store),
        )
    }

    fn on_fuel(&mut self, steps: u64) -> Self::Outcome {
        (self.0.on_fuel(steps), self.1.on_fuel(steps))
    }

    fn on_interrupt(&mut self, step: u64, at: NodeId, store: &Store) -> Self::Outcome {
        (
            self.0.on_interrupt(step, at, store),
            self.1.on_interrupt(step, at, store),
        )
    }
}

/// Runs any number of homogeneous monitors over one pass (e.g. one taint
/// monitor per MLS clearance); the outcome is the vector of outcomes.
///
/// If any member aborts at a decision the shared run ends there: aborting
/// members yield their own outcome, the rest are finalized via
/// [`Monitor::on_interrupt`]. With HALT-only disciplines no member aborts
/// and every outcome is that member's genuine verdict.
#[derive(Clone, Default, Debug)]
pub struct Fleet<M>(pub Vec<M>);

impl<M: Monitor> Monitor for Fleet<M> {
    type Outcome = Vec<M::Outcome>;

    fn on_step(&mut self, step: u64, at: NodeId, node: &Node) {
        for m in &mut self.0 {
            m.on_step(step, at, node);
        }
    }

    fn on_assign(&mut self, step: u64, at: NodeId, var: Var, expr: &Expr, store: &Store) {
        for m in &mut self.0 {
            m.on_assign(step, at, var, expr, store);
        }
    }

    fn on_decision(
        &mut self,
        step: u64,
        at: NodeId,
        pred: &Pred,
        store: &Store,
    ) -> Option<Self::Outcome> {
        let verdicts: Vec<Option<M::Outcome>> = self
            .0
            .iter_mut()
            .map(|m| m.on_decision(step, at, pred, store))
            .collect();
        if verdicts.iter().all(Option::is_none) {
            return None;
        }
        Some(
            verdicts
                .into_iter()
                .zip(&mut self.0)
                .map(|(v, m)| v.unwrap_or_else(|| m.on_interrupt(step, at, store)))
                .collect(),
        )
    }

    fn on_branch(&mut self, step: u64, at: NodeId, pred: &Pred, taken: bool) {
        for m in &mut self.0 {
            m.on_branch(step, at, pred, taken);
        }
    }

    fn on_setpolicy(&mut self, step: u64, at: NodeId, spec: PolicySpec, store: &Store) {
        for m in &mut self.0 {
            m.on_setpolicy(step, at, spec, store);
        }
    }

    fn on_declassify(
        &mut self,
        step: u64,
        at: NodeId,
        var: Var,
        from: IndexSet,
        to: IndexSet,
        store: &Store,
    ) {
        for m in &mut self.0 {
            m.on_declassify(step, at, var, from, to, store);
        }
    }

    fn on_halt(&mut self, step: u64, at: NodeId, store: &Store) -> Self::Outcome {
        self.0
            .iter_mut()
            .map(|m| m.on_halt(step, at, store))
            .collect()
    }

    fn on_fuel(&mut self, steps: u64) -> Self::Outcome {
        self.0.iter_mut().map(|m| m.on_fuel(steps)).collect()
    }

    fn on_interrupt(&mut self, step: u64, at: NodeId, store: &Store) -> Self::Outcome {
        self.0
            .iter_mut()
            .map(|m| m.on_interrupt(step, at, store))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Outcome;
    use crate::parser::parse;

    /// Counts hook invocations; used to pin the hook contract.
    #[derive(Default)]
    struct CountingMonitor {
        steps: u64,
        assigns: u64,
        decisions: u64,
        branches: u64,
    }

    impl Monitor for CountingMonitor {
        type Outcome = (u64, u64, u64, u64);

        fn on_step(&mut self, _step: u64, _at: NodeId, _node: &Node) {
            self.steps += 1;
        }

        fn on_assign(&mut self, _s: u64, _a: NodeId, _v: Var, _e: &Expr, _st: &Store) {
            self.assigns += 1;
        }

        fn on_decision(
            &mut self,
            _s: u64,
            _a: NodeId,
            _p: &Pred,
            _st: &Store,
        ) -> Option<Self::Outcome> {
            self.decisions += 1;
            None
        }

        fn on_branch(&mut self, _s: u64, _a: NodeId, _p: &Pred, _t: bool) {
            self.branches += 1;
        }

        fn on_halt(&mut self, _s: u64, _a: NodeId, _st: &Store) -> Self::Outcome {
            (self.steps, self.assigns, self.decisions, self.branches)
        }

        fn on_fuel(&mut self, _steps: u64) -> Self::Outcome {
            (self.steps, self.assigns, self.decisions, self.branches)
        }
    }

    /// Aborts at the `n`th decision.
    struct AbortAt(u64, u64);

    impl Monitor for AbortAt {
        type Outcome = &'static str;

        fn on_decision(
            &mut self,
            _s: u64,
            _a: NodeId,
            _p: &Pred,
            _st: &Store,
        ) -> Option<Self::Outcome> {
            self.1 += 1;
            (self.1 >= self.0).then_some("aborted")
        }

        fn on_halt(&mut self, _s: u64, _a: NodeId, _st: &Store) -> Self::Outcome {
            "halted"
        }

        fn on_fuel(&mut self, _steps: u64) -> Self::Outcome {
            "fuel"
        }

        fn on_interrupt(&mut self, _s: u64, _a: NodeId, _st: &Store) -> Self::Outcome {
            "interrupted"
        }
    }

    #[test]
    fn hooks_fire_once_per_box_kind() {
        let fc = parse("program(1) { if x1 == 0 { y := 1; } else { y := 2; } }").unwrap();
        let mut m = CountingMonitor::default();
        let (steps, assigns, decisions, branches) = Stepper::new(&fc).run(&[0], &mut m);
        // START, decision, assignment, HALT.
        assert_eq!(steps, 4);
        assert_eq!(assigns, 1);
        assert_eq!(decisions, 1);
        assert_eq!(branches, 1);
    }

    #[test]
    fn null_monitor_matches_interp() {
        let fc = parse("program(1) { r1 := x1; while r1 != 0 { r1 := r1 - 1; } y := 1; }").unwrap();
        let mut m = NullMonitor;
        let out = Stepper::new(&fc).run(&[4], &mut m);
        let h = out.unwrap_halted();
        assert_eq!(h.y, 1);
        assert_eq!(
            crate::interp::run(&fc, &[4], &crate::interp::ExecConfig::default()),
            Outcome::Halted(h)
        );
    }

    #[test]
    fn fuel_bound_cuts_the_run() {
        let fc = parse("program(0) { while true { skip; } }").unwrap();
        let mut m = NullMonitor;
        assert_eq!(
            Stepper::new(&fc).with_fuel(17).run(&[], &mut m),
            Outcome::OutOfFuel
        );
    }

    #[test]
    fn trace_monitor_records_every_box() {
        let fc = parse("program(1) { y := x1; }").unwrap();
        let mut m = Pair(NullMonitor, TraceMonitor::new());
        let (out, trace) = Stepper::new(&fc).run(&[3], &mut m);
        let h = out.unwrap_halted();
        assert_eq!(trace.len() as u64, h.steps);
        assert_eq!(trace[0], fc.start());
        assert_eq!(*trace.last().unwrap(), h.halt);
    }

    #[test]
    fn pair_abort_interrupts_the_co_monitor() {
        let fc = parse("program(1) { if x1 == 0 { y := 1; } else { y := 2; } }").unwrap();
        let mut m = Pair(AbortAt(1, 0), CountingMonitor::default());
        let (a, (steps, ..)) = Stepper::new(&fc).run(&[0], &mut m);
        assert_eq!(a, "aborted");
        // The co-monitor saw START and the decision before the cut.
        assert_eq!(steps, 2);
    }

    #[test]
    fn pair_runs_both_to_halt_when_neither_aborts() {
        let fc = parse("program(1) { if x1 == 0 { y := 1; } else { y := 2; } }").unwrap();
        let mut m = Pair(AbortAt(99, 0), AbortAt(99, 0));
        assert_eq!(Stepper::new(&fc).run(&[5], &mut m), ("halted", "halted"));
    }

    #[test]
    fn fleet_mixes_aborters_and_survivors() {
        let fc = parse("program(1) { if x1 == 0 { y := 1; } else { y := 2; } }").unwrap();
        let mut m = Fleet(vec![AbortAt(1, 0), AbortAt(99, 0), AbortAt(1, 0)]);
        let out = Stepper::new(&fc).run(&[0], &mut m);
        assert_eq!(out, vec!["aborted", "interrupted", "aborted"]);
    }

    #[test]
    fn fleet_of_none_reaches_halt() {
        let fc = parse("program(0) { y := 3; }").unwrap();
        let mut m = Fleet::<NullMonitor>(Vec::new());
        let out = Stepper::new(&fc).run(&[], &mut m);
        assert!(out.is_empty());
    }
}
