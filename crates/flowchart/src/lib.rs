//! The flowchart programming language of Jones & Lipton, Section 3.
//!
//! "A flowchart F is a finite connected directed graph whose nodes are
//! boxes": one START box, decision boxes (two-way branches on a predicate),
//! assignment boxes and HALT boxes. Variables are the inputs `x1, …, xk`,
//! program variables `r1, …, rn`, and the output variable `y`; the domain of
//! every variable is the integers.
//!
//! This crate provides:
//!
//! * [`ast`] — expressions, predicates and variables with *total* semantics
//!   (division/modulo by zero yield 0; arithmetic wraps), so every
//!   flowchart denotes a total function as the paper requires;
//! * [`graph`] — the flowchart CFG with structural validation;
//! * [`structured`] — structured statements (`if`/`while`/sequences) and
//!   their lowering onto the CFG;
//! * [`parser`] — a small textual DSL for writing flowcharts;
//! * [`interp`] — the interpreter, counting executed boxes as the paper's
//!   observable "number of steps";
//! * [`bytecode`] — a register-bytecode compiler and VM with
//!   interpreter-exact semantics: the fast engine behind exhaustive
//!   sweeps, also able to drive any [`stepper::Monitor`];
//! * [`stepper`] — the generic small-step engine behind every executor:
//!   one fixed walk of the graph, parameterized by a [`stepper::Monitor`]
//!   (plain interpretation, taint disciplines, event streams, and their
//!   one-pass combinations all plug in here);
//! * [`program`] — adapters implementing `enf_core::Program` and
//!   `enf_core::TimedProgram` (output with or without observable time);
//! * [`analysis`] — reachability, postdominators, free-variable analysis;
//! * [`restructure`] — recovery of the `if`/`while` skeleton from
//!   reducible graphs, so graph-built programs can flow into the
//!   structured transform world;
//! * [`corpus`] — every concrete flowchart discussed in the paper, plus
//!   program families used by the benchmarks.
//!
//! # Examples
//!
//! ```
//! use enf_flowchart::parser::parse;
//! use enf_flowchart::interp::{run, ExecConfig};
//!
//! let fc = parse(
//!     "program(2) {
//!         if x1 == 0 { y := x2; } else { y := x2; }
//!     }",
//! )
//! .unwrap();
//! let out = run(&fc, &[0, 7], &ExecConfig::default());
//! assert_eq!(out.unwrap_halted().y, 7);
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod ast;
pub mod builder;
pub mod bytecode;
pub mod corpus;
pub mod dot;
pub mod generate;
pub mod graph;
pub mod interp;
pub mod parser;
pub mod pretty;
pub mod program;
pub mod restructure;
pub mod scheduled;
pub mod stepper;
pub mod structured;

pub use ast::{CmpOp, Expr, Pred, Var};
pub use bytecode::Compiled;
pub use graph::{Flowchart, Node, NodeId, Succ};
pub use interp::{run, run_traced, ExecConfig, ExecValue, Outcome};
pub use parser::{parse, parse_labeled, LabeledProgram};
pub use program::FlowchartProgram;
pub use scheduled::ScheduleMonitor;
pub use stepper::{Fleet, Monitor, NullMonitor, Pair, Stepper, TraceMonitor};
pub use structured::{lower, Stmt, StructuredProgram};
