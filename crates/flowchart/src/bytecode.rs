//! A register bytecode for flowcharts: compile once, step flat.
//!
//! The [`Stepper`](crate::stepper::Stepper) re-dispatches boxed AST
//! [`Expr`]/[`Node`] values on every executed box; for exhaustive sweeps
//! that dispatch (and the per-step `vars()` allocations of the taint
//! monitors) dominates. [`Compiled::new`] lowers a [`Flowchart`] to a flat
//! instruction array:
//!
//! * **variables → register slots** resolved at compile time — inputs,
//!   the output variable and `r1 … rm` share one dense `Vec<V>`, so no
//!   enum dispatch or bounds-growth happens at run time;
//! * **fused compare-and-branch** superinstructions for the common
//!   `if e op e'` decision shape, and single-instruction forms for
//!   constant/copy/binary assignments;
//! * a shared RPN **code pool** for the rare deep expressions, evaluated
//!   on a reusable stack;
//! * **interpreter-exact i64 semantics** — wrapping arithmetic, total
//!   division (`x / 0 = x % 0 = 0`) and the same fuel accounting as
//!   [`interp::run`](crate::interp::run): the fuel check precedes each
//!   step, START and HALT both count.
//!
//! Instruction `i` corresponds 1:1 to node `n{i}`, so violation sites and
//! trace events report the same [`NodeId`]s as the AST engines.
//! [`Compiled::run_monitored`] drives any [`Monitor`] over the compiled
//! program while maintaining a shadow [`Store`], making the VM a drop-in
//! engine for trace and explain; the surveillance crate adds a fused
//! bitmask taint loop on top via [`Compiled::reads`].

use crate::ast::{CmpOp, Expr, Pred, Var};
use crate::graph::{Flowchart, Node, NodeId, Succ};
use crate::interp::{ExecConfig, Halted, Outcome, Store};
use crate::stepper::Monitor;
use enf_core::V;
use std::fmt::Write as _;

/// Index of a register slot in the VM's dense value array.
pub type Slot = u32;

/// A binary arithmetic operator with the interpreter's total semantics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Total division: `a / 0 = 0`, `MIN / -1 = MIN`.
    Div,
    /// Total remainder: `a % 0 = 0`, `MIN % -1 = 0`.
    Mod,
    /// Bitwise or.
    BOr,
    /// Bitwise and.
    BAnd,
}

impl BinOp {
    /// Applies the operator with the same totalization as [`Expr::eval`].
    #[inline]
    pub fn apply(self, a: V, b: V) -> V {
        match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Div => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_div(b)
                }
            }
            BinOp::Mod => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_rem(b)
                }
            }
            BinOp::BOr => a | b,
            BinOp::BAnd => a & b,
        }
    }

    fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::BOr => "|",
            BinOp::BAnd => "&",
        }
    }
}

/// A direct operand of a fused instruction: a slot read or an immediate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Operand {
    /// Read the current value of a register slot.
    Slot(Slot),
    /// An immediate constant.
    Const(V),
}

impl Operand {
    /// The operand's current value under `slots`.
    #[inline]
    pub fn value(self, slots: &[V]) -> V {
        match self {
            Operand::Slot(s) => slots[s as usize],
            Operand::Const(v) => v,
        }
    }
}

/// One RPN op in the shared code pool (deep expressions/predicates only).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EOp {
    /// Push an immediate.
    Push(V),
    /// Push the value of a slot.
    Load(Slot),
    /// Pop `a`, push `0 - a` (wrapping).
    Neg,
    /// Pop `b` then `a`, push `a op b`.
    Bin(BinOp),
    /// Pop `b` then `a`, push `(a op b) as i64` (1 or 0).
    Cmp(CmpOp),
    /// Pop `a`, push `(a == 0) as i64`.
    Not,
    /// Pop `b` then `a`, push `(a != 0 && b != 0) as i64`.
    And,
    /// Pop `b` then `a`, push `(a != 0 || b != 0) as i64`.
    Or,
    /// Pop `else`, `then`, `cond`; push `then` if `cond != 0` else `else`.
    Select,
}

/// A `[start, end)` range into the shared [`EOp`] code pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CodeRange {
    /// First op of the fragment.
    pub start: u32,
    /// One past the last op.
    pub end: u32,
}

/// One bytecode instruction. Instruction index `i` is node `n{i}`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Inst {
    /// Unconditional fallthrough (START nodes).
    Jump {
        /// Next instruction.
        next: u32,
    },
    /// `slots[dst] := value`.
    AssignConst {
        /// Target slot.
        dst: Slot,
        /// Immediate to store.
        value: V,
        /// Next instruction.
        next: u32,
    },
    /// `slots[dst] := slots[src]`.
    AssignCopy {
        /// Target slot.
        dst: Slot,
        /// Source slot.
        src: Slot,
        /// Next instruction.
        next: u32,
    },
    /// `slots[dst] := a op b` with direct operands.
    AssignBin {
        /// Target slot.
        dst: Slot,
        /// The operator.
        op: BinOp,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
        /// Next instruction.
        next: u32,
    },
    /// `slots[dst] := eval(code)` for deep expressions.
    AssignCode {
        /// Target slot.
        dst: Slot,
        /// RPN fragment to evaluate.
        code: CodeRange,
        /// Next instruction.
        next: u32,
    },
    /// Fused compare-and-branch: `if a op b then then_ else else_`.
    CmpBr {
        /// Comparison operator.
        op: CmpOp,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
        /// Branch target when the comparison holds.
        then_: u32,
        /// Branch target when it does not.
        else_: u32,
    },
    /// Branch on a deep predicate evaluated from the code pool.
    PredBr {
        /// RPN fragment; nonzero result means "taken".
        code: CodeRange,
        /// Branch target when taken.
        then_: u32,
        /// Branch target otherwise.
        else_: u32,
    },
    /// A `setpolicy` or `declassify` box: value-wise a fallthrough (the
    /// store is untouched), but policy-aware engines dispatch on the
    /// source [`Node`] at this index to update their label state.
    Policy {
        /// Next instruction.
        next: u32,
    },
    /// Return `slots[out]`.
    Halt,
}

/// A flowchart compiled to register bytecode.
///
/// Owns a clone of the source [`Flowchart`] so monitored runs can hand the
/// original [`Node`]/[`Expr`]/[`Pred`] values to [`Monitor`] hooks.
#[derive(Clone, Debug)]
pub struct Compiled {
    fc: Flowchart,
    arity: usize,
    slot_count: usize,
    out_slot: Slot,
    insts: Vec<Inst>,
    code: Vec<EOp>,
    /// Per-instruction `(start, end)` ranges into `read_pool`.
    reads: Vec<(u32, u32)>,
    /// Slots read by each instruction (sorted, deduped), for taint unions.
    read_pool: Vec<Slot>,
    stack_cap: usize,
}

impl Compiled {
    /// Compiles `fc` to bytecode. Panics only if the flowchart is
    /// malformed in ways [`Flowchart`] construction already rejects.
    pub fn new(fc: &Flowchart) -> Self {
        let arity = fc.arity();
        let max_reg = fc.max_reg();
        let slot_count = arity + 1 + max_reg;
        let out_slot = arity as Slot;
        let mut c = Compiled {
            fc: fc.clone(),
            arity,
            slot_count,
            out_slot,
            insts: Vec::with_capacity(fc.len()),
            code: Vec::new(),
            reads: Vec::with_capacity(fc.len()),
            read_pool: Vec::new(),
            stack_cap: 0,
        };
        for (id, node, succ) in fc.iter() {
            debug_assert_eq!(id.0, c.insts.len());
            let inst = match node {
                Node::Start => Inst::Jump {
                    next: one_succ(&succ),
                },
                Node::Assign { var, expr } => c.lower_assign(*var, expr, one_succ(&succ)),
                Node::Decision { pred } => {
                    let (then_, else_) = cond_succ(&succ);
                    c.lower_decision(pred, then_, else_)
                }
                Node::SetPolicy { .. } | Node::Declassify { .. } => Inst::Policy {
                    next: one_succ(&succ),
                },
                Node::Halt => Inst::Halt,
            };
            let start = c.read_pool.len() as u32;
            let mut slots: Vec<Slot> = match node {
                Node::Assign { expr, .. } => {
                    expr.vars().into_iter().map(|v| c.slot_of(v)).collect()
                }
                Node::Decision { pred } => pred.vars().into_iter().map(|v| c.slot_of(v)).collect(),
                _ => Vec::new(),
            };
            slots.sort_unstable();
            slots.dedup();
            c.read_pool.extend_from_slice(&slots);
            c.reads.push((start, c.read_pool.len() as u32));
            c.insts.push(inst);
        }
        c
    }

    /// The slot holding `var`'s value: inputs first, then `y`, then
    /// registers.
    pub fn slot_of(&self, var: Var) -> Slot {
        match var {
            Var::Input(i) => (i - 1) as Slot,
            Var::Out => self.out_slot,
            Var::Reg(j) => (self.arity + j) as Slot,
        }
    }

    /// The variable stored in `slot` (inverse of [`Compiled::slot_of`]).
    pub fn var_of(&self, slot: Slot) -> Var {
        let s = slot as usize;
        if s < self.arity {
            Var::Input(s + 1)
        } else if s == self.arity {
            Var::Out
        } else {
            Var::Reg(s - self.arity)
        }
    }

    /// The source flowchart.
    pub fn flowchart(&self) -> &Flowchart {
        &self.fc
    }

    /// Number of inputs the program takes.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Total register slots (inputs + `y` + registers).
    pub fn slot_count(&self) -> usize {
        self.slot_count
    }

    /// The slot holding the output variable `y`.
    pub fn out_slot(&self) -> Slot {
        self.out_slot
    }

    /// The instruction array (index `i` is node `n{i}`).
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// The slots read by instruction `idx` (sorted, deduped) — the
    /// compile-time source set for taint unions.
    pub fn reads(&self, idx: usize) -> &[Slot] {
        let (s, e) = self.reads[idx];
        &self.read_pool[s as usize..e as usize]
    }

    /// Upper bound on the RPN evaluation stack depth; sizing a scratch
    /// `Vec` to this avoids reallocation during a run.
    pub fn stack_capacity(&self) -> usize {
        self.stack_cap
    }

    fn lower_assign(&mut self, var: Var, expr: &Expr, next: u32) -> Inst {
        let dst = self.slot_of(var);
        if let Some(op) = self.operand_of(expr) {
            return match op {
                Operand::Const(value) => Inst::AssignConst { dst, value, next },
                Operand::Slot(src) => Inst::AssignCopy { dst, src, next },
            };
        }
        if let Some((op, a, b)) = self.binary_of(expr) {
            return Inst::AssignBin {
                dst,
                op,
                a,
                b,
                next,
            };
        }
        let code = self.emit_expr(expr);
        Inst::AssignCode { dst, code, next }
    }

    fn lower_decision(&mut self, pred: &Pred, then_: u32, else_: u32) -> Inst {
        if let Pred::Cmp(op, a, b) = pred {
            if let (Some(a), Some(b)) = (self.operand_of(a), self.operand_of(b)) {
                return Inst::CmpBr {
                    op: *op,
                    a,
                    b,
                    then_,
                    else_,
                };
            }
        }
        let code = self.emit_pred(pred);
        Inst::PredBr { code, then_, else_ }
    }

    fn operand_of(&self, e: &Expr) -> Option<Operand> {
        match e {
            Expr::Const(v) => Some(Operand::Const(*v)),
            Expr::Var(v) => Some(Operand::Slot(self.slot_of(*v))),
            _ => None,
        }
    }

    /// Recognizes one-operator expressions over simple operands, including
    /// `-x` as `0 - x` (wrapping negation is `0.wrapping_sub(x)`).
    fn binary_of(&self, e: &Expr) -> Option<(BinOp, Operand, Operand)> {
        let (op, a, b) = match e {
            Expr::Add(a, b) => (BinOp::Add, a, b),
            Expr::Sub(a, b) => (BinOp::Sub, a, b),
            Expr::Mul(a, b) => (BinOp::Mul, a, b),
            Expr::Div(a, b) => (BinOp::Div, a, b),
            Expr::Mod(a, b) => (BinOp::Mod, a, b),
            Expr::BOr(a, b) => (BinOp::BOr, a, b),
            Expr::BAnd(a, b) => (BinOp::BAnd, a, b),
            Expr::Neg(a) => {
                let a = self.operand_of(a)?;
                return Some((BinOp::Sub, Operand::Const(0), a));
            }
            _ => return None,
        };
        Some((op, self.operand_of(a)?, self.operand_of(b)?))
    }

    fn emit_expr(&mut self, e: &Expr) -> CodeRange {
        let start = self.code.len() as u32;
        let depth = self.push_expr(e);
        self.stack_cap = self.stack_cap.max(depth);
        CodeRange {
            start,
            end: self.code.len() as u32,
        }
    }

    fn emit_pred(&mut self, p: &Pred) -> CodeRange {
        let start = self.code.len() as u32;
        let depth = self.push_pred(p);
        self.stack_cap = self.stack_cap.max(depth);
        CodeRange {
            start,
            end: self.code.len() as u32,
        }
    }

    /// Emits RPN for `e`; returns the maximum stack depth of the fragment.
    fn push_expr(&mut self, e: &Expr) -> usize {
        match e {
            Expr::Const(v) => {
                self.code.push(EOp::Push(*v));
                1
            }
            Expr::Var(v) => {
                let s = self.slot_of(*v);
                self.code.push(EOp::Load(s));
                1
            }
            Expr::Neg(a) => {
                let d = self.push_expr(a);
                self.code.push(EOp::Neg);
                d
            }
            Expr::Add(a, b) => self.push_bin(a, b, EOp::Bin(BinOp::Add)),
            Expr::Sub(a, b) => self.push_bin(a, b, EOp::Bin(BinOp::Sub)),
            Expr::Mul(a, b) => self.push_bin(a, b, EOp::Bin(BinOp::Mul)),
            Expr::Div(a, b) => self.push_bin(a, b, EOp::Bin(BinOp::Div)),
            Expr::Mod(a, b) => self.push_bin(a, b, EOp::Bin(BinOp::Mod)),
            Expr::BOr(a, b) => self.push_bin(a, b, EOp::Bin(BinOp::BOr)),
            Expr::BAnd(a, b) => self.push_bin(a, b, EOp::Bin(BinOp::BAnd)),
            // Both arms are pure and total, so evaluating them eagerly and
            // selecting yields the same value as the interpreter's lazy arm
            // choice.
            Expr::Ite(p, t, f) => {
                let dp = self.push_pred(p);
                let dt = self.push_expr(t);
                let df = self.push_expr(f);
                self.code.push(EOp::Select);
                dp.max(1 + dt).max(2 + df)
            }
        }
    }

    fn push_bin(&mut self, a: &Expr, b: &Expr, op: EOp) -> usize {
        let da = self.push_expr(a);
        let db = self.push_expr(b);
        self.code.push(op);
        da.max(1 + db)
    }

    /// Emits RPN for `p` (result 1/0). `&&`/`||` evaluate both operands
    /// eagerly, which is value-identical because predicates are pure and
    /// total.
    fn push_pred(&mut self, p: &Pred) -> usize {
        match p {
            Pred::True => {
                self.code.push(EOp::Push(1));
                1
            }
            Pred::False => {
                self.code.push(EOp::Push(0));
                1
            }
            Pred::Cmp(op, a, b) => {
                let da = self.push_expr(a);
                let db = self.push_expr(b);
                self.code.push(EOp::Cmp(*op));
                da.max(1 + db)
            }
            Pred::Not(q) => {
                let d = self.push_pred(q);
                self.code.push(EOp::Not);
                d
            }
            Pred::And(a, b) => {
                let da = self.push_pred(a);
                let db = self.push_pred(b);
                self.code.push(EOp::And);
                da.max(1 + db)
            }
            Pred::Or(a, b) => {
                let da = self.push_pred(a);
                let db = self.push_pred(b);
                self.code.push(EOp::Or);
                da.max(1 + db)
            }
        }
    }

    /// Evaluates an RPN fragment against `slots` using `stack` as scratch.
    #[inline]
    pub fn eval_code(&self, range: CodeRange, slots: &[V], stack: &mut Vec<V>) -> V {
        stack.clear();
        for op in &self.code[range.start as usize..range.end as usize] {
            match *op {
                EOp::Push(v) => stack.push(v),
                EOp::Load(s) => stack.push(slots[s as usize]),
                EOp::Neg => {
                    let a = stack.pop().expect("rpn underflow");
                    stack.push(a.wrapping_neg());
                }
                EOp::Bin(b) => {
                    let y = stack.pop().expect("rpn underflow");
                    let x = stack.pop().expect("rpn underflow");
                    stack.push(b.apply(x, y));
                }
                EOp::Cmp(c) => {
                    let y = stack.pop().expect("rpn underflow");
                    let x = stack.pop().expect("rpn underflow");
                    stack.push(c.apply(x, y) as V);
                }
                EOp::Not => {
                    let a = stack.pop().expect("rpn underflow");
                    stack.push((a == 0) as V);
                }
                EOp::And => {
                    let y = stack.pop().expect("rpn underflow");
                    let x = stack.pop().expect("rpn underflow");
                    stack.push((x != 0 && y != 0) as V);
                }
                EOp::Or => {
                    let y = stack.pop().expect("rpn underflow");
                    let x = stack.pop().expect("rpn underflow");
                    stack.push((x != 0 || y != 0) as V);
                }
                EOp::Select => {
                    let f = stack.pop().expect("rpn underflow");
                    let t = stack.pop().expect("rpn underflow");
                    let c = stack.pop().expect("rpn underflow");
                    stack.push(if c != 0 { t } else { f });
                }
            }
        }
        stack.pop().expect("rpn fragment left no result")
    }

    /// Executes the assignment parts of `inst`: returns
    /// `(dst, value, next)`. Panics if `inst` is not an assignment.
    #[inline]
    pub fn assign_parts(&self, inst: Inst, slots: &[V], stack: &mut Vec<V>) -> (Slot, V, u32) {
        match inst {
            Inst::AssignConst { dst, value, next } => (dst, value, next),
            Inst::AssignCopy { dst, src, next } => (dst, slots[src as usize], next),
            Inst::AssignBin {
                dst,
                op,
                a,
                b,
                next,
            } => (dst, op.apply(a.value(slots), b.value(slots)), next),
            Inst::AssignCode { dst, code, next } => (dst, self.eval_code(code, slots, stack), next),
            other => panic!("assign_parts on non-assignment {other:?}"),
        }
    }

    /// Evaluates the branch parts of `inst`: returns
    /// `(taken, then_, else_)`. Panics if `inst` is not a branch.
    #[inline]
    pub fn branch_taken(&self, inst: Inst, slots: &[V], stack: &mut Vec<V>) -> (bool, u32, u32) {
        match inst {
            Inst::CmpBr {
                op,
                a,
                b,
                then_,
                else_,
            } => (op.apply(a.value(slots), b.value(slots)), then_, else_),
            Inst::PredBr { code, then_, else_ } => {
                (self.eval_code(code, slots, stack) != 0, then_, else_)
            }
            other => panic!("branch_taken on non-branch {other:?}"),
        }
    }

    /// Runs the compiled program: exact [`interp::run`](crate::interp::run)
    /// semantics (outcome, step count, halt site).
    pub fn run(&self, inputs: &[V], cfg: &ExecConfig) -> Outcome {
        assert_eq!(
            inputs.len(),
            self.arity,
            "flowchart takes {} inputs, got {}",
            self.arity,
            inputs.len()
        );
        // Sweeps call `run` once per tuple; keep the register file on the
        // stack for typical programs to avoid a heap allocation per call.
        let mut slots_buf = [0 as V; 32];
        let mut slots_heap: Vec<V>;
        let slots: &mut [V] = if self.slot_count <= 32 {
            &mut slots_buf[..self.slot_count]
        } else {
            slots_heap = vec![0 as V; self.slot_count];
            &mut slots_heap
        };
        slots[..self.arity].copy_from_slice(inputs);
        let mut stack: Vec<V> = Vec::with_capacity(self.stack_cap);
        let mut pc = 0usize;
        let mut steps: u64 = 0;
        let fuel = cfg.fuel;
        while steps < fuel {
            steps += 1;
            match self.insts[pc] {
                Inst::Jump { next } => pc = next as usize,
                Inst::AssignConst { dst, value, next } => {
                    slots[dst as usize] = value;
                    pc = next as usize;
                }
                Inst::AssignCopy { dst, src, next } => {
                    slots[dst as usize] = slots[src as usize];
                    pc = next as usize;
                }
                Inst::AssignBin {
                    dst,
                    op,
                    a,
                    b,
                    next,
                } => {
                    slots[dst as usize] = op.apply(a.value(slots), b.value(slots));
                    pc = next as usize;
                }
                Inst::AssignCode { dst, code, next } => {
                    slots[dst as usize] = self.eval_code(code, slots, &mut stack);
                    pc = next as usize;
                }
                Inst::CmpBr {
                    op,
                    a,
                    b,
                    then_,
                    else_,
                } => {
                    pc = if op.apply(a.value(slots), b.value(slots)) {
                        then_ as usize
                    } else {
                        else_ as usize
                    };
                }
                Inst::PredBr { code, then_, else_ } => {
                    pc = if self.eval_code(code, slots, &mut stack) != 0 {
                        then_ as usize
                    } else {
                        else_ as usize
                    };
                }
                Inst::Policy { next } => pc = next as usize,
                Inst::Halt => {
                    return Outcome::Halted(Halted {
                        y: slots[self.out_slot as usize],
                        steps,
                        halt: NodeId(pc),
                    });
                }
            }
        }
        Outcome::OutOfFuel
    }

    /// Drives `monitor` through the compiled program with the exact hook
    /// sequence of [`Stepper::run`](crate::stepper::Stepper::run): a shadow
    /// [`Store`] mirrors the slot array so hooks observe AST-engine state.
    pub fn run_monitored<M: Monitor>(
        &self,
        inputs: &[V],
        fuel: u64,
        monitor: &mut M,
    ) -> M::Outcome {
        let mut store = Store::init(&self.fc, inputs);
        let mut slots = vec![0 as V; self.slot_count];
        slots[..self.arity].copy_from_slice(inputs);
        let mut stack: Vec<V> = Vec::with_capacity(self.stack_cap);
        let mut pc = 0usize;
        let mut steps: u64 = 0;
        while steps < fuel {
            steps += 1;
            let at = NodeId(pc);
            let node = self.fc.node(at);
            monitor.on_step(steps, at, node);
            match self.insts[pc] {
                Inst::Jump { next } => pc = next as usize,
                inst @ (Inst::AssignConst { .. }
                | Inst::AssignCopy { .. }
                | Inst::AssignBin { .. }
                | Inst::AssignCode { .. }) => {
                    let Node::Assign { var, expr } = node else {
                        unreachable!("assignment instruction at non-assign node {at}")
                    };
                    monitor.on_assign(steps, at, *var, expr, &store);
                    let (dst, v, next) = self.assign_parts(inst, &slots, &mut stack);
                    slots[dst as usize] = v;
                    store.set(*var, v);
                    pc = next as usize;
                }
                inst @ (Inst::CmpBr { .. } | Inst::PredBr { .. }) => {
                    let Node::Decision { pred } = node else {
                        unreachable!("branch instruction at non-decision node {at}")
                    };
                    if let Some(out) = monitor.on_decision(steps, at, pred, &store) {
                        return out;
                    }
                    let (taken, then_, else_) = self.branch_taken(inst, &slots, &mut stack);
                    monitor.on_branch(steps, at, pred, taken);
                    pc = if taken {
                        then_ as usize
                    } else {
                        else_ as usize
                    };
                }
                Inst::Policy { next } => {
                    match node {
                        Node::SetPolicy { spec } => {
                            monitor.on_setpolicy(steps, at, *spec, &store);
                        }
                        Node::Declassify { var, from, to } => {
                            monitor.on_declassify(steps, at, *var, *from, *to, &store);
                        }
                        _ => unreachable!("policy instruction at non-policy node {at}"),
                    }
                    pc = next as usize;
                }
                Inst::Halt => return monitor.on_halt(steps, at, &store),
            }
        }
        monitor.on_fuel(steps)
    }

    /// Renders the bytecode as a readable listing (pinned by the CLI's
    /// `compile` golden test).
    pub fn listing(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "bytecode: {} insts, {} slots (arity {})",
            self.insts.len(),
            self.slot_count,
            self.arity
        );
        let mut slot_names = String::from("slots:");
        for slot in 0..self.slot_count {
            let _ = write!(slot_names, " s{}={}", slot, self.var_of(slot as Slot));
        }
        let _ = writeln!(s, "{slot_names}");
        for (i, inst) in self.insts.iter().enumerate() {
            let body = match *inst {
                Inst::Jump { next } => format!("start -> n{next}"),
                Inst::AssignConst { dst, value, next } => {
                    format!("s{dst} := {value} -> n{next}")
                }
                Inst::AssignCopy { dst, src, next } => format!("s{dst} := s{src} -> n{next}"),
                Inst::AssignBin {
                    dst,
                    op,
                    a,
                    b,
                    next,
                } => format!(
                    "s{dst} := {} {} {} -> n{next}",
                    operand_str(a),
                    op.symbol(),
                    operand_str(b)
                ),
                Inst::AssignCode { dst, code, next } => {
                    format!("s{dst} := [{}] -> n{next}", self.code_str(code))
                }
                Inst::CmpBr {
                    op,
                    a,
                    b,
                    then_,
                    else_,
                } => format!(
                    "if {} {op} {} -> n{then_} else n{else_}",
                    operand_str(a),
                    operand_str(b)
                ),
                Inst::PredBr { code, then_, else_ } => {
                    format!("if [{}] -> n{then_} else n{else_}", self.code_str(code))
                }
                Inst::Policy { next } => match self.fc.node(NodeId(i)) {
                    Node::SetPolicy { spec } => format!("setpolicy {spec} -> n{next}"),
                    Node::Declassify { var, from, to } => format!(
                        "{} -> n{next}",
                        crate::pretty::declassify_to_string(*var, from, to)
                    ),
                    _ => unreachable!("policy instruction at non-policy node n{i}"),
                },
                Inst::Halt => "halt".to_string(),
            };
            let _ = writeln!(s, "n{i}: {body}");
        }
        s
    }

    fn code_str(&self, range: CodeRange) -> String {
        let mut parts = Vec::new();
        for op in &self.code[range.start as usize..range.end as usize] {
            parts.push(match *op {
                EOp::Push(v) => format!("push {v}"),
                EOp::Load(s) => format!("load s{s}"),
                EOp::Neg => "neg".to_string(),
                EOp::Bin(b) => match b {
                    BinOp::Add => "add",
                    BinOp::Sub => "sub",
                    BinOp::Mul => "mul",
                    BinOp::Div => "div",
                    BinOp::Mod => "mod",
                    BinOp::BOr => "bor",
                    BinOp::BAnd => "band",
                }
                .to_string(),
                EOp::Cmp(c) => format!("cmp {c}"),
                EOp::Not => "not".to_string(),
                EOp::And => "and".to_string(),
                EOp::Or => "or".to_string(),
                EOp::Select => "select".to_string(),
            });
        }
        parts.join(", ")
    }
}

fn operand_str(op: Operand) -> String {
    match op {
        Operand::Slot(s) => format!("s{s}"),
        Operand::Const(v) => v.to_string(),
    }
}

fn one_succ(succ: &Succ) -> u32 {
    match succ {
        Succ::One(n) => n.0 as u32,
        other => panic!("expected one successor, found {other:?}"),
    }
}

fn cond_succ(succ: &Succ) -> (u32, u32) {
    match succ {
        Succ::Cond { then_, else_ } => (then_.0 as u32, else_.0 as u32),
        other => panic!("expected conditional successor, found {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{add, ite, sub};
    use crate::builder::Builder;
    use crate::generate::{random_flowchart, GenConfig};
    use crate::interp::run;
    use crate::parser::parse;
    use crate::stepper::{NullMonitor, Pair, Stepper, TraceMonitor};

    fn assert_same(fc: &Flowchart, inputs: &[V], cfg: &ExecConfig) {
        let compiled = Compiled::new(fc);
        let ast = run(fc, inputs, cfg);
        let vm = compiled.run(inputs, cfg);
        assert_eq!(ast, vm, "inputs {inputs:?}");
        // Monitored run: identical outcome and identical trace.
        let mut pair = Pair(NullMonitor, TraceMonitor::default());
        let (m_out, m_trace) = Stepper::new(fc).with_fuel(cfg.fuel).run(inputs, &mut pair);
        let mut pair = Pair(NullMonitor, TraceMonitor::default());
        let (v_out, v_trace) = compiled.run_monitored(inputs, cfg.fuel, &mut pair);
        assert_eq!(m_out, v_out, "inputs {inputs:?}");
        assert_eq!(m_trace, v_trace, "inputs {inputs:?}");
    }

    #[test]
    fn straight_line_matches_interpreter() {
        let fc = parse("program(2) { r1 := x1 + x2; y := r1 * 2; }").unwrap();
        for a in -3..=3 {
            for b in -3..=3 {
                assert_same(&fc, &[a, b], &ExecConfig::default());
            }
        }
    }

    #[test]
    fn branches_and_loops_match() {
        let fc = parse(
            "program(2) {
                r1 := 0;
                while x1 > 0 { r1 := r1 + x2; x1 := x1 - 1; }
                if r1 == 0 { y := 0; } else { y := r1; }
            }",
        )
        .unwrap();
        for a in -2..=5 {
            for b in -3..=3 {
                assert_same(&fc, &[a, b], &ExecConfig::default());
            }
        }
    }

    #[test]
    fn fuel_accounting_is_interpreter_exact() {
        let fc = parse("program(1) { while x1 != 0 { x1 := x1 - 1; } y := 1; }").unwrap();
        for fuel in 0..30 {
            assert_same(&fc, &[4], &ExecConfig::with_fuel(fuel));
            assert_same(&fc, &[-1], &ExecConfig::with_fuel(fuel));
        }
    }

    #[test]
    fn deep_expressions_and_edge_cases_match() {
        // Exercise Ite, Div/Mod totality (including MIN / -1), Neg, bit ops
        // and nested predicates — shapes the parser may not reach.
        let mut b = Builder::new(2);
        let a1 = b.assign(
            Var::Reg(1),
            ite(
                Pred::And(
                    Box::new(Pred::ne(Expr::x(1), Expr::c(0))),
                    Box::new(Pred::Not(Box::new(Pred::lt(Expr::x(2), Expr::c(0))))),
                ),
                Expr::Div(Box::new(Expr::c(V::MIN)), Box::new(Expr::x(1))),
                Expr::Mod(Box::new(Expr::c(V::MIN)), Box::new(Expr::x(1))),
            ),
        );
        let a2 = b.assign(
            Var::Reg(2),
            Expr::Neg(Box::new(add(
                Expr::BOr(Box::new(Expr::x(1)), Box::new(Expr::c(5))),
                Expr::BAnd(Box::new(Expr::x(2)), Box::new(Expr::c(12))),
            ))),
        );
        let a3 = b.assign(Var::Out, sub(Expr::r(1), Expr::r(2)));
        let h = b.halt();
        b.wire_start(a1);
        b.wire(a1, a2);
        b.wire(a2, a3);
        b.wire(a3, h);
        let fc = b.finish().unwrap();
        for a in [-2, -1, 0, 1, 2, V::MIN, V::MAX] {
            for b in [-1, 0, 1] {
                assert_same(&fc, &[a, b], &ExecConfig::default());
            }
        }
    }

    #[test]
    fn random_programs_match_at_many_inputs() {
        let gen = GenConfig::default();
        for seed in 0..120u64 {
            let fc = random_flowchart(seed, &gen);
            for a in -2..=2 {
                for b in -2..=2 {
                    assert_same(&fc, &[a, b], &ExecConfig::with_fuel(10_000));
                }
            }
        }
    }

    #[test]
    fn fused_compare_and_branch_is_used() {
        let fc = parse("program(1) { if x1 == 0 { y := 1; } else { y := 2; } }").unwrap();
        let c = Compiled::new(&fc);
        assert!(c
            .insts()
            .iter()
            .any(|i| matches!(i, Inst::CmpBr { op: CmpOp::Eq, .. })));
        // No code pool needed for this program.
        assert!(c.code.is_empty());
    }

    #[test]
    fn reads_report_source_slots() {
        let fc = parse("program(2) { y := x1 + x2; }").unwrap();
        let c = Compiled::new(&fc);
        // Node n1 is the assignment; it reads slots 0 and 1 (x1, x2).
        assert_eq!(c.reads(1), &[0, 1]);
        assert_eq!(c.var_of(0), Var::Input(1));
        assert_eq!(c.var_of(c.out_slot()), Var::Out);
    }

    #[test]
    fn listing_is_stable() {
        let fc = parse("program(1) { if x1 == 0 { y := 1; } else { y := x1; } }").unwrap();
        let s = Compiled::new(&fc).listing();
        assert!(s.starts_with("bytecode: "));
        assert!(s.contains("slots: s0=x1 s1=y"));
        assert!(s.contains("if s0 == 0 -> n"));
        assert!(s.contains(":= 1 -> n"));
        assert!(s.contains("halt"));
    }

    #[test]
    fn arity_mismatch_panics_like_interpreter() {
        let fc = parse("program(2) { y := x1; }").unwrap();
        let c = Compiled::new(&fc);
        let err = std::panic::catch_unwind(|| c.run(&[1], &ExecConfig::default())).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("flowchart takes 2 inputs, got 1"), "{msg}");
    }
}
