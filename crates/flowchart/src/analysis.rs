//! Graph analyses over flowcharts: reachability, predecessors,
//! postdominators.
//!
//! Postdominators give the precise scope of *implicit* information flow:
//! the influence of a decision box on the program counter ends at the
//! decision's immediate postdominator (where both arms have rejoined).
//! `enf-static` uses this to scope PC taint during certification —
//! the same idea Denning & Denning apply to block-structured programs,
//! generalized to arbitrary flowchart graphs.

use crate::graph::{Flowchart, NodeId, Succ};
use std::collections::HashSet;

/// The set of nodes reachable from START.
pub fn reachable(fc: &Flowchart) -> HashSet<NodeId> {
    let mut seen = HashSet::new();
    if fc.is_empty() {
        return seen;
    }
    let mut stack = vec![fc.start()];
    while let Some(n) = stack.pop() {
        if !seen.insert(n) {
            continue;
        }
        for s in fc.succ_list(n) {
            stack.push(s);
        }
    }
    seen
}

/// Predecessor lists for every node.
pub fn predecessors(fc: &Flowchart) -> Vec<Vec<NodeId>> {
    let mut preds = vec![Vec::new(); fc.len()];
    for (id, _, _) in fc.iter() {
        for s in fc.succ_list(id) {
            preds[s.0].push(id);
        }
    }
    preds
}

/// Postdominator sets computed against a virtual exit node.
///
/// Every HALT node is connected to a virtual exit, so programs with several
/// HALT boxes are handled uniformly. Nodes from which no HALT is reachable
/// (pure loops) postdominate nothing and are postdominated by everything,
/// per the standard dataflow convention; the interpreter never lets such
/// paths produce output, so the conservative answer is safe.
#[derive(Clone, Debug)]
pub struct PostDominators {
    /// `sets[n]` = nodes that postdominate `n` (excluding the virtual
    /// exit, including `n` itself).
    sets: Vec<HashSet<usize>>,
}

impl PostDominators {
    /// Computes postdominators by iterating the standard backward dataflow
    /// equations to a fixed point.
    pub fn compute(fc: &Flowchart) -> Self {
        let n = fc.len();
        let all: HashSet<usize> = (0..n).collect();
        let mut sets: Vec<HashSet<usize>> = vec![all.clone(); n];
        // HALT nodes: postdominated by themselves only.
        for h in fc.halts() {
            sets[h.0] = HashSet::from([h.0]);
        }
        let mut changed = true;
        while changed {
            changed = false;
            // Iterate in reverse id order — roughly reverse topological for
            // graphs produced by the lowering, speeding convergence.
            for id in (0..n).rev() {
                if matches!(fc.node(NodeId(id)), crate::graph::Node::Halt) {
                    continue;
                }
                let succs = fc.succ_list(NodeId(id));
                if succs.is_empty() {
                    continue;
                }
                let mut inter: Option<HashSet<usize>> = None;
                for s in &succs {
                    inter = Some(match inter {
                        None => sets[s.0].clone(),
                        Some(acc) => acc.intersection(&sets[s.0]).copied().collect(),
                    });
                }
                let mut new = inter.unwrap_or_default();
                new.insert(id);
                if new != sets[id] {
                    sets[id] = new;
                    changed = true;
                }
            }
        }
        PostDominators { sets }
    }

    /// Whether `a` postdominates `b`.
    pub fn postdominates(&self, a: NodeId, b: NodeId) -> bool {
        self.sets[b.0].contains(&a.0)
    }

    /// The immediate postdominator of `n`: the strict postdominator that is
    /// postdominated by every other strict postdominator of `n`.
    ///
    /// Returns `None` for HALT nodes and for nodes whose only postdominator
    /// is themselves (no path to HALT).
    pub fn immediate(&self, n: NodeId) -> Option<NodeId> {
        let strict: Vec<usize> = self.sets[n.0]
            .iter()
            .copied()
            .filter(|&d| d != n.0)
            .collect();
        strict
            .iter()
            .copied()
            .find(|&c| strict.iter().all(|&d| self.sets[c].contains(&d)))
            .map(NodeId)
    }

    /// The full postdominator set of `n` (including `n`).
    pub fn set(&self, n: NodeId) -> &HashSet<usize> {
        &self.sets[n.0]
    }
}

/// Input indices syntactically mentioned anywhere in the flowchart.
pub fn inputs_mentioned(fc: &Flowchart) -> enf_core::IndexSet {
    let mut set = enf_core::IndexSet::empty();
    for (_, node, _) in fc.iter() {
        let vars = match node {
            crate::graph::Node::Assign { var, expr } => {
                let mut v = expr.vars();
                v.push(*var);
                v
            }
            crate::graph::Node::Decision { pred } => pred.vars(),
            _ => Vec::new(),
        };
        for v in vars {
            if let crate::ast::Var::Input(i) = v {
                set.insert(i);
            }
        }
    }
    set
}

/// Whether the graph is connected in the paper's sense: every node is
/// reachable from START (ignoring edge direction is not needed for graphs
/// built by our constructors).
pub fn fully_reachable(fc: &Flowchart) -> bool {
    reachable(fc).len() == fc.len()
}

/// Decision nodes paired with their immediate postdominators.
///
/// This is the "junction map" used by the static analysis to know where a
/// branch's implicit flow ends. Decisions with no immediate postdominator
/// (no rejoin before HALT) keep their influence until the end.
pub fn junctions(fc: &Flowchart) -> Vec<(NodeId, Option<NodeId>)> {
    let pd = PostDominators::compute(fc);
    fc.iter()
        .filter(|(_, n, _)| matches!(n, crate::graph::Node::Decision { .. }))
        .map(|(id, _, _)| (id, pd.immediate(id)))
        .collect()
}

/// Successor kind helper: true/false targets of a decision.
pub fn decision_targets(fc: &Flowchart, id: NodeId) -> Option<(NodeId, NodeId)> {
    match fc.succ(id) {
        Succ::Cond { then_, else_ } => Some((then_, else_)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn reachable_covers_whole_lowered_graph() {
        let fc = parse(
            "program(2) { if x1 == 0 { y := 1; } else { y := 2; } while y > 0 { y := y - 1; } }",
        )
        .unwrap();
        assert!(fully_reachable(&fc));
    }

    #[test]
    fn predecessors_inverse_of_successors() {
        let fc = parse("program(1) { if x1 == 0 { y := 1; } else { y := 2; } }").unwrap();
        let preds = predecessors(&fc);
        for (id, _, _) in fc.iter() {
            for s in fc.succ_list(id) {
                assert!(preds[s.0].contains(&id));
            }
        }
    }

    #[test]
    fn ipdom_of_if_is_join_point() {
        // START -> D -> (A1 | A2) -> J(halt-side) ...
        let fc =
            parse("program(1) { if x1 == 0 { y := 1; } else { y := 2; } y := y + 1; }").unwrap();
        let pd = PostDominators::compute(&fc);
        // Find the decision node.
        let d = fc
            .iter()
            .find(|(_, n, _)| matches!(n, crate::graph::Node::Decision { .. }))
            .map(|(id, _, _)| id)
            .unwrap();
        let ipd = pd.immediate(d).expect("decision has ipdom");
        // The ipdom must postdominate both branch targets.
        let (t, e) = decision_targets(&fc, d).unwrap();
        assert!(pd.postdominates(ipd, t));
        assert!(pd.postdominates(ipd, e));
        // And it is not either branch head.
        assert_ne!(ipd, t);
        assert_ne!(ipd, e);
    }

    #[test]
    fn halt_postdominates_everything_in_straight_line() {
        let fc = parse("program(1) { y := x1; y := y + 1; }").unwrap();
        let pd = PostDominators::compute(&fc);
        let halt = fc.halts()[0];
        for (id, _, _) in fc.iter() {
            assert!(pd.postdominates(halt, id), "halt should postdominate {id}");
        }
    }

    #[test]
    fn halt_has_no_immediate_postdominator() {
        let fc = parse("program(1) { y := 1; }").unwrap();
        let pd = PostDominators::compute(&fc);
        assert_eq!(pd.immediate(fc.halts()[0]), None);
    }

    #[test]
    fn while_decision_ipdom_is_exit() {
        let fc = parse("program(1) { r1 := x1; while r1 > 0 { r1 := r1 - 1; } y := 5; }").unwrap();
        let d = fc
            .iter()
            .find(|(_, n, _)| matches!(n, crate::graph::Node::Decision { .. }))
            .map(|(id, _, _)| id)
            .unwrap();
        let pd = PostDominators::compute(&fc);
        let ipd = pd.immediate(d).expect("loop header has ipdom");
        // The ipdom is the false-branch target (the loop exit: y := 5).
        let (_, exit) = decision_targets(&fc, d).unwrap();
        assert_eq!(ipd, exit);
    }

    #[test]
    fn inputs_mentioned_collects_reads_and_writes() {
        let fc = parse("program(3) { y := x1; if x3 == 0 { y := 0; } }").unwrap();
        let set = inputs_mentioned(&fc);
        assert!(set.contains(1));
        assert!(!set.contains(2));
        assert!(set.contains(3));
    }

    #[test]
    fn junctions_lists_every_decision() {
        let fc =
            parse("program(2) { if x1 == 0 { y := 1; } else { y := 2; } if x2 == 0 { y := 3; } }")
                .unwrap();
        let j = junctions(&fc);
        assert_eq!(j.len(), 2);
        for (_, ipd) in j {
            assert!(ipd.is_some());
        }
    }
}
