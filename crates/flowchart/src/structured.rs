//! Structured statements and their lowering to flowchart graphs.
//!
//! The paper's transforms (Section 4) operate on "single-entry and
//! single-exit structures" — `if then else` and `while` constructs. This
//! module provides those constructs as a structured AST ([`Stmt`]) and a
//! [`lower`] function producing the corresponding flowchart. The parser
//! builds this AST; the transform library in `enf-static` rewrites it.

use crate::ast::{Expr, Pred, Var};
use crate::graph::{Flowchart, GraphError, Node, NodeId, PolicySpec, Succ};
use enf_core::IndexSet;

/// A structured statement.
#[derive(Clone, PartialEq, Debug)]
pub enum Stmt {
    /// `v := E`.
    Assign(Var, Expr),
    /// `if B { … } else { … }`.
    If(Pred, Vec<Stmt>, Vec<Stmt>),
    /// `while B { … }`.
    While(Pred, Vec<Stmt>),
    /// `setpolicy P;` — install a new active policy.
    SetPolicy(PolicySpec),
    /// `declassify(v: A ~> B);` — relabel `v`'s taint.
    Declassify(Var, IndexSet, IndexSet),
    /// Explicit early `halt`.
    Halt,
    /// No-op.
    Skip,
}

impl Stmt {
    /// Builds an assignment statement.
    pub fn assign(var: Var, expr: Expr) -> Stmt {
        Stmt::Assign(var, expr)
    }

    /// Builds an `if` with no else-branch.
    pub fn if_then(pred: Pred, then_: Vec<Stmt>) -> Stmt {
        Stmt::If(pred, then_, Vec::new())
    }
}

/// A structured program: arity plus statement list.
#[derive(Clone, PartialEq, Debug)]
pub struct StructuredProgram {
    /// Number of inputs `k`.
    pub arity: usize,
    /// Program body, executed in order; falling off the end halts.
    pub body: Vec<Stmt>,
}

impl StructuredProgram {
    /// Creates a structured program.
    pub fn new(arity: usize, body: Vec<Stmt>) -> Self {
        StructuredProgram { arity, body }
    }

    /// Lowers to a validated flowchart.
    pub fn lower(&self) -> Result<Flowchart, GraphError> {
        lower(self)
    }
}

/// A dangling forward edge awaiting its target.
#[derive(Clone, Copy, Debug)]
enum Patch {
    Only(NodeId),
    Then(NodeId),
    Else(NodeId),
}

struct Lowerer {
    nodes: Vec<Node>,
    succs: Vec<Succ>,
}

/// Entry/exit summary of a lowered statement sequence.
struct Fragment {
    /// First node of the fragment; `None` when the fragment is empty
    /// (pure pass-through).
    entry: Option<NodeId>,
    /// Dangling exits to be patched to whatever follows.
    exits: Vec<Patch>,
}

impl Lowerer {
    fn push(&mut self, node: Node, succ: Succ) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(node);
        self.succs.push(succ);
        id
    }

    fn patch(&mut self, patches: &[Patch], target: NodeId) {
        for p in patches {
            match *p {
                Patch::Only(n) => self.succs[n.0] = Succ::One(target),
                Patch::Then(n) => {
                    if let Succ::Cond { else_, .. } = self.succs[n.0] {
                        self.succs[n.0] = Succ::Cond {
                            then_: target,
                            else_,
                        };
                    }
                }
                Patch::Else(n) => {
                    if let Succ::Cond { then_, .. } = self.succs[n.0] {
                        self.succs[n.0] = Succ::Cond {
                            then_,
                            else_: target,
                        };
                    }
                }
            }
        }
    }

    fn lower_stmts(&mut self, stmts: &[Stmt]) -> Fragment {
        let mut entry: Option<NodeId> = None;
        let mut open: Vec<Patch> = Vec::new();
        let mut first = true;
        for stmt in stmts {
            let frag = self.lower_stmt(stmt);
            if let Some(e) = frag.entry {
                if first {
                    entry = Some(e);
                    first = false;
                } else {
                    self.patch(&open, e);
                    open.clear();
                }
                open = frag.exits;
            } else {
                // Skip: nothing to wire.
                continue;
            }
            if open.is_empty() {
                // Statement never falls through (halt on all paths); the
                // rest of the sequence is dead and deliberately dropped.
                break;
            }
        }
        Fragment { entry, exits: open }
    }

    fn lower_stmt(&mut self, stmt: &Stmt) -> Fragment {
        match stmt {
            Stmt::Skip => Fragment {
                entry: None,
                exits: Vec::new(),
            },
            Stmt::Assign(var, expr) => {
                let id = self.push(
                    Node::Assign {
                        var: *var,
                        expr: expr.clone(),
                    },
                    Succ::None,
                );
                Fragment {
                    entry: Some(id),
                    exits: vec![Patch::Only(id)],
                }
            }
            Stmt::SetPolicy(spec) => {
                let id = self.push(Node::SetPolicy { spec: *spec }, Succ::None);
                Fragment {
                    entry: Some(id),
                    exits: vec![Patch::Only(id)],
                }
            }
            Stmt::Declassify(var, from, to) => {
                let id = self.push(
                    Node::Declassify {
                        var: *var,
                        from: *from,
                        to: *to,
                    },
                    Succ::None,
                );
                Fragment {
                    entry: Some(id),
                    exits: vec![Patch::Only(id)],
                }
            }
            Stmt::Halt => {
                let id = self.push(Node::Halt, Succ::None);
                Fragment {
                    entry: Some(id),
                    exits: Vec::new(),
                }
            }
            Stmt::If(pred, then_body, else_body) => {
                let d = self.push(
                    Node::Decision { pred: pred.clone() },
                    // Placeholder; patched below.
                    Succ::Cond {
                        then_: NodeId(0),
                        else_: NodeId(0),
                    },
                );
                let mut exits = Vec::new();
                let tf = self.lower_stmts(then_body);
                match tf.entry {
                    Some(e) => {
                        if let Succ::Cond { else_, .. } = self.succs[d.0] {
                            self.succs[d.0] = Succ::Cond { then_: e, else_ };
                        }
                        exits.extend(tf.exits);
                    }
                    None => exits.push(Patch::Then(d)),
                }
                let ef = self.lower_stmts(else_body);
                match ef.entry {
                    Some(e) => {
                        if let Succ::Cond { then_, .. } = self.succs[d.0] {
                            self.succs[d.0] = Succ::Cond { then_, else_: e };
                        }
                        exits.extend(ef.exits);
                    }
                    None => exits.push(Patch::Else(d)),
                }
                Fragment {
                    entry: Some(d),
                    exits,
                }
            }
            Stmt::While(pred, body) => {
                let d = self.push(
                    Node::Decision { pred: pred.clone() },
                    Succ::Cond {
                        then_: NodeId(0),
                        else_: NodeId(0),
                    },
                );
                let bf = self.lower_stmts(body);
                match bf.entry {
                    Some(e) => {
                        if let Succ::Cond { else_, .. } = self.succs[d.0] {
                            self.succs[d.0] = Succ::Cond { then_: e, else_ };
                        }
                        // Back-edges to the loop header.
                        self.patch(&bf.exits, d);
                    }
                    None => {
                        // Empty body: `while p {}` spins on the test.
                        if let Succ::Cond { else_, .. } = self.succs[d.0] {
                            self.succs[d.0] = Succ::Cond { then_: d, else_ };
                        }
                    }
                }
                Fragment {
                    entry: Some(d),
                    exits: vec![Patch::Else(d)],
                }
            }
        }
    }
}

/// Lowers a structured program to a validated flowchart.
///
/// Node 0 is START; falling off the end of the body reaches an implicit
/// HALT box.
pub fn lower(p: &StructuredProgram) -> Result<Flowchart, GraphError> {
    let mut low = Lowerer {
        nodes: vec![Node::Start],
        succs: vec![Succ::One(NodeId(0))],
    };
    let frag = low.lower_stmts(&p.body);
    match frag.entry {
        Some(e) => {
            low.succs[0] = Succ::One(e);
            if !frag.exits.is_empty() {
                let halt = low.push(Node::Halt, Succ::None);
                let exits = frag.exits.clone();
                low.patch(&exits, halt);
            }
        }
        None => {
            // Empty program: START straight to HALT; output is y's initial 0.
            let halt = low.push(Node::Halt, Succ::None);
            low.succs[0] = Succ::One(halt);
        }
    }
    Flowchart::new(p.arity, low.nodes, low.succs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{run, ExecConfig};

    fn exec(p: &StructuredProgram, inputs: &[i64]) -> i64 {
        let fc = lower(p).expect("lowering failed");
        run(&fc, inputs, &ExecConfig::default()).unwrap_halted().y
    }

    #[test]
    fn empty_program_outputs_zero() {
        let p = StructuredProgram::new(1, vec![]);
        assert_eq!(exec(&p, &[5]), 0);
    }

    #[test]
    fn straight_line_sequence() {
        let p = StructuredProgram::new(
            1,
            vec![
                Stmt::assign(Var::Out, Expr::x(1)),
                Stmt::assign(Var::Out, crate::ast::add(Expr::y(), Expr::c(1))),
            ],
        );
        assert_eq!(exec(&p, &[41]), 42);
    }

    #[test]
    fn if_both_branches() {
        let p = StructuredProgram::new(
            1,
            vec![Stmt::If(
                Pred::eq(Expr::x(1), Expr::c(0)),
                vec![Stmt::assign(Var::Out, Expr::c(10))],
                vec![Stmt::assign(Var::Out, Expr::c(20))],
            )],
        );
        assert_eq!(exec(&p, &[0]), 10);
        assert_eq!(exec(&p, &[1]), 20);
    }

    #[test]
    fn if_with_empty_then_branch() {
        let p = StructuredProgram::new(
            1,
            vec![
                Stmt::assign(Var::Out, Expr::c(7)),
                Stmt::If(
                    Pred::eq(Expr::x(1), Expr::c(0)),
                    vec![],
                    vec![Stmt::assign(Var::Out, Expr::c(20))],
                ),
            ],
        );
        assert_eq!(exec(&p, &[0]), 7);
        assert_eq!(exec(&p, &[1]), 20);
    }

    #[test]
    fn if_with_empty_else_branch() {
        let p = StructuredProgram::new(
            1,
            vec![
                Stmt::assign(Var::Out, Expr::x(1)),
                Stmt::if_then(
                    Pred::eq(Expr::x(1), Expr::c(0)),
                    vec![Stmt::assign(Var::Out, Expr::c(99))],
                ),
            ],
        );
        assert_eq!(exec(&p, &[0]), 99);
        assert_eq!(exec(&p, &[3]), 3);
    }

    #[test]
    fn while_counts_down() {
        let p = StructuredProgram::new(
            1,
            vec![
                Stmt::assign(Var::Reg(1), Expr::x(1)),
                Stmt::While(
                    Pred::gt(Expr::r(1), Expr::c(0)),
                    vec![
                        Stmt::assign(Var::Reg(1), crate::ast::sub(Expr::r(1), Expr::c(1))),
                        Stmt::assign(Var::Out, crate::ast::add(Expr::y(), Expr::c(2))),
                    ],
                ),
            ],
        );
        assert_eq!(exec(&p, &[0]), 0);
        assert_eq!(exec(&p, &[4]), 8);
    }

    #[test]
    fn nested_structures() {
        // y := sum over i in 1..=x1 of (i even ? 1 : 0)
        let p = StructuredProgram::new(
            1,
            vec![
                Stmt::assign(Var::Reg(1), Expr::x(1)),
                Stmt::While(
                    Pred::gt(Expr::r(1), Expr::c(0)),
                    vec![
                        Stmt::If(
                            Pred::eq(
                                Expr::Mod(Box::new(Expr::r(1)), Box::new(Expr::c(2))),
                                Expr::c(0),
                            ),
                            vec![Stmt::assign(
                                Var::Out,
                                crate::ast::add(Expr::y(), Expr::c(1)),
                            )],
                            vec![],
                        ),
                        Stmt::assign(Var::Reg(1), crate::ast::sub(Expr::r(1), Expr::c(1))),
                    ],
                ),
            ],
        );
        assert_eq!(exec(&p, &[5]), 2);
        assert_eq!(exec(&p, &[6]), 3);
    }

    #[test]
    fn early_halt_stops_execution() {
        let p = StructuredProgram::new(
            1,
            vec![
                Stmt::assign(Var::Out, Expr::c(1)),
                Stmt::Halt,
                Stmt::assign(Var::Out, Expr::c(2)),
            ],
        );
        assert_eq!(exec(&p, &[0]), 1);
    }

    #[test]
    fn halt_inside_branch() {
        let p = StructuredProgram::new(
            1,
            vec![
                Stmt::If(
                    Pred::eq(Expr::x(1), Expr::c(0)),
                    vec![Stmt::assign(Var::Out, Expr::c(1)), Stmt::Halt],
                    vec![],
                ),
                Stmt::assign(Var::Out, Expr::c(2)),
            ],
        );
        assert_eq!(exec(&p, &[0]), 1);
        assert_eq!(exec(&p, &[5]), 2);
    }

    #[test]
    fn skip_is_identity() {
        let p = StructuredProgram::new(
            1,
            vec![Stmt::Skip, Stmt::assign(Var::Out, Expr::c(3)), Stmt::Skip],
        );
        assert_eq!(exec(&p, &[0]), 3);
    }

    #[test]
    fn empty_while_body_with_false_guard_exits() {
        let p = StructuredProgram::new(
            1,
            vec![
                Stmt::While(Pred::False, vec![]),
                Stmt::assign(Var::Out, Expr::c(9)),
            ],
        );
        assert_eq!(exec(&p, &[0]), 9);
    }

    #[test]
    fn lowered_graphs_validate() {
        let p = StructuredProgram::new(
            2,
            vec![Stmt::If(
                Pred::eq(Expr::x(1), Expr::c(0)),
                vec![Stmt::While(
                    Pred::gt(Expr::x(2), Expr::y()),
                    vec![Stmt::assign(
                        Var::Out,
                        crate::ast::add(Expr::y(), Expr::c(1)),
                    )],
                )],
                vec![Stmt::Halt],
            )],
        );
        let fc = lower(&p).unwrap();
        assert!(fc.validate().is_ok());
    }
}
