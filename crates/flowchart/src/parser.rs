//! A textual DSL for flowchart programs.
//!
//! Grammar (statements end in `;`, blocks in braces):
//!
//! ```text
//! program   ::= "program" "(" INT ")" labels? block
//! labels    ::= "labels" "{" (labeling | flowdecl)* "}"
//! labeling  ::= "x" INT ":" LEVEL ";"
//! flowdecl  ::= "flow" LEVEL "~>" LEVEL ";"
//! LEVEL     ::= "unclassified" | "confidential" | "secret" | "topsecret"
//! block     ::= "{" stmt* "}"
//! stmt      ::= var ":=" expr ";"
//!             | "if" pred block ("else" block)?
//!             | "while" pred block
//!             | "setpolicy" policy ";"
//!             | "declassify" "(" var ":" ints "~>" ints? ")" ";"
//!             | "halt" ";"
//!             | "skip" ";"
//! policy    ::= "allow" "(" ints? ")" | "p" INT
//! ints      ::= INT ("," INT)*
//! var       ::= "x" INT | "r" INT | "y"
//! expr      ::= term (("+" | "-") term)*
//! term      ::= factor (("*" | "/" | "%") factor)*
//! factor    ::= INT | var | "-" factor | "(" expr ")"
//!             | "ite" "(" pred "," expr "," expr ")"
//! pred      ::= conj ("||" conj)*
//! conj      ::= atom ("&&" atom)*
//! atom      ::= "true" | "false" | "!" atom | "(" pred ")"
//!             | expr cmp expr
//! cmp       ::= "==" | "!=" | "<" | "<=" | ">" | ">="
//! ```
//!
//! Line comments start with `//`.

use crate::ast::{CmpOp, Expr, Pred, Var};
use crate::graph::{Flowchart, PolicySpec};
use crate::structured::{lower, Stmt, StructuredProgram};
use enf_core::label::{Classification, IntransitiveFlow, Level};
use enf_core::{IndexSet, V};
use std::fmt;

/// A parsed flowchart together with the label declarations of its
/// optional `labels { … }` section: the per-input [`Classification`]
/// (defaulting every undeclared input to `unclassified`) and the
/// intransitive release edges (`flow secret ~> unclassified;`).
///
/// The [`Flowchart`] itself is unchanged by the section — labels are a
/// policy-side artifact, so fingerprints, pretty-printing and every
/// analysis over the graph are oblivious to them.
#[derive(Clone, Debug)]
pub struct LabeledProgram {
    /// The lowered program graph.
    pub flowchart: Flowchart,
    /// Input labeling from the `labels` section.
    pub classification: Classification<Level>,
    /// Sanctioned release edges from the `flow` declarations.
    pub flow: IntransitiveFlow<Level>,
}

/// A parse error with position information.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// Byte offset in the source.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Clone, PartialEq, Eq, Debug)]
enum Tok {
    Int(V),
    Ident(String),
    Sym(&'static str),
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        loop {
            while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
                self.pos += 1;
            }
            if self.pos + 1 < self.src.len() && &self.src[self.pos..self.pos + 2] == b"//" {
                while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                    self.pos += 1;
                }
            } else {
                break;
            }
        }
    }

    fn next(&mut self) -> Result<Option<(usize, Tok)>, ParseError> {
        self.skip_ws();
        if self.pos >= self.src.len() {
            return Ok(None);
        }
        let start = self.pos;
        let c = self.src[self.pos];
        let two = |s: &Lexer<'a>| {
            if s.pos + 1 < s.src.len() {
                Some(s.src[s.pos + 1])
            } else {
                None
            }
        };
        let tok = match c {
            b'0'..=b'9' => {
                let mut n: i128 = 0;
                while self.pos < self.src.len() && self.src[self.pos].is_ascii_digit() {
                    n = n * 10 + (self.src[self.pos] - b'0') as i128;
                    if n > V::MAX as i128 {
                        return Err(self.error("integer literal overflows i64"));
                    }
                    self.pos += 1;
                }
                Tok::Int(n as V)
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let mut s = String::new();
                while self.pos < self.src.len()
                    && (self.src[self.pos].is_ascii_alphanumeric() || self.src[self.pos] == b'_')
                {
                    s.push(self.src[self.pos] as char);
                    self.pos += 1;
                }
                Tok::Ident(s)
            }
            b':' if two(self) == Some(b'=') => {
                self.pos += 2;
                Tok::Sym(":=")
            }
            b':' => {
                self.pos += 1;
                Tok::Sym(":")
            }
            b'~' if two(self) == Some(b'>') => {
                self.pos += 2;
                Tok::Sym("~>")
            }
            b'=' if two(self) == Some(b'=') => {
                self.pos += 2;
                Tok::Sym("==")
            }
            b'!' if two(self) == Some(b'=') => {
                self.pos += 2;
                Tok::Sym("!=")
            }
            b'<' if two(self) == Some(b'=') => {
                self.pos += 2;
                Tok::Sym("<=")
            }
            b'>' if two(self) == Some(b'=') => {
                self.pos += 2;
                Tok::Sym(">=")
            }
            b'&' if two(self) == Some(b'&') => {
                self.pos += 2;
                Tok::Sym("&&")
            }
            b'|' if two(self) == Some(b'|') => {
                self.pos += 2;
                Tok::Sym("||")
            }
            b'&' => {
                self.pos += 1;
                Tok::Sym("&")
            }
            b'|' => {
                self.pos += 1;
                Tok::Sym("|")
            }
            b'<' => {
                self.pos += 1;
                Tok::Sym("<")
            }
            b'>' => {
                self.pos += 1;
                Tok::Sym(">")
            }
            b'!' => {
                self.pos += 1;
                Tok::Sym("!")
            }
            b'+' => {
                self.pos += 1;
                Tok::Sym("+")
            }
            b'-' => {
                self.pos += 1;
                Tok::Sym("-")
            }
            b'*' => {
                self.pos += 1;
                Tok::Sym("*")
            }
            b'/' => {
                self.pos += 1;
                Tok::Sym("/")
            }
            b'%' => {
                self.pos += 1;
                Tok::Sym("%")
            }
            b'(' => {
                self.pos += 1;
                Tok::Sym("(")
            }
            b')' => {
                self.pos += 1;
                Tok::Sym(")")
            }
            b'{' => {
                self.pos += 1;
                Tok::Sym("{")
            }
            b'}' => {
                self.pos += 1;
                Tok::Sym("}")
            }
            b';' => {
                self.pos += 1;
                Tok::Sym(";")
            }
            b',' => {
                self.pos += 1;
                Tok::Sym(",")
            }
            other => {
                return Err(self.error(format!("unexpected character {:?}", other as char)));
            }
        };
        Ok(Some((start, tok)))
    }
}

struct Parser {
    toks: Vec<(usize, Tok)>,
    at: usize,
    src_len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.at).map(|(_, t)| t)
    }

    fn offset(&self) -> usize {
        self.toks
            .get(self.at)
            .map(|(o, _)| *o)
            .unwrap_or(self.src_len)
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.offset(),
            message: message.into(),
        }
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.at).map(|(_, t)| t.clone());
        if t.is_some() {
            self.at += 1;
        }
        t
    }

    fn expect_sym(&mut self, sym: &str) -> Result<(), ParseError> {
        match self.peek() {
            Some(Tok::Sym(s)) if *s == sym => {
                self.at += 1;
                Ok(())
            }
            other => Err(self.error(format!("expected `{sym}`, found {other:?}"))),
        }
    }

    fn eat_sym(&mut self, sym: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Sym(s)) if *s == sym) {
            self.at += 1;
            true
        } else {
            false
        }
    }

    fn expect_int(&mut self) -> Result<V, ParseError> {
        match self.bump() {
            Some(Tok::Int(n)) => Ok(n),
            other => Err(self.error(format!("expected integer, found {other:?}"))),
        }
    }

    fn ident_to_var(&self, s: &str) -> Option<Var> {
        if s == "y" {
            return Some(Var::Out);
        }
        let (head, rest) = s.split_at(1);
        let idx: usize = rest.parse().ok()?;
        if idx == 0 {
            return None;
        }
        match head {
            "x" => Some(Var::Input(idx)),
            "r" => Some(Var::Reg(idx)),
            _ => None,
        }
    }

    fn program(&mut self) -> Result<(StructuredProgram, ParsedLabels), ParseError> {
        match self.bump() {
            Some(Tok::Ident(ref s)) if s == "program" => {}
            other => return Err(self.error(format!("expected `program`, found {other:?}"))),
        }
        self.expect_sym("(")?;
        let k = self.expect_int()?;
        if k < 0 || k > enf_core::IndexSet::MAX_INDEX as V {
            return Err(self.error("arity out of range"));
        }
        self.expect_sym(")")?;
        let labels = self.labels_section(k as usize)?;
        let body = self.block()?;
        if self.peek().is_some() {
            return Err(self.error("trailing input after program"));
        }
        Ok((StructuredProgram::new(k as usize, body), labels))
    }

    /// The optional `labels { … }` section between the arity and the
    /// body: per-input level declarations (`x1: secret;`, defaulting to
    /// `unclassified`) and release edges (`flow secret ~> unclassified;`).
    fn labels_section(&mut self, k: usize) -> Result<ParsedLabels, ParseError> {
        let mut labels = vec![Level::Unclassified; k];
        let mut declared = vec![false; k];
        let mut edges = Vec::new();
        if !matches!(self.peek(), Some(Tok::Ident(s)) if s == "labels") {
            return Ok(ParsedLabels { labels, edges });
        }
        self.at += 1;
        self.expect_sym("{")?;
        while !self.eat_sym("}") {
            match self.bump() {
                Some(Tok::Ident(ref s)) if s == "flow" => {
                    let from = self.level_name()?;
                    self.expect_sym("~>")?;
                    let to = self.level_name()?;
                    self.expect_sym(";")?;
                    edges.push((from, to));
                }
                Some(Tok::Ident(ref s)) => {
                    let Some(Var::Input(i)) = self.ident_to_var(s) else {
                        return Err(self.error(format!(
                            "labels section expects `x<i>: LEVEL;` or `flow LEVEL ~> LEVEL;`, found `{s}`"
                        )));
                    };
                    if i > k {
                        return Err(self.error(format!("label for x{i} exceeds arity {k}")));
                    }
                    if declared[i - 1] {
                        return Err(self.error(format!("duplicate label for x{i}")));
                    }
                    declared[i - 1] = true;
                    self.expect_sym(":")?;
                    labels[i - 1] = self.level_name()?;
                    self.expect_sym(";")?;
                }
                other => return Err(self.error(format!("expected label entry, found {other:?}"))),
            }
        }
        Ok(ParsedLabels { labels, edges })
    }

    /// A classification level by its lowercase name.
    fn level_name(&mut self) -> Result<Level, ParseError> {
        match self.bump() {
            Some(Tok::Ident(ref s)) => {
                Level::parse_name(s).ok_or_else(|| self.error(format!("unknown level `{s}`")))
            }
            other => Err(self.error(format!("expected level name, found {other:?}"))),
        }
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect_sym("{")?;
        let mut stmts = Vec::new();
        while !self.eat_sym("}") {
            if self.peek().is_none() {
                return Err(self.error("unterminated block"));
            }
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        match self.peek() {
            Some(Tok::Ident(s)) if s == "if" => {
                self.at += 1;
                let pred = self.pred()?;
                let then_ = self.block()?;
                let else_ = if matches!(self.peek(), Some(Tok::Ident(s)) if s == "else") {
                    self.at += 1;
                    self.block()?
                } else {
                    Vec::new()
                };
                Ok(Stmt::If(pred, then_, else_))
            }
            Some(Tok::Ident(s)) if s == "while" => {
                self.at += 1;
                let pred = self.pred()?;
                let body = self.block()?;
                Ok(Stmt::While(pred, body))
            }
            Some(Tok::Ident(s)) if s == "setpolicy" => {
                self.at += 1;
                let spec = self.policy_spec()?;
                self.expect_sym(";")?;
                Ok(Stmt::SetPolicy(spec))
            }
            Some(Tok::Ident(s)) if s == "declassify" => {
                self.at += 1;
                self.expect_sym("(")?;
                let var = match self.bump() {
                    Some(Tok::Ident(s)) => self
                        .ident_to_var(&s)
                        .ok_or_else(|| self.error(format!("unknown variable `{s}`")))?,
                    other => return Err(self.error(format!("expected variable, found {other:?}"))),
                };
                self.expect_sym(":")?;
                let from = self.index_list(false)?;
                self.expect_sym("~>")?;
                let to = self.index_list(true)?;
                self.expect_sym(")")?;
                self.expect_sym(";")?;
                Ok(Stmt::Declassify(var, from, to))
            }
            Some(Tok::Ident(s)) if s == "halt" => {
                self.at += 1;
                self.expect_sym(";")?;
                Ok(Stmt::Halt)
            }
            Some(Tok::Ident(s)) if s == "skip" => {
                self.at += 1;
                self.expect_sym(";")?;
                Ok(Stmt::Skip)
            }
            Some(Tok::Ident(s)) => {
                let s = s.clone();
                let var = self
                    .ident_to_var(&s)
                    .ok_or_else(|| self.error(format!("unknown variable `{s}`")))?;
                self.at += 1;
                self.expect_sym(":=")?;
                let e = self.expr()?;
                self.expect_sym(";")?;
                Ok(Stmt::Assign(var, e))
            }
            other => Err(self.error(format!("expected statement, found {other:?}"))),
        }
    }

    /// One input index for a policy set: positive and representable.
    fn policy_index(&mut self) -> Result<usize, ParseError> {
        let n = self.expect_int()?;
        if n < 1 || n > IndexSet::MAX_INDEX as V {
            return Err(self.error("policy index out of range"));
        }
        Ok(n as usize)
    }

    /// A comma-separated index list; empty allowed only when
    /// `may_be_empty` (the list then ends at the lookahead `~>` or `)`).
    fn index_list(&mut self, may_be_empty: bool) -> Result<IndexSet, ParseError> {
        let mut set = IndexSet::empty();
        if may_be_empty && !matches!(self.peek(), Some(Tok::Int(_))) {
            return Ok(set);
        }
        set.insert(self.policy_index()?);
        while self.eat_sym(",") {
            set.insert(self.policy_index()?);
        }
        Ok(set)
    }

    /// `allow(i1, …, im)` or a symbolic slot `p<n>`.
    fn policy_spec(&mut self) -> Result<PolicySpec, ParseError> {
        match self.bump() {
            Some(Tok::Ident(ref s)) if s == "allow" => {
                self.expect_sym("(")?;
                let set = if self.eat_sym(")") {
                    IndexSet::empty()
                } else {
                    let set = self.index_list(false)?;
                    self.expect_sym(")")?;
                    set
                };
                Ok(PolicySpec::Concrete(set))
            }
            Some(Tok::Ident(ref s)) if s.starts_with('p') => {
                let slot: usize = s[1..]
                    .parse()
                    .map_err(|_| self.error(format!("unknown policy `{s}`")))?;
                if slot == 0 {
                    return Err(self.error("policy slot p0 is invalid"));
                }
                Ok(PolicySpec::Slot(slot))
            }
            other => Err(self.error(format!("expected policy, found {other:?}"))),
        }
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.band_expr()?;
        while self.eat_sym("|") {
            e = Expr::BOr(Box::new(e), Box::new(self.band_expr()?));
        }
        Ok(e)
    }

    fn band_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.sum()?;
        while self.eat_sym("&") {
            e = Expr::BAnd(Box::new(e), Box::new(self.sum()?));
        }
        Ok(e)
    }

    fn sum(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.term()?;
        loop {
            if self.eat_sym("+") {
                e = Expr::Add(Box::new(e), Box::new(self.term()?));
            } else if self.eat_sym("-") {
                e = Expr::Sub(Box::new(e), Box::new(self.term()?));
            } else {
                return Ok(e);
            }
        }
    }

    fn term(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.factor()?;
        loop {
            if self.eat_sym("*") {
                e = Expr::Mul(Box::new(e), Box::new(self.factor()?));
            } else if self.eat_sym("/") {
                e = Expr::Div(Box::new(e), Box::new(self.factor()?));
            } else if self.eat_sym("%") {
                e = Expr::Mod(Box::new(e), Box::new(self.factor()?));
            } else {
                return Ok(e);
            }
        }
    }

    fn factor(&mut self) -> Result<Expr, ParseError> {
        if self.eat_sym("-") {
            return Ok(Expr::Neg(Box::new(self.factor()?)));
        }
        if self.eat_sym("(") {
            let e = self.expr()?;
            self.expect_sym(")")?;
            return Ok(e);
        }
        match self.bump() {
            Some(Tok::Int(n)) => Ok(Expr::Const(n)),
            Some(Tok::Ident(s)) if s == "ite" => {
                self.expect_sym("(")?;
                let p = self.pred()?;
                self.expect_sym(",")?;
                let t = self.expr()?;
                self.expect_sym(",")?;
                let e = self.expr()?;
                self.expect_sym(")")?;
                Ok(Expr::Ite(Box::new(p), Box::new(t), Box::new(e)))
            }
            Some(Tok::Ident(s)) => self
                .ident_to_var(&s)
                .map(Expr::Var)
                .ok_or_else(|| self.error(format!("unknown variable `{s}`"))),
            other => Err(self.error(format!("expected expression, found {other:?}"))),
        }
    }

    fn pred(&mut self) -> Result<Pred, ParseError> {
        let mut p = self.conj()?;
        while self.eat_sym("||") {
            p = Pred::Or(Box::new(p), Box::new(self.conj()?));
        }
        Ok(p)
    }

    fn conj(&mut self) -> Result<Pred, ParseError> {
        let mut p = self.atom()?;
        while self.eat_sym("&&") {
            p = Pred::And(Box::new(p), Box::new(self.atom()?));
        }
        Ok(p)
    }

    fn atom(&mut self) -> Result<Pred, ParseError> {
        if self.eat_sym("!") {
            return Ok(Pred::Not(Box::new(self.atom()?)));
        }
        if matches!(self.peek(), Some(Tok::Ident(s)) if s == "true") {
            self.at += 1;
            return Ok(Pred::True);
        }
        if matches!(self.peek(), Some(Tok::Ident(s)) if s == "false") {
            self.at += 1;
            return Ok(Pred::False);
        }
        // `(` may open a parenthesized predicate or a parenthesized
        // expression; try the predicate reading first and fall back.
        if matches!(self.peek(), Some(Tok::Sym("("))) {
            let save = self.at;
            self.at += 1;
            if let Ok(p) = self.pred() {
                if self.eat_sym(")") {
                    // Could still be `(expr) < expr` if p parsed as a
                    // comparison already consuming the operator; a full
                    // predicate in parens must not be followed by a
                    // comparison operator.
                    if !matches!(
                        self.peek(),
                        Some(Tok::Sym(
                            "==" | "!="
                                | "<"
                                | "<="
                                | ">"
                                | ">="
                                | "+"
                                | "-"
                                | "*"
                                | "/"
                                | "%"
                                | "&"
                                | "|"
                        ))
                    ) {
                        return Ok(p);
                    }
                }
            }
            self.at = save;
        }
        let a = self.expr()?;
        let op = match self.bump() {
            Some(Tok::Sym("==")) => CmpOp::Eq,
            Some(Tok::Sym("!=")) => CmpOp::Ne,
            Some(Tok::Sym("<")) => CmpOp::Lt,
            Some(Tok::Sym("<=")) => CmpOp::Le,
            Some(Tok::Sym(">")) => CmpOp::Gt,
            Some(Tok::Sym(">=")) => CmpOp::Ge,
            other => return Err(self.error(format!("expected comparison, found {other:?}"))),
        };
        let b = self.expr()?;
        Ok(Pred::Cmp(op, Box::new(a), Box::new(b)))
    }
}

/// Raw label declarations collected by the parser.
struct ParsedLabels {
    labels: Vec<Level>,
    edges: Vec<(Level, Level)>,
}

fn parse_full(src: &str) -> Result<(StructuredProgram, ParsedLabels), ParseError> {
    let mut lex = Lexer::new(src);
    let mut toks = Vec::new();
    while let Some(t) = lex.next()? {
        toks.push(t);
    }
    let mut p = Parser {
        toks,
        at: 0,
        src_len: src.len(),
    };
    p.program()
}

/// Parses the DSL into a structured program, ignoring any `labels`
/// section.
pub fn parse_structured(src: &str) -> Result<StructuredProgram, ParseError> {
    parse_full(src).map(|(sp, _)| sp)
}

/// Parses the DSL, lowers to a validated flowchart, and keeps the label
/// declarations.
///
/// # Examples
///
/// ```
/// use enf_core::label::Level;
///
/// let lp = enf_flowchart::parse_labeled(
///     "program(2)
///      labels { x1: secret; flow secret ~> unclassified; }
///      { y := x1 + x2; }",
/// )
/// .unwrap();
/// assert_eq!(lp.classification.label(1), &Level::Secret);
/// assert_eq!(lp.classification.label(2), &Level::Unclassified);
/// assert_eq!(lp.flow.edges().len(), 1);
/// ```
pub fn parse_labeled(src: &str) -> Result<LabeledProgram, ParseError> {
    let (sp, raw) = parse_full(src)?;
    let flowchart = lower(&sp).map_err(|e| ParseError {
        offset: 0,
        message: format!("lowering failed: {e}"),
    })?;
    Ok(LabeledProgram {
        flowchart,
        classification: Classification::new(raw.labels),
        flow: IntransitiveFlow::new(raw.edges),
    })
}

/// Parses the DSL and lowers to a validated flowchart.
///
/// # Examples
///
/// ```
/// let fc = enf_flowchart::parse("program(1) { y := x1 + 1; }").unwrap();
/// assert_eq!(fc.arity(), 1);
/// ```
pub fn parse(src: &str) -> Result<Flowchart, ParseError> {
    let sp = parse_structured(src)?;
    lower(&sp).map_err(|e| ParseError {
        offset: 0,
        message: format!("lowering failed: {e}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{run, ExecConfig};

    fn eval(src: &str, inputs: &[V]) -> V {
        let fc = parse(src).expect("parse failed");
        run(&fc, inputs, &ExecConfig::default()).unwrap_halted().y
    }

    #[test]
    fn precedence_mul_over_add() {
        assert_eq!(eval("program(0) { y := 2 + 3 * 4; }", &[]), 14);
        assert_eq!(eval("program(0) { y := (2 + 3) * 4; }", &[]), 20);
    }

    #[test]
    fn left_associativity() {
        assert_eq!(eval("program(0) { y := 10 - 3 - 2; }", &[]), 5);
        assert_eq!(eval("program(0) { y := 24 / 4 / 3; }", &[]), 2);
    }

    #[test]
    fn unary_minus() {
        assert_eq!(eval("program(1) { y := -x1 + 1; }", &[5]), -4);
        assert_eq!(eval("program(0) { y := --3; }", &[]), 3);
    }

    #[test]
    fn modulo() {
        assert_eq!(eval("program(0) { y := 17 % 5; }", &[]), 2);
    }

    #[test]
    fn ite_expression() {
        let src = "program(1) { y := ite(x1 == 1, 1, 2); }";
        assert_eq!(eval(src, &[1]), 1);
        assert_eq!(eval(src, &[5]), 2);
    }

    #[test]
    fn labels_section_parses_and_defaults() {
        let lp = parse_labeled(
            "program(3)
             labels {
                 x1: secret;
                 x3: confidential;
                 flow secret ~> unclassified;
             }
             { y := x1 + x2 + x3; }",
        )
        .unwrap();
        assert_eq!(lp.classification.label(1), &Level::Secret);
        assert_eq!(lp.classification.label(2), &Level::Unclassified);
        assert_eq!(lp.classification.label(3), &Level::Confidential);
        assert_eq!(lp.flow.edges(), &[(Level::Secret, Level::Unclassified)][..]);
        // The plain parser accepts the same source, ignoring labels.
        assert_eq!(
            lp.flowchart,
            parse(
                "program(3)
             labels {
                 x1: secret;
                 x3: confidential;
                 flow secret ~> unclassified;
             }
             { y := x1 + x2 + x3; }",
            )
            .unwrap()
        );
    }

    #[test]
    fn unlabeled_program_is_all_public() {
        let lp = parse_labeled("program(2) { y := x1; }").unwrap();
        assert_eq!(lp.classification.label(1), &Level::Unclassified);
        assert_eq!(lp.classification.label(2), &Level::Unclassified);
        assert!(lp.flow.is_transitive());
    }

    #[test]
    fn labels_section_rejects_bad_entries() {
        for (src, what) in [
            (
                "program(1) labels { x2: secret; } { y := 0; }",
                "exceeds arity",
            ),
            (
                "program(1) labels { x1: secret; x1: secret; } { y := 0; }",
                "duplicate label",
            ),
            (
                "program(1) labels { x1: classified; } { y := 0; }",
                "unknown level",
            ),
            (
                "program(1) labels { r1: secret; } { y := 0; }",
                "labels section expects",
            ),
        ] {
            let err = parse_labeled(src).unwrap_err();
            assert!(err.message.contains(what), "{src}: {}", err.message);
        }
    }

    #[test]
    fn comments_are_skipped() {
        let src = "program(0) { // set output\n y := 3; // done\n }";
        assert_eq!(eval(src, &[]), 3);
    }

    #[test]
    fn boolean_connectives() {
        let src = "program(2) { if x1 == 0 && x2 == 0 { y := 1; } else { y := 0; } }";
        assert_eq!(eval(src, &[0, 0]), 1);
        assert_eq!(eval(src, &[0, 1]), 0);
        let src = "program(2) { if x1 == 0 || x2 == 0 { y := 1; } else { y := 0; } }";
        assert_eq!(eval(src, &[1, 0]), 1);
        assert_eq!(eval(src, &[1, 1]), 0);
    }

    #[test]
    fn negation_and_parens_in_pred() {
        let src = "program(1) { if !(x1 == 0) { y := 1; } }";
        assert_eq!(eval(src, &[5]), 1);
        assert_eq!(eval(src, &[0]), 0);
    }

    #[test]
    fn parenthesized_expression_in_comparison() {
        let src = "program(1) { if (x1 + 1) > 3 { y := 1; } }";
        assert_eq!(eval(src, &[3]), 1);
        assert_eq!(eval(src, &[2]), 0);
    }

    #[test]
    fn nested_parenthesized_predicate() {
        let src = "program(2) { if ((x1 == 0) && (x2 == 0)) || x1 == 9 { y := 1; } }";
        assert_eq!(eval(src, &[0, 0]), 1);
        assert_eq!(eval(src, &[9, 5]), 1);
        assert_eq!(eval(src, &[1, 0]), 0);
    }

    #[test]
    fn halt_and_skip_statements() {
        assert_eq!(eval("program(0) { y := 1; halt; y := 2; }", &[]), 1);
        assert_eq!(eval("program(0) { skip; y := 4; }", &[]), 4);
    }

    #[test]
    fn errors_unknown_variable() {
        let err = parse("program(0) { z := 1; }").unwrap_err();
        assert!(err.message.contains("unknown variable"), "{err}");
    }

    #[test]
    fn errors_missing_semicolon() {
        assert!(parse("program(0) { y := 1 }").is_err());
    }

    #[test]
    fn errors_x0_and_r0_rejected() {
        assert!(parse("program(1) { y := x0; }").is_err());
        assert!(parse("program(1) { r0 := 1; }").is_err());
    }

    #[test]
    fn errors_arity_out_of_range() {
        assert!(parse("program(99) { y := 1; }").is_err());
    }

    #[test]
    fn errors_trailing_garbage() {
        assert!(parse("program(0) { y := 1; } extra").is_err());
    }

    #[test]
    fn errors_unterminated_block() {
        assert!(parse("program(0) { y := 1;").is_err());
    }

    #[test]
    fn errors_literal_overflow() {
        assert!(parse("program(0) { y := 99999999999999999999; }").is_err());
    }

    #[test]
    fn error_display_carries_offset() {
        let err = parse("program(0) { y := @; }").unwrap_err();
        assert!(err.to_string().contains("parse error at byte"));
    }

    #[test]
    fn input_variable_indices_checked_against_arity() {
        assert!(parse("program(1) { y := x2; }").is_err());
        assert!(parse("program(2) { y := x2; }").is_ok());
    }

    #[test]
    fn structured_roundtrip_shape() {
        let sp = parse_structured("program(1) { if x1 == 0 { y := 1; } }").unwrap();
        assert_eq!(sp.arity, 1);
        assert_eq!(sp.body.len(), 1);
        assert!(matches!(sp.body[0], Stmt::If(..)));
    }
}
