//! Pretty-printing of expressions, predicates and flowcharts.
//!
//! Expressions and predicates print in the parser's concrete syntax (so
//! they can be re-parsed); whole flowcharts print as a node listing, since
//! an arbitrary graph need not be re-structurable into the DSL.

use crate::ast::{Expr, Pred, Var};
use crate::graph::{Flowchart, Node, Succ};
use enf_core::IndexSet;
use std::fmt::Write as _;

/// Renders an index set as the parser's bare comma list (`1, 3`).
fn index_list(s: &IndexSet) -> String {
    let mut out = String::new();
    for (n, i) in s.iter().enumerate() {
        if n > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{i}");
    }
    out
}

/// Renders a `declassify` statement body in concrete syntax.
pub fn declassify_to_string(var: Var, from: &IndexSet, to: &IndexSet) -> String {
    if to.is_empty() {
        format!("declassify({var}: {} ~>)", index_list(from))
    } else {
        format!(
            "declassify({var}: {} ~> {})",
            index_list(from),
            index_list(to)
        )
    }
}

/// Renders an expression in concrete syntax (fully parenthesized where
/// precedence demands it).
pub fn expr_to_string(e: &Expr) -> String {
    expr_prec(e, 0)
}

fn expr_prec(e: &Expr, min: u8) -> String {
    // Precedence levels: 1 = additive, 2 = multiplicative, 3 = unary/atom.
    // Bitwise `|` and `&` sit below additive at 0 (or) and between 0 and 1
    // (and); both print fully parenthesized inside anything tighter.
    match e {
        Expr::Const(v) => {
            if *v < 0 {
                format!("({v})")
            } else {
                v.to_string()
            }
        }
        Expr::Var(v) => v.to_string(),
        Expr::Neg(a) => wrap(format!("-{}", expr_prec(a, 3)), 3, min),
        Expr::Add(a, b) => wrap(format!("{} + {}", expr_prec(a, 1), expr_prec(b, 2)), 1, min),
        Expr::Sub(a, b) => wrap(format!("{} - {}", expr_prec(a, 1), expr_prec(b, 2)), 1, min),
        Expr::Mul(a, b) => wrap(format!("{} * {}", expr_prec(a, 2), expr_prec(b, 3)), 2, min),
        Expr::Div(a, b) => wrap(format!("{} / {}", expr_prec(a, 2), expr_prec(b, 3)), 2, min),
        Expr::Mod(a, b) => wrap(format!("{} % {}", expr_prec(a, 2), expr_prec(b, 3)), 2, min),
        Expr::BOr(a, b) => wrap(format!("{} | {}", expr_prec(a, 1), expr_prec(b, 1)), 0, min),
        Expr::BAnd(a, b) => wrap(format!("{} & {}", expr_prec(a, 1), expr_prec(b, 1)), 0, min),
        Expr::Ite(p, t, f) => format!(
            "ite({}, {}, {})",
            pred_to_string(p),
            expr_prec(t, 0),
            expr_prec(f, 0)
        ),
    }
}

fn wrap(s: String, prec: u8, min: u8) -> String {
    if prec < min {
        format!("({s})")
    } else {
        s
    }
}

/// Renders a predicate in concrete syntax.
pub fn pred_to_string(p: &Pred) -> String {
    pred_prec(p, 0)
}

fn pred_prec(p: &Pred, min: u8) -> String {
    // Levels: 1 = ||, 2 = &&, 3 = atom.
    match p {
        Pred::True => "true".into(),
        Pred::False => "false".into(),
        Pred::Cmp(op, a, b) => format!("{} {op} {}", expr_prec(a, 0), expr_prec(b, 0)),
        Pred::Not(q) => format!("!({})", pred_prec(q, 0)),
        Pred::And(a, b) => {
            let s = format!("{} && {}", pred_prec(a, 2), pred_prec(b, 3));
            if min > 2 {
                format!("({s})")
            } else {
                s
            }
        }
        Pred::Or(a, b) => {
            let s = format!("{} || {}", pred_prec(a, 1), pred_prec(b, 2));
            if min > 1 {
                format!("({s})")
            } else {
                s
            }
        }
    }
}

/// Renders a flowchart as a readable node listing.
///
/// ```text
/// program(2), 5 nodes
/// n0: START -> n1
/// n1: if x1 == 0 -> n2 | n3
/// ...
/// ```
pub fn flowchart_to_string(fc: &Flowchart) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "program({}), {} nodes", fc.arity(), fc.len());
    for (id, node, succ) in fc.iter() {
        let body = match node {
            Node::Start => "START".to_string(),
            Node::Assign { var, expr } => format!("{var} := {}", expr_to_string(expr)),
            Node::Decision { pred } => format!("if {}", pred_to_string(pred)),
            Node::SetPolicy { spec } => format!("setpolicy {spec}"),
            Node::Declassify { var, from, to } => declassify_to_string(*var, from, to),
            Node::Halt => "HALT".to_string(),
        };
        let arrows = match succ {
            Succ::None => String::new(),
            Succ::One(n) => format!(" -> {n}"),
            Succ::Cond { then_, else_ } => format!(" -> {then_} | {else_}"),
        };
        let _ = writeln!(s, "{id}: {body}{arrows}");
    }
    s
}

/// Renders a structured program in the parser's concrete syntax.
///
/// The result re-parses to a program with identical semantics (the
/// round-trip property tests in this module and in
/// `tests/language_properties.rs` rely on it).
pub fn structured_to_string(p: &crate::structured::StructuredProgram) -> String {
    let mut s = format!("program({}) {{\n", p.arity);
    for st in &p.body {
        stmt_to_string(st, 1, &mut s);
    }
    s.push_str("}\n");
    s
}

fn stmt_to_string(st: &crate::structured::Stmt, depth: usize, out: &mut String) {
    use crate::structured::Stmt;
    let pad = "    ".repeat(depth);
    match st {
        Stmt::Assign(v, e) => {
            let _ = writeln!(out, "{pad}{v} := {};", expr_to_string(e));
        }
        Stmt::Halt => {
            let _ = writeln!(out, "{pad}halt;");
        }
        Stmt::Skip => {
            let _ = writeln!(out, "{pad}skip;");
        }
        Stmt::SetPolicy(spec) => {
            let _ = writeln!(out, "{pad}setpolicy {spec};");
        }
        Stmt::Declassify(v, from, to) => {
            let _ = writeln!(out, "{pad}{};", declassify_to_string(*v, from, to));
        }
        Stmt::If(p, t, e) => {
            let _ = writeln!(out, "{pad}if {} {{", pred_to_string(p));
            for s in t {
                stmt_to_string(s, depth + 1, out);
            }
            if e.is_empty() {
                let _ = writeln!(out, "{pad}}}");
            } else {
                let _ = writeln!(out, "{pad}}} else {{");
                for s in e {
                    stmt_to_string(s, depth + 1, out);
                }
                let _ = writeln!(out, "{pad}}}");
            }
        }
        Stmt::While(p, b) => {
            let _ = writeln!(out, "{pad}while {} {{", pred_to_string(p));
            for s in b {
                stmt_to_string(s, depth + 1, out);
            }
            let _ = writeln!(out, "{pad}}}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{add, ite, mul, sub, Var};
    use crate::parser::{parse, parse_structured};

    #[test]
    fn expr_precedence_printed_minimally() {
        // (2 + 3) * 4 needs parens; 2 + 3 * 4 does not.
        let e = mul(add(Expr::c(2), Expr::c(3)), Expr::c(4));
        assert_eq!(expr_to_string(&e), "(2 + 3) * 4");
        let e = add(Expr::c(2), mul(Expr::c(3), Expr::c(4)));
        assert_eq!(expr_to_string(&e), "2 + 3 * 4");
    }

    #[test]
    fn subtraction_right_operand_parenthesized() {
        // 10 - (3 - 2) must keep its parens.
        let e = sub(Expr::c(10), sub(Expr::c(3), Expr::c(2)));
        assert_eq!(expr_to_string(&e), "10 - (3 - 2)");
        // (10 - 3) - 2 prints flat (left associativity).
        let e = sub(sub(Expr::c(10), Expr::c(3)), Expr::c(2));
        assert_eq!(expr_to_string(&e), "10 - 3 - 2");
    }

    #[test]
    fn negative_literal_parenthesized() {
        let e = add(Expr::c(-3), Expr::c(1));
        assert_eq!(expr_to_string(&e), "(-3) + 1");
    }

    #[test]
    fn ite_prints_function_style() {
        let e = ite(Pred::eq(Expr::x(1), Expr::c(1)), Expr::c(1), Expr::c(2));
        assert_eq!(expr_to_string(&e), "ite(x1 == 1, 1, 2)");
    }

    #[test]
    fn pred_printing() {
        let p = Pred::And(
            Box::new(Pred::eq(Expr::x(1), Expr::c(0))),
            Box::new(Pred::Or(
                Box::new(Pred::gt(Expr::x(2), Expr::c(3))),
                Box::new(Pred::True),
            )),
        );
        assert_eq!(pred_to_string(&p), "x1 == 0 && (x2 > 3 || true)");
    }

    #[test]
    fn printed_exprs_reparse_to_same_value() {
        // Round-trip through the parser: print an expression, embed it in a
        // program, check semantics match.
        let exprs = [
            mul(add(Expr::c(2), Expr::c(3)), Expr::c(4)),
            sub(Expr::c(10), sub(Expr::c(3), Expr::c(2))),
            ite(Pred::gt(Expr::c(1), Expr::c(0)), Expr::c(5), Expr::c(6)),
            Expr::Neg(Box::new(add(Expr::c(1), Expr::c(2)))),
            Expr::Div(Box::new(Expr::c(7)), Box::new(Expr::c(2))),
        ];
        for e in exprs {
            let printed = expr_to_string(&e);
            let src = format!("program(0) {{ y := {printed}; }}");
            let sp = parse_structured(&src)
                .unwrap_or_else(|err| panic!("printed `{printed}` failed to reparse: {err}"));
            match &sp.body[0] {
                crate::structured::Stmt::Assign(Var::Out, back) => {
                    assert_eq!(back.eval(&|_| 0), e.eval(&|_| 0), "mismatch for {printed}");
                }
                other => panic!("unexpected stmt {other:?}"),
            }
        }
    }

    #[test]
    fn structured_roundtrip_preserves_semantics() {
        use crate::generate::{random_structured, GenConfig};
        use crate::interp::{run, ExecConfig};
        use crate::structured::lower;
        let cfg = GenConfig::default();
        for seed in 0..40 {
            let p = random_structured(seed, &cfg);
            let printed = structured_to_string(&p);
            let back = parse_structured(&printed)
                .unwrap_or_else(|e| panic!("seed {seed}: reparse failed: {e}\n{printed}"));
            let fa = lower(&p).unwrap();
            let fb = lower(&back).unwrap();
            for x1 in -1..=1 {
                for x2 in -1..=1 {
                    let a = run(&fa, &[x1, x2], &ExecConfig::with_fuel(100_000));
                    let b = run(&fb, &[x1, x2], &ExecConfig::with_fuel(100_000));
                    assert_eq!(
                        a.value(),
                        b.value(),
                        "seed {seed} differs at ({x1}, {x2})\n{printed}"
                    );
                }
            }
        }
    }

    #[test]
    fn structured_printing_shape() {
        let p = parse_structured(
            "program(2) { if x1 == 0 { y := 1; } else { skip; } while x2 > 0 { x2 := x2 - 1; } halt; }",
        )
        .unwrap();
        let s = structured_to_string(&p);
        assert!(s.starts_with("program(2) {"));
        assert!(s.contains("if x1 == 0 {"));
        assert!(s.contains("} else {"));
        assert!(s.contains("while x2 > 0 {"));
        assert!(s.contains("halt;"));
        assert!(s.contains("skip;"));
    }

    #[test]
    fn flowchart_listing_mentions_all_nodes() {
        let fc = parse("program(1) { if x1 == 0 { y := 1; } else { y := 2; } }").unwrap();
        let s = flowchart_to_string(&fc);
        assert!(s.contains("START"));
        assert!(s.contains("if x1 == 0"));
        assert!(s.contains("HALT"));
        assert_eq!(s.lines().count(), fc.len() + 1);
    }
}
