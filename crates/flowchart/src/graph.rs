//! The flowchart control-flow graph.
//!
//! A [`Flowchart`] is the paper's "finite connected directed graph whose
//! nodes are boxes": exactly one START box, assignment boxes with one
//! successor, decision boxes with a true- and a false-successor, and HALT
//! boxes with none. [`Flowchart::validate`] enforces the structural rules;
//! everything downstream (interpreter, instrumentation, static analysis)
//! assumes a validated graph.

use crate::ast::{Expr, Pred, Var};
use enf_core::IndexSet;
use std::fmt;

/// Identifier of a node within one flowchart.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The policy a `setpolicy` box installs: either a concrete allowed set
/// written in the program text, or a symbolic slot bound by an external
/// [schedule](enf_core::Schedule) at run/analysis time.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PolicySpec {
    /// `setpolicy allow(i1, …, im);` — the allowed set is fixed in the
    /// program text.
    Concrete(IndexSet),
    /// `setpolicy p<n>;` — slot `n` (1-based) of the governing schedule;
    /// an unbound slot resolves to `allow()` (most restrictive).
    Slot(usize),
}

impl fmt::Display for PolicySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicySpec::Concrete(s) => {
                write!(f, "allow(")?;
                for (n, i) in s.iter().enumerate() {
                    if n > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{i}")?;
                }
                write!(f, ")")
            }
            PolicySpec::Slot(n) => write!(f, "p{n}"),
        }
    }
}

/// A box of the flowchart.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Node {
    /// The unique START box.
    Start,
    /// Assignment box `v ← E(w1, …, ws)`.
    Assign {
        /// Assigned variable.
        var: Var,
        /// Right-hand side.
        expr: Expr,
    },
    /// Decision box branching on `B(w1, …, ws)`.
    Decision {
        /// The predicate tested.
        pred: Pred,
    },
    /// Policy-change box `setpolicy P;`: the active policy becomes `P`
    /// for the remainder of the run (until the next policy box).
    SetPolicy {
        /// The policy installed on traversal.
        spec: PolicySpec,
    },
    /// Declassification edge `declassify(v: A ~> B);`: the taint of `v`
    /// is relabeled `t ↦ (t \ A) ∪ B` on traversal; the store is
    /// untouched.
    Declassify {
        /// The relabeled variable.
        var: Var,
        /// Source indices sanctioned for release.
        from: IndexSet,
        /// Replacement indices (may be empty: full release).
        to: IndexSet,
    },
    /// A HALT box; the value of `y` on arrival is the program's output.
    Halt,
}

/// Successor structure of a node.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Succ {
    /// No successor (HALT).
    None,
    /// Single successor (START, assignment).
    One(NodeId),
    /// Two-way branch (decision): `then_` on true, `else_` on false.
    Cond {
        /// Successor when the predicate holds.
        then_: NodeId,
        /// Successor when it does not.
        else_: NodeId,
    },
}

/// Structural errors reported by [`Flowchart::validate`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum GraphError {
    /// The graph has no nodes.
    Empty,
    /// Node 0 is not the START box.
    StartNotFirst,
    /// More than one START box.
    MultipleStarts(NodeId),
    /// A successor points outside the node table.
    DanglingEdge(NodeId, NodeId),
    /// A node's successor shape does not match its kind.
    BadSuccessor(NodeId),
    /// No HALT box is reachable from START.
    NoReachableHalt,
    /// An input variable index is 0 or exceeds the arity.
    BadInputIndex(NodeId, usize),
    /// A register index is 0.
    BadRegIndex(NodeId),
    /// A policy index set mentions an index of 0 or above the arity.
    BadPolicyIndex(NodeId, usize),
    /// A policy slot index is 0.
    BadSlotIndex(NodeId),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Empty => write!(f, "flowchart has no nodes"),
            GraphError::StartNotFirst => write!(f, "node 0 must be the START box"),
            GraphError::MultipleStarts(n) => write!(f, "second START box at {n}"),
            GraphError::DanglingEdge(from, to) => {
                write!(f, "edge from {from} to nonexistent node {to}")
            }
            GraphError::BadSuccessor(n) => {
                write!(f, "node {n} has a successor shape unfit for its kind")
            }
            GraphError::NoReachableHalt => write!(f, "no HALT box reachable from START"),
            GraphError::BadInputIndex(n, i) => {
                write!(f, "node {n} uses input x{i} outside the program arity")
            }
            GraphError::BadRegIndex(n) => write!(f, "node {n} uses register r0"),
            GraphError::BadPolicyIndex(n, i) => {
                write!(f, "node {n} names input x{i} outside the program arity")
            }
            GraphError::BadSlotIndex(n) => write!(f, "node {n} uses policy slot p0"),
        }
    }
}

impl std::error::Error for GraphError {}

/// A flowchart program.
///
/// Construct via [`crate::builder::Builder`], [`crate::structured::lower`]
/// or [`crate::parser::parse`]; all three return validated graphs.
#[derive(Clone, PartialEq, Debug)]
pub struct Flowchart {
    arity: usize,
    nodes: Vec<Node>,
    succs: Vec<Succ>,
}

impl Flowchart {
    /// Assembles a flowchart from raw parts without validating.
    ///
    /// Prefer [`Flowchart::new`], which validates.
    pub fn from_parts(arity: usize, nodes: Vec<Node>, succs: Vec<Succ>) -> Self {
        assert_eq!(
            nodes.len(),
            succs.len(),
            "node and successor tables differ in length"
        );
        Flowchart {
            arity,
            nodes,
            succs,
        }
    }

    /// Assembles and validates a flowchart.
    pub fn new(arity: usize, nodes: Vec<Node>, succs: Vec<Succ>) -> Result<Self, GraphError> {
        let fc = Self::from_parts(arity, nodes, succs);
        fc.validate()?;
        Ok(fc)
    }

    /// Number of input variables `k`.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The START node's id (always node 0 in a validated graph).
    pub fn start(&self) -> NodeId {
        NodeId(0)
    }

    /// The node table.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// A node by id.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// A node's successor structure.
    pub fn succ(&self, id: NodeId) -> Succ {
        self.succs[id.0]
    }

    /// Iterates `(id, node, succ)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node, Succ)> {
        self.nodes
            .iter()
            .zip(self.succs.iter())
            .enumerate()
            .map(|(i, (n, s))| (NodeId(i), n, *s))
    }

    /// The ids of all HALT nodes.
    pub fn halts(&self) -> Vec<NodeId> {
        self.iter()
            .filter(|(_, n, _)| matches!(n, Node::Halt))
            .map(|(id, _, _)| id)
            .collect()
    }

    /// The largest register index mentioned anywhere, or 0 if none.
    pub fn max_reg(&self) -> usize {
        let mut max = 0;
        for node in &self.nodes {
            let vars: Vec<Var> = match node {
                Node::Assign { var, expr } => {
                    let mut v = expr.vars();
                    v.push(*var);
                    v
                }
                Node::Decision { pred } => pred.vars(),
                _ => Vec::new(),
            };
            for v in vars {
                if let Var::Reg(j) = v {
                    max = max.max(j);
                }
            }
        }
        max
    }

    /// The policy slots mentioned by `setpolicy` boxes, ascending and
    /// deduplicated. Empty for programs whose policy boxes are all
    /// concrete (or absent).
    pub fn policy_slots(&self) -> Vec<usize> {
        let mut slots: Vec<usize> = self
            .nodes
            .iter()
            .filter_map(|n| match n {
                Node::SetPolicy {
                    spec: PolicySpec::Slot(s),
                } => Some(*s),
                _ => None,
            })
            .collect();
        slots.sort_unstable();
        slots.dedup();
        slots
    }

    /// Whether the program contains any `setpolicy` or `declassify` box.
    pub fn has_policy_nodes(&self) -> bool {
        self.nodes
            .iter()
            .any(|n| matches!(n, Node::SetPolicy { .. } | Node::Declassify { .. }))
    }

    /// A stable fingerprint of the program: FNV-1a over its canonical
    /// pretty-printed source. Two flowcharts that print identically — same
    /// boxes, same order, same expressions — share a fingerprint, so audit
    /// records and caches can name a program without embedding its text.
    pub fn fingerprint(&self) -> u64 {
        let src = crate::pretty::flowchart_to_string(self);
        let words: Vec<u64> = src.bytes().map(u64::from).collect();
        enf_core::fingerprint(&words)
    }

    /// Forward successors of a node as a list.
    pub fn succ_list(&self, id: NodeId) -> Vec<NodeId> {
        match self.succ(id) {
            Succ::None => vec![],
            Succ::One(n) => vec![n],
            Succ::Cond { then_, else_ } => vec![then_, else_],
        }
    }

    /// Checks every structural rule of the paper's flowchart definition.
    pub fn validate(&self) -> Result<(), GraphError> {
        if self.nodes.is_empty() {
            return Err(GraphError::Empty);
        }
        if !matches!(self.nodes[0], Node::Start) {
            return Err(GraphError::StartNotFirst);
        }
        for (id, node, succ) in self.iter() {
            if id.0 != 0 && matches!(node, Node::Start) {
                return Err(GraphError::MultipleStarts(id));
            }
            let shape_ok = matches!(
                (node, succ),
                (Node::Start, Succ::One(_))
                    | (Node::Assign { .. }, Succ::One(_))
                    | (Node::Decision { .. }, Succ::Cond { .. })
                    | (Node::SetPolicy { .. }, Succ::One(_))
                    | (Node::Declassify { .. }, Succ::One(_))
                    | (Node::Halt, Succ::None)
            );
            if !shape_ok {
                return Err(GraphError::BadSuccessor(id));
            }
            for t in self.succ_list(id) {
                if t.0 >= self.nodes.len() {
                    return Err(GraphError::DanglingEdge(id, t));
                }
            }
            let vars: Vec<Var> = match node {
                Node::Assign { var, expr } => {
                    let mut v = expr.vars();
                    v.push(*var);
                    v
                }
                Node::Decision { pred } => pred.vars(),
                Node::Declassify { var, .. } => vec![*var],
                _ => Vec::new(),
            };
            for v in vars {
                match v {
                    Var::Input(i) if i == 0 || i > self.arity => {
                        return Err(GraphError::BadInputIndex(id, i));
                    }
                    Var::Reg(0) => return Err(GraphError::BadRegIndex(id)),
                    _ => {}
                }
            }
            // Policy index sets may only name real inputs; slots are
            // 1-based like registers.
            match node {
                Node::SetPolicy {
                    spec: PolicySpec::Concrete(s),
                } => {
                    if let Some(i) = s.iter().find(|&i| i > self.arity) {
                        return Err(GraphError::BadPolicyIndex(id, i));
                    }
                }
                Node::SetPolicy {
                    spec: PolicySpec::Slot(0),
                } => return Err(GraphError::BadSlotIndex(id)),
                Node::Declassify { from, to, .. } => {
                    if let Some(i) = from.union(to).iter().find(|&i| i > self.arity) {
                        return Err(GraphError::BadPolicyIndex(id, i));
                    }
                }
                _ => {}
            }
            // Assignments to inputs are allowed by the paper's definition
            // (inputs are initialized registers); nothing to check.
        }
        // Some HALT must be reachable from START.
        let reach = crate::analysis::reachable(self);
        if !self.halts().iter().any(|h| reach.contains(h)) {
            return Err(GraphError::NoReachableHalt);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Expr, Pred};

    fn trivial() -> Flowchart {
        Flowchart::from_parts(
            1,
            vec![
                Node::Start,
                Node::Assign {
                    var: Var::Out,
                    expr: Expr::c(1),
                },
                Node::Halt,
            ],
            vec![Succ::One(NodeId(1)), Succ::One(NodeId(2)), Succ::None],
        )
    }

    #[test]
    fn trivial_flowchart_validates() {
        assert_eq!(trivial().validate(), Ok(()));
        assert_eq!(trivial().len(), 3);
        assert_eq!(trivial().halts(), vec![NodeId(2)]);
    }

    #[test]
    fn empty_graph_rejected() {
        let fc = Flowchart::from_parts(0, vec![], vec![]);
        assert_eq!(fc.validate(), Err(GraphError::Empty));
    }

    #[test]
    fn start_must_be_node_zero() {
        let fc = Flowchart::from_parts(
            0,
            vec![Node::Halt, Node::Start],
            vec![Succ::None, Succ::One(NodeId(0))],
        );
        assert_eq!(fc.validate(), Err(GraphError::StartNotFirst));
    }

    #[test]
    fn second_start_rejected() {
        let fc = Flowchart::from_parts(
            0,
            vec![Node::Start, Node::Start, Node::Halt],
            vec![Succ::One(NodeId(1)), Succ::One(NodeId(2)), Succ::None],
        );
        assert_eq!(fc.validate(), Err(GraphError::MultipleStarts(NodeId(1))));
    }

    #[test]
    fn dangling_edge_rejected() {
        let fc = Flowchart::from_parts(
            0,
            vec![Node::Start, Node::Halt],
            vec![Succ::One(NodeId(9)), Succ::None],
        );
        assert_eq!(
            fc.validate(),
            Err(GraphError::DanglingEdge(NodeId(0), NodeId(9)))
        );
    }

    #[test]
    fn shape_mismatch_rejected() {
        // Decision with a single successor.
        let fc = Flowchart::from_parts(
            1,
            vec![Node::Start, Node::Decision { pred: Pred::True }, Node::Halt],
            vec![Succ::One(NodeId(1)), Succ::One(NodeId(2)), Succ::None],
        );
        assert_eq!(fc.validate(), Err(GraphError::BadSuccessor(NodeId(1))));
    }

    #[test]
    fn halt_with_successor_rejected() {
        let fc = Flowchart::from_parts(
            0,
            vec![Node::Start, Node::Halt],
            vec![Succ::One(NodeId(1)), Succ::One(NodeId(0))],
        );
        assert_eq!(fc.validate(), Err(GraphError::BadSuccessor(NodeId(1))));
    }

    #[test]
    fn input_index_out_of_arity_rejected() {
        let fc = Flowchart::from_parts(
            1,
            vec![
                Node::Start,
                Node::Assign {
                    var: Var::Out,
                    expr: Expr::x(2),
                },
                Node::Halt,
            ],
            vec![Succ::One(NodeId(1)), Succ::One(NodeId(2)), Succ::None],
        );
        assert_eq!(fc.validate(), Err(GraphError::BadInputIndex(NodeId(1), 2)));
    }

    #[test]
    fn register_zero_rejected() {
        let fc = Flowchart::from_parts(
            0,
            vec![
                Node::Start,
                Node::Assign {
                    var: Var::Reg(0),
                    expr: Expr::c(0),
                },
                Node::Halt,
            ],
            vec![Succ::One(NodeId(1)), Succ::One(NodeId(2)), Succ::None],
        );
        assert_eq!(fc.validate(), Err(GraphError::BadRegIndex(NodeId(1))));
    }

    #[test]
    fn unreachable_halt_rejected() {
        // START loops on a decision forever; HALT exists but unreachable.
        let fc = Flowchart::from_parts(
            0,
            vec![Node::Start, Node::Decision { pred: Pred::True }, Node::Halt],
            vec![
                Succ::One(NodeId(1)),
                Succ::Cond {
                    then_: NodeId(1),
                    else_: NodeId(1),
                },
                Succ::None,
            ],
        );
        assert_eq!(fc.validate(), Err(GraphError::NoReachableHalt));
    }

    #[test]
    fn max_reg_scans_all_nodes() {
        let fc = Flowchart::from_parts(
            1,
            vec![
                Node::Start,
                Node::Assign {
                    var: Var::Reg(3),
                    expr: Expr::r(7),
                },
                Node::Decision {
                    pred: Pred::eq(Expr::r(5), Expr::c(0)),
                },
                Node::Halt,
            ],
            vec![
                Succ::One(NodeId(1)),
                Succ::One(NodeId(2)),
                Succ::Cond {
                    then_: NodeId(3),
                    else_: NodeId(3),
                },
                Succ::None,
            ],
        );
        assert_eq!(fc.max_reg(), 7);
    }

    #[test]
    fn succ_list_shapes() {
        let fc = trivial();
        assert_eq!(fc.succ_list(NodeId(0)), vec![NodeId(1)]);
        assert_eq!(fc.succ_list(NodeId(2)), Vec::<NodeId>::new());
    }

    #[test]
    fn display_of_errors() {
        let e = GraphError::DanglingEdge(NodeId(1), NodeId(5));
        assert!(e.to_string().contains("n1"));
        assert!(e.to_string().contains("n5"));
    }
}
