//! Adapters exposing flowcharts as `enf_core` programs.
//!
//! [`FlowchartProgram`] implements both [`Program`] (value output) and
//! [`TimedProgram`] (value plus observable step count), so a flowchart can
//! be studied under either of the paper's two output assumptions: range
//! `Z` (time unobservable) or range `Z × Z` (time observable, via
//! [`enf_core::WithTime`]).

use crate::graph::Flowchart;
use crate::interp::{run, ExecConfig, ExecValue, Outcome};
use enf_core::{Program, Timed, TimedProgram, V};
use std::sync::Arc;

/// A flowchart as a total `enf_core::Program`.
///
/// The fuel bound makes the function total: runs that exceed it map to
/// [`ExecValue::Diverged`], one more point of the output range.
#[derive(Clone, Debug)]
pub struct FlowchartProgram {
    fc: Arc<Flowchart>,
    fuel: u64,
}

impl FlowchartProgram {
    /// Wraps a flowchart with the default fuel bound.
    pub fn new(fc: Flowchart) -> Self {
        FlowchartProgram {
            fc: Arc::new(fc),
            fuel: ExecConfig::default().fuel,
        }
    }

    /// Wraps a flowchart with an explicit fuel bound.
    pub fn with_fuel(fc: Flowchart, fuel: u64) -> Self {
        FlowchartProgram {
            fc: Arc::new(fc),
            fuel,
        }
    }

    /// The underlying flowchart.
    pub fn flowchart(&self) -> &Flowchart {
        &self.fc
    }

    /// The fuel bound.
    pub fn fuel(&self) -> u64 {
        self.fuel
    }

    /// Evaluates and insists on a halted value.
    ///
    /// # Panics
    ///
    /// Panics if the run exceeds the fuel bound; use only on programs known
    /// to terminate on the probed inputs.
    pub fn eval_value(&self, input: &[V]) -> V {
        match self.eval(input) {
            ExecValue::Value(v) => v,
            ExecValue::Diverged => panic!("flowchart diverged on {input:?}"),
        }
    }
}

impl Program for FlowchartProgram {
    type Out = ExecValue;

    fn arity(&self) -> usize {
        self.fc.arity()
    }

    fn eval(&self, input: &[V]) -> ExecValue {
        match run(&self.fc, input, &ExecConfig::with_fuel(self.fuel)) {
            Outcome::Halted(h) => ExecValue::Value(h.y),
            Outcome::OutOfFuel => ExecValue::Diverged,
        }
    }
}

impl TimedProgram for FlowchartProgram {
    fn eval_timed(&self, input: &[V]) -> Timed<ExecValue> {
        match run(&self.fc, input, &ExecConfig::with_fuel(self.fuel)) {
            Outcome::Halted(h) => Timed::new(ExecValue::Value(h.y), h.steps),
            Outcome::OutOfFuel => Timed::new(ExecValue::Diverged, self.fuel),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use enf_core::{check_soundness, Allow, Grid, Identity, WithTime};

    #[test]
    fn program_adapter_evaluates() {
        let fc = parse("program(2) { y := x1 + x2; }").unwrap();
        let p = FlowchartProgram::new(fc);
        assert_eq!(p.arity(), 2);
        assert_eq!(p.eval(&[2, 3]), ExecValue::Value(5));
        assert_eq!(p.eval_value(&[2, 3]), 5);
    }

    #[test]
    fn divergence_is_a_value() {
        let fc = parse("program(1) { while x1 != 0 { skip; } y := 1; }").unwrap();
        let p = FlowchartProgram::with_fuel(fc, 50);
        assert_eq!(p.eval(&[0]), ExecValue::Value(1));
        assert_eq!(p.eval(&[1]), ExecValue::Diverged);
        assert_eq!(p.fuel(), 50);
    }

    #[test]
    #[should_panic(expected = "diverged")]
    fn eval_value_panics_on_divergence() {
        let fc = parse("program(0) { while true { skip; } }").unwrap();
        FlowchartProgram::with_fuel(fc, 10).eval_value(&[]);
    }

    #[test]
    fn timed_program_reports_steps() {
        let fc = parse("program(1) { y := x1; }").unwrap();
        let p = FlowchartProgram::new(fc);
        let t = p.eval_timed(&[7]);
        assert_eq!(t.value, ExecValue::Value(7));
        assert_eq!(t.steps, 3);
    }

    #[test]
    fn paper_timing_channel_via_core_machinery() {
        // Section 2's constant-with-loop program, end to end: with time
        // unobservable the program is sound as its own mechanism for
        // allow(); with time observable it is not.
        let fc = parse("program(1) { r1 := x1; while r1 != 0 { r1 := r1 - 1; } y := 1; }").unwrap();
        let p = FlowchartProgram::new(fc);
        let g = Grid::hypercube(1, 0..=6);
        let untimed = Identity::new(p.clone());
        assert!(check_soundness(&untimed, &Allow::none(1), &g, false).is_sound());
        let timed = Identity::new(WithTime::new(p));
        assert!(!check_soundness(&timed, &Allow::none(1), &g, false).is_sound());
    }
}
