//! Recovering structure from flowchart graphs.
//!
//! The transforms of `enf-static` operate on the structured AST; programs
//! built directly as graphs (with [`crate::builder::Builder`], or produced
//! by the instrumentation) need their `if`/`while` skeleton *recovered*
//! first. [`restructure`] does so for reducible graphs of the shape the
//! lowering produces — single-entry natural loops whose only exit is the
//! header, and conditionals that rejoin at their immediate postdominator.
//! Graphs outside that class (irreducible shapes, loops with breaks) are
//! reported as [`RestructureError::Unstructured`] rather than guessed at.
//!
//! The inverse property — `lower(restructure(fc))` computes the same
//! function as `fc` — is checked on random programs in the tests.

use crate::analysis::{decision_targets, predecessors, PostDominators};
use crate::graph::{Flowchart, Node, NodeId, Succ};
use crate::structured::{Stmt, StructuredProgram};
use std::collections::HashSet;
use std::fmt;

/// Why a graph could not be restructured.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RestructureError {
    /// A loop or branch shape with no `if`/`while` equivalent.
    Unstructured(NodeId),
    /// Internal walk limit exceeded (cyclic shape not recognized as a
    /// loop).
    WalkLimit,
}

impl fmt::Display for RestructureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestructureError::Unstructured(n) => {
                write!(f, "graph has no structured equivalent at {n}")
            }
            RestructureError::WalkLimit => write!(f, "walk limit exceeded"),
        }
    }
}

impl std::error::Error for RestructureError {}

/// Loop information: headers and their natural-loop node sets.
struct Loops {
    /// For each node id, the natural loop it heads (empty set if none).
    body: Vec<HashSet<NodeId>>,
}

fn find_loops(fc: &Flowchart) -> Loops {
    // Back edges via iterative DFS with an on-stack marker.
    #[derive(Clone, Copy, PartialEq)]
    enum State {
        Unseen,
        Open,
        Done,
    }
    let mut state = vec![State::Unseen; fc.len()];
    let mut back_edges: Vec<(NodeId, NodeId)> = Vec::new();
    // Explicit stack of (node, next-successor-index).
    let mut stack: Vec<(NodeId, usize)> = vec![(fc.start(), 0)];
    state[fc.start().0] = State::Open;
    while let Some(&mut (n, ref mut i)) = stack.last_mut() {
        let succs = fc.succ_list(n);
        if *i < succs.len() {
            let s = succs[*i];
            *i += 1;
            match state[s.0] {
                State::Unseen => {
                    state[s.0] = State::Open;
                    stack.push((s, 0));
                }
                State::Open => back_edges.push((n, s)),
                State::Done => {}
            }
        } else {
            state[n.0] = State::Done;
            stack.pop();
        }
    }
    // Natural loops: walk predecessors from each back-edge source until
    // the header.
    let preds = predecessors(fc);
    let mut body = vec![HashSet::new(); fc.len()];
    for (src, header) in back_edges {
        let set = &mut body[header.0];
        set.insert(header);
        let mut work = vec![src];
        while let Some(n) = work.pop() {
            if set.insert(n) {
                for p in &preds[n.0] {
                    work.push(*p);
                }
            }
        }
    }
    Loops { body }
}

struct Restructurer<'a> {
    fc: &'a Flowchart,
    pd: PostDominators,
    loops: Loops,
    budget: usize,
}

impl<'a> Restructurer<'a> {
    /// Walks from `at` to `stop` (exclusive), emitting statements.
    ///
    /// `in_loop_of` threads the innermost enclosing loop header through
    /// the recursion (branch arms restructure in their loop context).
    #[allow(clippy::only_used_in_recursion)]
    fn walk(
        &mut self,
        mut at: NodeId,
        stop: Option<NodeId>,
        in_loop_of: Option<NodeId>,
        out: &mut Vec<Stmt>,
    ) -> Result<(), RestructureError> {
        loop {
            if Some(at) == stop {
                return Ok(());
            }
            if self.budget == 0 {
                return Err(RestructureError::WalkLimit);
            }
            self.budget -= 1;
            match self.fc.node(at) {
                Node::Start => {
                    at = match self.fc.succ(at) {
                        Succ::One(n) => n,
                        _ => unreachable!("validated START"),
                    };
                }
                Node::Halt => {
                    out.push(Stmt::Halt);
                    return Ok(());
                }
                Node::Assign { var, expr } => {
                    out.push(Stmt::Assign(*var, expr.clone()));
                    at = match self.fc.succ(at) {
                        Succ::One(n) => n,
                        _ => unreachable!("validated assignment"),
                    };
                }
                Node::SetPolicy { spec } => {
                    out.push(Stmt::SetPolicy(*spec));
                    at = match self.fc.succ(at) {
                        Succ::One(n) => n,
                        _ => unreachable!("validated setpolicy"),
                    };
                }
                Node::Declassify { var, from, to } => {
                    out.push(Stmt::Declassify(*var, *from, *to));
                    at = match self.fc.succ(at) {
                        Succ::One(n) => n,
                        _ => unreachable!("validated declassify"),
                    };
                }
                Node::Decision { pred } => {
                    let (then_, else_) = decision_targets(self.fc, at).expect("decision");
                    let my_loop = &self.loops.body[at.0];
                    if !my_loop.is_empty() {
                        // `at` heads a natural loop: one arm must stay
                        // inside it, the other leave it.
                        let (body_entry, exit, guard) =
                            match (my_loop.contains(&then_), my_loop.contains(&else_)) {
                                (true, false) => (then_, else_, pred.clone()),
                                (false, true) => (else_, then_, pred.clone().negated()),
                                _ => return Err(RestructureError::Unstructured(at)),
                            };
                        // Every edge leaving the loop must go through this
                        // header (no breaks).
                        for n in my_loop {
                            if *n == at {
                                continue;
                            }
                            for s in self.fc.succ_list(*n) {
                                if !my_loop.contains(&s) {
                                    return Err(RestructureError::Unstructured(*n));
                                }
                            }
                        }
                        let mut body = Vec::new();
                        if body_entry != at {
                            self.walk(body_entry, Some(at), Some(at), &mut body)?;
                        }
                        out.push(Stmt::While(guard, body));
                        at = exit;
                    } else {
                        // A plain conditional: rejoin at the immediate
                        // postdominator (or never, when both arms halt).
                        let join = self.pd.immediate(at);
                        // The join must not jump out past our stop node.
                        let effective_join = match (join, stop) {
                            (Some(j), Some(s)) if j == s => Some(s),
                            (j, _) => j,
                        };
                        let mut t = Vec::new();
                        let mut e = Vec::new();
                        self.walk(then_, effective_join, in_loop_of, &mut t)?;
                        self.walk(else_, effective_join, in_loop_of, &mut e)?;
                        out.push(Stmt::If(pred.clone(), t, e));
                        match effective_join {
                            Some(j) => {
                                if Some(j) == stop {
                                    return Ok(());
                                }
                                at = j;
                            }
                            None => return Ok(()),
                        }
                    }
                }
            }
        }
    }
}

/// Recovers a structured program from a reducible flowchart.
///
/// # Examples
///
/// ```
/// use enf_flowchart::parse;
/// use enf_flowchart::restructure::restructure;
///
/// let fc = parse("program(1) { if x1 == 0 { y := 1; } else { y := 2; } }").unwrap();
/// let sp = restructure(&fc).unwrap();
/// assert_eq!(sp.arity, 1);
/// ```
pub fn restructure(fc: &Flowchart) -> Result<StructuredProgram, RestructureError> {
    let mut r = Restructurer {
        fc,
        pd: PostDominators::compute(fc),
        loops: find_loops(fc),
        budget: fc.len() * fc.len() * 4 + 64,
    };
    let mut body = Vec::new();
    r.walk(fc.start(), None, None, &mut body)?;
    Ok(StructuredProgram::new(fc.arity(), body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Expr, Pred, Var};
    use crate::builder::Builder;
    use crate::generate::{random_flowchart, GenConfig};
    use crate::interp::{run, ExecConfig};
    use crate::parser::parse;
    use crate::structured::lower;

    fn same_function(a: &Flowchart, b: &Flowchart, span: i64) {
        assert_eq!(a.arity(), b.arity());
        let cfg = ExecConfig::with_fuel(200_000);
        let mut tuple = vec![-span; a.arity()];
        loop {
            let ra = run(a, &tuple, &cfg).value();
            let rb = run(b, &tuple, &cfg).value();
            assert_eq!(ra, rb, "differ at {tuple:?}");
            // Odometer.
            let mut i = tuple.len();
            loop {
                if i == 0 {
                    return;
                }
                i -= 1;
                if tuple[i] < span {
                    tuple[i] += 1;
                    break;
                }
                tuple[i] = -span;
            }
        }
    }

    #[test]
    fn straight_line_roundtrip() {
        let fc = parse("program(1) { y := x1 + 1; r1 := y; y := r1 * 2; }").unwrap();
        let sp = restructure(&fc).unwrap();
        same_function(&fc, &lower(&sp).unwrap(), 3);
    }

    #[test]
    fn conditional_roundtrip() {
        let fc =
            parse("program(2) { if x1 == 0 { y := x2; } else { y := 1; } y := y + 1; }").unwrap();
        let sp = restructure(&fc).unwrap();
        assert!(matches!(sp.body[0], Stmt::If(..)));
        same_function(&fc, &lower(&sp).unwrap(), 2);
    }

    #[test]
    fn loop_roundtrip() {
        let fc = parse(
            "program(1) { r1 := x1; while r1 > 0 { y := y + 2; r1 := r1 - 1; } y := y + 1; }",
        )
        .unwrap();
        let sp = restructure(&fc).unwrap();
        assert!(sp.body.iter().any(|s| matches!(s, Stmt::While(..))));
        same_function(&fc, &lower(&sp).unwrap(), 3);
    }

    #[test]
    fn nested_structures_roundtrip() {
        let fc = parse(
            "program(2) {
                r1 := 3;
                while r1 > 0 {
                    if x1 == 0 { y := y + x2; } else { y := y + 1; }
                    r1 := r1 - 1;
                }
                if x2 == 0 { halt; }
                y := y * 2;
            }",
        )
        .unwrap();
        let sp = restructure(&fc).unwrap();
        same_function(&fc, &lower(&sp).unwrap(), 2);
    }

    #[test]
    fn empty_loop_body_roundtrip() {
        let fc = parse("program(1) { while false { skip; } y := 4; }").unwrap();
        let sp = restructure(&fc).unwrap();
        same_function(&fc, &lower(&sp).unwrap(), 1);
    }

    #[test]
    fn both_arms_halting_roundtrip() {
        let fc =
            parse("program(1) { if x1 == 0 { y := 1; halt; } else { y := 2; halt; } }").unwrap();
        let sp = restructure(&fc).unwrap();
        same_function(&fc, &lower(&sp).unwrap(), 2);
    }

    #[test]
    fn builder_graph_roundtrip() {
        // A diamond built by hand, not via the lowering.
        let mut b = Builder::new(1);
        let d = b.decision(Pred::eq(Expr::x(1), Expr::c(0)));
        let a1 = b.assign(Var::Out, Expr::c(10));
        let a2 = b.assign(Var::Out, Expr::c(20));
        let tail = b.assign(Var::Out, crate::ast::add(Expr::y(), Expr::c(1)));
        let h = b.halt();
        b.wire_start(d);
        b.wire_cond(d, a1, a2);
        b.wire(a1, tail);
        b.wire(a2, tail);
        b.wire(tail, h);
        let fc = b.finish().unwrap();
        let sp = restructure(&fc).unwrap();
        same_function(&fc, &lower(&sp).unwrap(), 2);
    }

    #[test]
    fn irreducible_graph_rejected() {
        // A loop with a second entry: START branches into the middle of a
        // cycle. No structured equivalent.
        let mut b = Builder::new(1);
        let d0 = b.decision(Pred::eq(Expr::x(1), Expr::c(0)));
        let a1 = b.assign(Var::Out, crate::ast::add(Expr::y(), Expr::c(1)));
        let d1 = b.decision(Pred::gt(Expr::y(), Expr::c(3)));
        let a2 = b.assign(Var::Out, crate::ast::add(Expr::y(), Expr::c(2)));
        let h = b.halt();
        b.wire_start(d0);
        // Two entries into the a1 → d1 → a2 → a1 cycle.
        b.wire_cond(d0, a1, a2);
        b.wire(a1, d1);
        b.wire_cond(d1, h, a2);
        b.wire(a2, a1);
        let fc = b.finish().unwrap();
        assert!(restructure(&fc).is_err());
    }

    #[test]
    fn loop_with_break_rejected() {
        // A counted loop with a second exit mid-body: not expressible
        // without `break`.
        let mut b = Builder::new(1);
        let header = b.decision(Pred::gt(Expr::r(1), Expr::c(0)));
        let mid = b.decision(Pred::eq(Expr::y(), Expr::c(5)));
        let dec = b.assign(Var::Reg(1), crate::ast::sub(Expr::r(1), Expr::c(1)));
        let bump = b.assign(Var::Out, crate::ast::add(Expr::y(), Expr::c(1)));
        let h = b.halt();
        let init = b.assign(Var::Reg(1), Expr::x(1));
        b.wire_start(init);
        b.wire(init, header);
        b.wire_cond(header, mid, h);
        b.wire_cond(mid, h, bump); // mid exits the loop directly: a break
        b.wire(bump, dec);
        b.wire(dec, header);
        let fc = b.finish().unwrap();
        assert_eq!(restructure(&fc), Err(RestructureError::Unstructured(mid)));
    }

    #[test]
    fn random_lowered_graphs_roundtrip() {
        let cfg = GenConfig::default();
        for seed in 0..80u64 {
            let fc = random_flowchart(seed, &cfg);
            let sp = restructure(&fc)
                .unwrap_or_else(|e| panic!("seed {seed} failed to restructure: {e}"));
            same_function(&fc, &lower(&sp).unwrap(), 1);
        }
    }

    #[test]
    fn restructure_then_transform_pipeline() {
        // The payoff: a graph-built program flows into the enf-static
        // transform world. Here: restructure, print, reparse.
        let mut b = Builder::new(2);
        let d = b.decision(Pred::eq(Expr::x(1), Expr::c(1)));
        let a1 = b.assign(Var::Reg(1), Expr::c(1));
        let a2 = b.assign(Var::Reg(1), Expr::c(2));
        let tail = b.assign(Var::Out, Expr::c(1));
        let h = b.halt();
        b.wire_start(d);
        b.wire_cond(d, a1, a2);
        b.wire(a1, tail);
        b.wire(a2, tail);
        b.wire(tail, h);
        let fc = b.finish().unwrap();
        let sp = restructure(&fc).unwrap();
        let printed = crate::pretty::structured_to_string(&sp);
        let back = crate::parser::parse_structured(&printed).unwrap();
        same_function(&fc, &lower(&back).unwrap(), 2);
    }
}
