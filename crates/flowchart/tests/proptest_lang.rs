//! Property-based tests of the flowchart language: totality, printing,
//! parsing, lowering, and interpreter invariants.

use enf_flowchart::ast::{CmpOp, Expr, Pred, Var};
use enf_flowchart::generate::{random_structured, GenConfig};
use enf_flowchart::interp::{run, ExecConfig};
use enf_flowchart::parser::parse_structured;
use enf_flowchart::pretty::{expr_to_string, pred_to_string, structured_to_string};
use enf_flowchart::structured::lower;
use proptest::prelude::*;

fn arb_var() -> impl Strategy<Value = Var> {
    prop_oneof![
        (1usize..=3).prop_map(Var::Input),
        (1usize..=3).prop_map(Var::Reg),
        Just(Var::Out),
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-20i64..=20).prop_map(Expr::Const),
        arb_var().prop_map(Expr::Var),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Div(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Mod(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::BOr(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::BAnd(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| Expr::Neg(Box::new(a))),
            (arb_cmp(), inner.clone(), inner.clone(), inner).prop_map(|(p, c, t, e)| {
                Expr::Ite(
                    Box::new(Pred::cmp(p, c.clone(), c)),
                    Box::new(t),
                    Box::new(e),
                )
            }),
        ]
    })
}

fn arb_cmp() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

fn arb_pred() -> impl Strategy<Value = Pred> {
    let leaf = prop_oneof![
        Just(Pred::True),
        Just(Pred::False),
        (arb_cmp(), arb_expr(), arb_expr()).prop_map(|(op, a, b)| Pred::cmp(op, a, b)),
    ];
    leaf.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Pred::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Pred::Or(Box::new(a), Box::new(b))),
            inner.prop_map(|a| Pred::Not(Box::new(a))),
        ]
    })
}

fn env_from(vals: &[i64; 7]) -> impl Fn(Var) -> i64 + '_ {
    move |v| match v {
        Var::Input(i) => vals[i - 1],
        Var::Reg(j) => vals[2 + j],
        Var::Out => vals[6],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Expressions are total: evaluation never panics, whatever the
    /// operands (division by zero, overflow, MIN / -1 …).
    #[test]
    fn expr_eval_is_total(e in arb_expr(), vals in any::<[i64; 7]>()) {
        let _ = e.eval(&env_from(&vals));
    }

    /// Predicates are total too.
    #[test]
    fn pred_eval_is_total(p in arb_pred(), vals in any::<[i64; 7]>()) {
        let _ = p.eval(&env_from(&vals));
    }

    /// `negated` complements evaluation exactly.
    #[test]
    fn negation_complements(p in arb_pred(), vals in proptest::array::uniform7(-3i64..=3)) {
        prop_assert_eq!(p.clone().negated().eval(&env_from(&vals)), !p.eval(&env_from(&vals)));
    }

    /// Printed expressions re-parse to something with identical semantics.
    #[test]
    fn printed_expr_reparses(e in arb_expr(), vals in proptest::array::uniform7(-3i64..=3)) {
        let printed = expr_to_string(&e);
        let src = format!("program(3) {{ r1 := x1; y := {printed}; }}");
        let sp = parse_structured(&src)
            .map_err(|err| TestCaseError::fail(format!("`{printed}`: {err}")))?;
        match &sp.body[1] {
            enf_flowchart::structured::Stmt::Assign(Var::Out, back) => {
                prop_assert_eq!(
                    back.eval(&env_from(&vals)),
                    e.eval(&env_from(&vals)),
                    "printed `{}`", printed
                );
            }
            other => prop_assert!(false, "unexpected stmt {:?}", other),
        }
    }

    /// Printed predicates re-parse with identical semantics.
    #[test]
    fn printed_pred_reparses(p in arb_pred(), vals in proptest::array::uniform7(-3i64..=3)) {
        let printed = pred_to_string(&p);
        let src = format!("program(3) {{ if {printed} {{ y := 1; }} else {{ y := 0; }} }}");
        let sp = parse_structured(&src)
            .map_err(|err| TestCaseError::fail(format!("`{printed}`: {err}")))?;
        match &sp.body[0] {
            enf_flowchart::structured::Stmt::If(back, _, _) => {
                prop_assert_eq!(
                    back.eval(&env_from(&vals)),
                    p.eval(&env_from(&vals)),
                    "printed `{}`", printed
                );
            }
            other => prop_assert!(false, "unexpected stmt {:?}", other),
        }
    }

    /// `vars()` is complete: evaluation only depends on listed variables.
    #[test]
    fn vars_is_complete(e in arb_expr(), vals in proptest::array::uniform7(-3i64..=3), other in proptest::array::uniform7(-3i64..=3)) {
        let listed = e.vars();
        // Build an environment agreeing with `vals` on listed vars and
        // with `other` elsewhere.
        let base = env_from(&vals);
        let alt = env_from(&other);
        let mixed = |v: Var| if listed.contains(&v) { base(v) } else { alt(v) };
        prop_assert_eq!(e.eval(&base), e.eval(&mixed));
    }

    /// Generated programs print, re-parse and lower to graphs with
    /// identical behaviour (full pipeline round trip).
    #[test]
    fn full_pipeline_roundtrip(seed in 0u64..20_000) {
        let p = random_structured(seed, &GenConfig::default());
        let printed = structured_to_string(&p);
        let back = parse_structured(&printed)
            .map_err(|err| TestCaseError::fail(format!("seed {seed}: {err}")))?;
        let fa = lower(&p).unwrap();
        let fb = lower(&back).unwrap();
        let cfg = ExecConfig::with_fuel(200_000);
        for x1 in -1..=1 {
            for x2 in -1..=1 {
                prop_assert_eq!(
                    run(&fa, &[x1, x2], &cfg).value(),
                    run(&fb, &[x1, x2], &cfg).value(),
                    "seed {} at ({}, {})", seed, x1, x2
                );
            }
        }
    }

    /// Interpreter invariants: step counts are deterministic and traces
    /// have exactly `steps` entries ending at the reported HALT.
    #[test]
    fn interpreter_invariants(seed in 0u64..20_000, x1 in -1i64..=1, x2 in -1i64..=1) {
        let fc = enf_flowchart::generate::random_flowchart(seed, &GenConfig::default());
        let cfg = ExecConfig { fuel: 200_000 };
        let (a, trace) = enf_flowchart::interp::run_traced(&fc, &[x1, x2], &cfg);
        let b = run(&fc, &[x1, x2], &cfg);
        prop_assert_eq!(&a, &b, "traced and plain runs disagree");
        if let enf_flowchart::interp::Outcome::Halted(h) = a {
            prop_assert_eq!(trace.len() as u64, h.steps);
            prop_assert_eq!(*trace.last().unwrap(), h.halt);
            prop_assert_eq!(trace[0], fc.start());
        }
    }

    /// Lowered graphs always validate.
    #[test]
    fn lowering_validates(seed in 0u64..20_000) {
        let p = random_structured(seed, &GenConfig::default());
        let fc = lower(&p).unwrap();
        prop_assert!(fc.validate().is_ok());
    }

    /// The parser never panics, on arbitrary input bytes…
    #[test]
    fn parser_never_panics_on_garbage(s in "\\PC*") {
        let _ = enf_flowchart::parse(&s);
    }

    /// …or on token-shaped soup.
    #[test]
    fn parser_never_panics_on_token_soup(
        toks in proptest::collection::vec(
            prop_oneof![
                Just("program"), Just("("), Just(")"), Just("{"), Just("}"),
                Just("if"), Just("else"), Just("while"), Just(":="), Just(";"),
                Just("x1"), Just("r1"), Just("y"), Just("0"), Just("1"),
                Just("=="), Just("+"), Just("ite"), Just(","), Just("halt"),
            ],
            0..30,
        )
    ) {
        let src = toks.join(" ");
        let _ = enf_flowchart::parse(&src);
    }
}
